#!/usr/bin/env bash
# Runs the graph-compiler ablation and writes BENCH_graph.json at the repo
# root: compiled ExecPlan forward vs the layer-at-a-time Sequential
# forward for both paper nets at f32 / q8-frozen / q4-frozen, plus what
# the compiler bought per model — fusion counts, compile time,
# steady-state allocation events (must be 0), and the static arena's peak
# vs the sum of per-layer intermediates it replaced.
#
# The worker pool reads ADVCOMP_THREADS once at startup, so pin the
# thread count per process, e.g.:
#
#   ADVCOMP_THREADS=8 scripts/bench_graph.sh
#   scripts/bench_graph.sh results/BENCH_graph.json
#
# The default of 8 matches scripts/bench_quant.sh so the unfused baseline
# here is the same configuration BENCH_quant.json measures.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_graph.json}"
ITERS="${BENCH_ITERS:-60}"
export ADVCOMP_THREADS="${ADVCOMP_THREADS:-8}"

cargo build --release -p advcomp-bench --bin graph_bench
./target/release/graph_bench --out "$OUT" --iters "$ITERS"
