#!/usr/bin/env bash
# Runs the machine-readable kernel ablation and writes BENCH_kernels.json
# (median nanoseconds per kernel, plus the pooled-vs-spawn-per-call GEMM
# speedup) and BENCH_simd.json (scalar-vs-SIMD kernel timings plus the
# fused-vs-unfused attack-step ablation) at the repo root.
#
# The worker pool reads ADVCOMP_THREADS once at startup, so pin the thread
# count per process, e.g.:
#
#   ADVCOMP_THREADS=8 scripts/bench_kernels.sh
#   scripts/bench_kernels.sh results/BENCH_kernels.json
#
# When ADVCOMP_THREADS is unset we default to 8 rather than the detected
# core count: the pooled-vs-spawned ablation measures thread *provisioning*
# overhead, which only exists when a GEMM splits into multiple bands, so a
# 1-core CI box would otherwise compare two serial paths and learn nothing.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_kernels.json}"
SIMD_OUT="${2:-BENCH_simd.json}"
ITERS="${BENCH_ITERS:-200}"
export ADVCOMP_THREADS="${ADVCOMP_THREADS:-8}"

cargo build --release -p advcomp-bench --features bench-ablation --bin kernel_bench
./target/release/kernel_bench --out "$OUT" --simd-out "$SIMD_OUT" --iters "$ITERS"
