#!/usr/bin/env bash
# Serving-engine load benchmark: stands up the TCP server at 1, 4 and 8
# workers, drives it with concurrent client connections over real sockets,
# and writes client-observed p50/p99 latency, throughput and the
# server-side batch-size distribution to BENCH_serve.json.
#
#   scripts/bench_serve.sh                  # full run, writes BENCH_serve.json
#   scripts/bench_serve.sh --quick          # fast PR-gate variant
#   scripts/bench_serve.sh --out /tmp/b.json --clients 16 --requests 100
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release -p advcomp-bench --bin serve_bench
./target/release/serve_bench "$@"
