#!/usr/bin/env bash
# Serving-engine saturation benchmark: for each worker count (1, 4, 8 by
# default) the open-loop generator probes capacity, sweeps a ladder of
# fixed offered arrival rates against a fresh TCP server per point, and
# writes the goodput-vs-offered curve, the saturation knee, and client +
# per-stage server p50/p99/p999 latencies to BENCH_serve.json
# (schema serve-open-loop-v2; knee rps is host-specific, host.cores is
# recorded in the report).
#
#   scripts/bench_serve.sh                    # full run, writes BENCH_serve.json
#   scripts/bench_serve.sh --quick            # fast PR-gate variant
#   scripts/bench_serve.sh --workers 1,8 --duration-ms 2000 --connections 16
#   scripts/bench_serve.sh --check-serve      # regression gate vs committed baseline
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release -p advcomp-bench --bin serve_bench
./target/release/serve_bench "$@"
