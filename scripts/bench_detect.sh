#!/usr/bin/env bash
# Runs the detection-subsystem benchmark and writes BENCH_detect.json at
# the repo root: the attack x compression detection grid (detector AUC,
# detection rate at the calibrated threshold, attack success per cell,
# UAP transfer matrix), the clean-vs-successful-IFGSM gate fixture, the
# online clean-vs-UAP flag rates through a live guarded engine, and the
# ensemble guard's per-request latency overhead.
#
# The worker pool reads ADVCOMP_THREADS once at startup, so pin the
# thread count per process, e.g.:
#
#   ADVCOMP_THREADS=8 scripts/bench_detect.sh
#   scripts/bench_detect.sh results/BENCH_detect.json
#
# The default of 8 matches the other bench scripts so the guard-overhead
# numbers are comparable with BENCH_serve.json.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_detect.json}"
ITERS="${BENCH_ITERS:-200}"
export ADVCOMP_THREADS="${ADVCOMP_THREADS:-8}"

cargo build --release -p advcomp-bench --bin detect_bench
./target/release/detect_bench --out "$OUT" --iters "$ITERS"
