#!/usr/bin/env bash
# Repo hygiene gate: formatting, lints (warnings are errors), then tests,
# then the conformance harness's golden-drift gate. Run before sending a
# PR; CI mirrors these steps. See TESTING.md for the harness layout.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings

# Full workspace suite — includes the advcomp-testkit pillars (goldens,
# differential kernel fuzzing, determinism, gradcheck).
cargo test --workspace -q

# Golden-drift gate: regenerate the checked-in golden vectors in place and
# fail if they differ from HEAD. A stale golden already fails `cargo test`;
# this direction catches the opposite mistake — a regenerated golden that
# was never reviewed/committed. The quant_parity suite owns the packed
# LeNet forward golden, so regenerate under it too.
REGEN_GOLDENS=1 cargo test -q -p advcomp-testkit --test goldens >/dev/null
REGEN_GOLDENS=1 cargo test -q -p advcomp-testkit --test quant_parity >/dev/null
if ! git diff --exit-code --stat -- tests/goldens; then
    echo "error: golden vectors drifted; review the diff above and either" >&2
    echo "       fix the numeric regression or commit the regenerated goldens" >&2
    exit 1
fi
echo "goldens: no drift"

# Kernel parity: the scalar and SIMD backends must agree — bit-exact for
# the elementwise and fused attack-step kernels, 1e-5 relative L2 for the
# FMA GEMM and reassociated reductions. The suite compares explicit
# backends internally; running it under both ADVCOMP_KERNEL values also
# exercises the dispatch layer each way.
for kernel in scalar simd; do
    ADVCOMP_KERNEL="$kernel" \
        cargo test -q -p advcomp-testkit --test kernel_parity >/dev/null
done
echo "kernel parity: scalar and simd agree"

# Quantised-execution parity: packed Q8/Q4 storage must round-trip the
# QFormat grid bit-exactly, the fused int8 GEMM and frozen conv must sit
# within 1e-5 relative L2 of an f64 reference, and the packed LeNet
# forward must be bit-identical to the simulated FakeQuant forward on the
# scalar backend. Run under both dispatch values like kernel_parity.
for kernel in scalar simd; do
    ADVCOMP_KERNEL="$kernel" \
        cargo test -q -p advcomp-testkit --test quant_parity >/dev/null
done
echo "quant parity: packed storage and int8 kernels agree"

# Graph-compiler parity: the compiled ExecPlan forward must be per-logit
# bit-identical to Sequential::forward for both paper nets at f32,
# q8-frozen and q4-frozen (scalar-vs-SIMD plans additionally compared
# under the 1e-5 relative-L2 gate), the fusion passes must fire on their
# patterns, and the static memory plan must never alias simultaneously
# live buffers under any topological order. Run under both dispatch
# values like kernel_parity.
for kernel in scalar simd; do
    ADVCOMP_KERNEL="$kernel" \
        cargo test -q -p advcomp-testkit --test graph_parity >/dev/null
done
echo "graph parity: compiled plans bit-identical to Sequential"

# SIMD regression gate: on an AVX2+FMA host the dispatched GEMM must not be
# slower than the scalar path (--check-simd is a no-op on hosts without
# AVX2). Reports go to a scratch dir so the checked-in BENCH_simd.json only
# changes when regenerated deliberately via scripts/bench_kernels.sh.
cargo build -q --release -p advcomp-bench --features bench-ablation --bin kernel_bench
simd_tmp="$(mktemp -d)"
./target/release/kernel_bench --iters 25 --out "$simd_tmp/kernels.json" \
    --simd-out "$simd_tmp/simd.json" --check-simd >/dev/null
rm -rf "$simd_tmp"
echo "simd gate: dispatched GEMM not slower than scalar"

# Integer-execution regression gate: on an AVX2 host the packed Q8 GEMM
# must not be slower than the dense f32 SIMD GEMM at the 128³ bench shape
# (a no-op without AVX2). Same scratch-dir convention as the simd gate so
# the checked-in BENCH_quant.json only changes via scripts/bench_quant.sh.
cargo build -q --release -p advcomp-bench --bin quant_bench
quant_tmp="$(mktemp -d)"
./target/release/quant_bench --iters 25 --out "$quant_tmp/quant.json" \
    --check-quant >/dev/null
rm -rf "$quant_tmp"
echo "quant gate: packed Q8 GEMM not slower than dense f32"

# Graph-compiler regression gate: on an AVX2 host the compiled q8-frozen
# LeNet-5 forward must be >= 1.3x the unfused layer path (the speedup
# clause is a no-op without AVX2), and the steady-state compiled forward
# must perform zero heap allocations on every model x format (asserted
# unconditionally). Same scratch-dir convention as the simd/quant gates
# so the checked-in BENCH_graph.json only changes via
# scripts/bench_graph.sh.
cargo build -q --release -p advcomp-bench --bin graph_bench
graph_tmp="$(mktemp -d)"
./target/release/graph_bench --iters 25 --out "$graph_tmp/graph.json" \
    --check-graph >/dev/null
rm -rf "$graph_tmp"
echo "graph gate: compiled q8 LeNet-5 >= 1.3x unfused, zero steady-state allocs"

# Fault-injection smoke: a tiny sweep with a sticky panic injected at one
# point must still exit 0, keeping the surviving point and recording the
# failure with its retry count (the partial-result contract).
ADVCOMP_FAULTS="panic:sweep_point:1:sticky" \
    cargo run -q -p advcomp-bench --bin faultsmoke
echo "fault smoke: partial-result recovery OK"

# Distributed-sweep smoke: a 3-worker lease-coordinated sweep with a panic
# injected into one worker's heartbeat path must re-dispatch the dead
# worker's point (--expect-redispatch makes that an exit-code assertion)
# and still produce curves byte-identical to a single-process baseline;
# a re-run over the same journal must resume every point without
# recomputing. See DESIGN.md "Distributed execution".
cargo build -q -p advcomp-bench --bin dist_sweep
dist_tmp="$(mktemp -d)"
ADVCOMP_FAULTS="panic:dist_heartbeat:0" \
    ./target/debug/dist_sweep --workers 3 --run-dir "$dist_tmp/run" \
    --heartbeat-ms 50 --lease-ms 400 --slow-ms 300 \
    --expect-redispatch --out "$dist_tmp/dist.json" >/dev/null
./target/debug/dist_sweep --baseline --out "$dist_tmp/base.json" >/dev/null
cmp "$dist_tmp/dist.json" "$dist_tmp/base.json"
./target/debug/dist_sweep --workers 3 --run-dir "$dist_tmp/run" \
    --expect-resumed-all --out "$dist_tmp/resume.json" >/dev/null
cmp "$dist_tmp/resume.json" "$dist_tmp/base.json"
rm -rf "$dist_tmp"
echo "dist smoke: worker death re-dispatched; curves bit-identical; resume OK"

# Serve smoke: a real TCP server on an ephemeral port driven with mixed
# traffic — concurrent predictions, control commands, an oversized frame
# header, malformed JSON — ending in a clean protocol-level shutdown, then
# an open-loop goodput-vs-offered-load curve against an admission-capped
# server (the curve shape is asserted, not a host-specific rps number).
cargo run -q -p advcomp-serve --bin serve_smoke
echo "serve smoke: batching, backpressure, framing and open-loop curve OK"

# Serve soak: time-boxed chaos run — connection resets mid-frame, short
# reads, oversized frames from concurrent hostile clients, plus
# deterministic ADVCOMP_FAULTS injections at the serve_conn_read and
# serve_batch sites — the server must stay available, count every failure
# in its metrics, and shed rather than hang. The same suites run under
# `cargo test`; this stage pins them as an explicit gate (and `--ignored`
# runs the long soak).
cargo test -q -p advcomp-serve --test soak >/dev/null
cargo test -q -p advcomp-serve --test shard_stealing >/dev/null
cargo test -q -p advcomp-serve --test hot_swap >/dev/null
echo "serve soak: chaos, stealing and hot-swap suites OK"

# Detection regression gate: the disagreement detector must keep AUC >=
# 0.9 separating clean traffic from *successful* small-step IFGSM
# perturbations on the deterministic stub-RNG fixture, and an
# offline-crafted UAP must still be flagged online by a live guarded
# engine above the clean false-positive rate (at the calibrated
# threshold the artifact deploys). Same scratch-dir convention as the
# simd/quant/graph gates so the checked-in BENCH_detect.json only
# changes via scripts/bench_detect.sh.
cargo build -q --release -p advcomp-bench --bin detect_bench
detect_tmp="$(mktemp -d)"
./target/release/detect_bench --iters 50 --out "$detect_tmp/detect.json" \
    --check-detect >/dev/null
rm -rf "$detect_tmp"
echo "detect gate: fixture AUC >= 0.9; offline-crafted UAP flagged online"

# Serve regression gate: re-measure the saturation knee with the open-loop
# generator and compare against the committed BENCH_serve.json baseline
# (fails on >40% regression). Knee rps is host-specific, so the gate
# no-ops when the baseline was measured on a different core count, and the
# 8-vs-1-worker scaling assertion arms only on >= 8 cores — mirroring how
# --check-simd no-ops without AVX2.
cargo build -q --release -p advcomp-bench --bin serve_bench
./target/release/serve_bench --check-serve --duration-ms 400 >/dev/null
echo "serve gate: saturation knee within baseline"
