#!/usr/bin/env bash
# Repo hygiene gate: formatting, lints (warnings are errors), then tests.
# Run before sending a PR; CI mirrors these steps.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
