#!/usr/bin/env bash
# Runs the integer-execution ablation and writes BENCH_quant.json at the
# repo root: the fused int8 GEMM vs the dense f32 SIMD GEMM at the 128³
# hot-path shape, dense vs frozen-packed LeNet5 forwards, the
# compression-ensemble guard's per-batch cost, and the v2-vs-v3
# checkpoint byte counts.
#
# The worker pool reads ADVCOMP_THREADS once at startup, so pin the
# thread count per process, e.g.:
#
#   ADVCOMP_THREADS=8 scripts/bench_quant.sh
#   scripts/bench_quant.sh results/BENCH_quant.json
#
# When ADVCOMP_THREADS is unset we default to 8, matching
# scripts/bench_kernels.sh: the f32 baseline parallelises at the bench
# shape while the packed path stays serial (see PARALLEL_THRESHOLD in
# tensor::quant), and that scheduling difference is part of what the
# numbers are meant to show.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_quant.json}"
ITERS="${BENCH_ITERS:-200}"
export ADVCOMP_THREADS="${ADVCOMP_THREADS:-8}"

cargo build --release -p advcomp-bench --bin quant_bench
./target/release/quant_bench --out "$OUT" --iters "$ITERS"
