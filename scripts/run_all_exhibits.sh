#!/bin/sh
# Regenerates every paper exhibit at the quick profile, logging to
# results/logs/. Run from the repository root:
#
#   sh scripts/run_all_exhibits.sh [scale]
#
set -u
SCALE="${1:-quick}"
mkdir -p results/logs
# Per-exhibit run directories: sweep exhibits journal each completed point
# there, so re-running this script after an interruption resumes instead of
# recomputing (delete the directory to force a fresh run).
for exhibit in table1 fig2 fig3 fig4 fig5 fig6 crossseed; do
    echo "=== $exhibit ($SCALE) ==="
    cargo run --release -p advcomp-bench --bin "$exhibit" -- --scale "$SCALE" \
        --run-dir "results/runs/$exhibit-$SCALE" \
        > "results/logs/$exhibit.log" 2>&1
    echo "exit=$? (log: results/logs/$exhibit.log)"
done
# Ablations called out in DESIGN.md.
cargo run --release -p advcomp-bench --bin fig2 -- --scale "$SCALE" --one-shot \
    --run-dir "results/runs/fig2_oneshot-$SCALE" \
    > results/logs/fig2_oneshot.log 2>&1
echo "fig2 --one-shot exit=$?"
cargo run --release -p advcomp-bench --bin fig5 -- --scale "$SCALE" --weights-only \
    --run-dir "results/runs/fig5_weights_only-$SCALE" \
    > results/logs/fig5_weights_only.log 2>&1
echo "fig5 --weights-only exit=$?"
