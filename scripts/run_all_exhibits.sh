#!/bin/sh
# Regenerates every paper exhibit at the quick profile, logging to
# results/logs/. Run from the repository root:
#
#   sh scripts/run_all_exhibits.sh [scale] [--dist N]
#
# --dist N routes each sweep through the lease-based coordinator with N
# local worker threads (same curves, bit-identical; see DESIGN.md
# "Distributed execution").
set -u
SCALE="quick"
DIST=""
while [ $# -gt 0 ]; do
    case "$1" in
        --dist)
            DIST="${2:?--dist needs a worker count}"
            shift 2
            ;;
        *)
            SCALE="$1"
            shift
            ;;
    esac
done
EXTRA=""
if [ -n "$DIST" ]; then
    EXTRA="--dist $DIST"
fi
mkdir -p results/logs
# Per-exhibit run directories: sweep exhibits journal each completed point
# there, so re-running this script after an interruption resumes instead of
# recomputing (delete the directory to force a fresh run).
for exhibit in table1 fig2 fig3 fig4 fig5 fig6 crossseed; do
    echo "=== $exhibit ($SCALE) ==="
    # shellcheck disable=SC2086 # EXTRA is deliberately word-split
    cargo run --release -p advcomp-bench --bin "$exhibit" -- --scale "$SCALE" \
        --run-dir "results/runs/$exhibit-$SCALE" $EXTRA \
        > "results/logs/$exhibit.log" 2>&1
    echo "exit=$? (log: results/logs/$exhibit.log)"
done
# Ablations called out in DESIGN.md.
# shellcheck disable=SC2086
cargo run --release -p advcomp-bench --bin fig2 -- --scale "$SCALE" --one-shot \
    --run-dir "results/runs/fig2_oneshot-$SCALE" $EXTRA \
    > results/logs/fig2_oneshot.log 2>&1
echo "fig2 --one-shot exit=$?"
# shellcheck disable=SC2086
cargo run --release -p advcomp-bench --bin fig5 -- --scale "$SCALE" --weights-only \
    --run-dir "results/runs/fig5_weights_only-$SCALE" $EXTRA \
    > results/logs/fig5_weights_only.log 2>&1
echo "fig5 --weights-only exit=$?"
