//! # advcomp — To Compress Or Not To Compress (MLSYS 2019), in Rust
//!
//! Facade crate re-exporting the whole workspace: a from-scratch
//! reproduction of *Zhao, Shumailov, Mullins, Anderson — "To Compress Or Not
//! To Compress: Understanding the Interactions between Adversarial Attacks
//! and Neural Network Compression"*.
//!
//! The workspace layers, bottom-up:
//!
//! * [`tensor`] — dense `f32` tensors, blocked matmul, `im2col` convolution.
//! * [`qformat`] — signed fixed-point (Q-format) numerics.
//! * [`nn`] — layer-based neural networks with reverse-mode gradients.
//! * [`data`] — synthetic MNIST/CIFAR-like datasets and real-file loaders.
//! * [`compress`] — pruning (one-shot + Dynamic Network Surgery) and
//!   fixed-point quantisation of weights and activations.
//! * [`attacks`] — FGM, FGSM, IFGM, IFGSM and DeepFool white-box attacks.
//! * [`models`] — LeNet5 and CifarNet reference models with checkpointing.
//! * [`sparse`] — deployment encodings: CSR weights, packed fixed-point
//!   codes, Huffman streams, and model-size accounting.
//! * [`core`] — the paper's contribution: the compression-aware attack
//!   taxonomy (scenarios S1–S3), transfer evaluation, and sweep harnesses.
//! * [`detect`] — calibrated adversarial detection: ensemble detectors,
//!   ROC calibration artifacts, and the attack×compression evaluation grid
//!   (universal perturbations included).
//! * [`serve`] — batched TCP inference serving with a compression-ensemble
//!   adversarial guard built on the paper's transfer observations.
//!
//! # Quickstart
//!
//! ```no_run
//! use advcomp::core::{ExperimentScale, TrainedModel};
//! use advcomp::core::scenario::Scenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Train a baseline LeNet5-style model on the synthetic digit task.
//! let scale = ExperimentScale::quick();
//! let baseline = TrainedModel::train_lenet5(&scale, 42)?;
//! println!("baseline accuracy: {:.2}%", 100.0 * baseline.test_accuracy);
//! # Ok(())
//! # }
//! ```

pub use advcomp_attacks as attacks;
pub use advcomp_compress as compress;
pub use advcomp_core as core;
pub use advcomp_data as data;
pub use advcomp_detect as detect;
pub use advcomp_models as models;
pub use advcomp_nn as nn;
pub use advcomp_qformat as qformat;
pub use advcomp_serve as serve;
pub use advcomp_sparse as sparse;
pub use advcomp_tensor as tensor;
