//! Consistency checks on the attack-scenario taxonomy: the structural
//! identities that must hold regardless of training quality.

use advcomp::attacks::{Attack, AttackKind, DeepFool, Ifgm, Ifgsm, NetKind, PaperParams};
use advcomp::core::scenario::{attack_transfer, Scenario};
use advcomp::core::sweep::{TransferMatrix, TransferSweep};
use advcomp::core::{Compression, ExperimentScale, TaskSetup, TrainedModel};
use advcomp::nn::Mode;

#[test]
fn identity_compression_collapses_scenarios() {
    // With Compression::None the "compressed" model *is* the baseline, so
    // S1, S2 and S3 must coincide exactly.
    let scale = ExperimentScale::tiny();
    let sweep = TransferSweep::pruning(NetKind::LeNet5, AttackKind::Ifgsm, &[1.0]);
    let result = sweep.run(&scale).unwrap();
    let p = &result.points[0];
    assert_eq!(p.comp_to_comp, p.full_to_comp);
    assert_eq!(p.comp_to_comp, p.comp_to_full);
}

#[test]
fn scenarios_have_paper_numbering() {
    assert_eq!(Scenario::CompToComp.number(), 1);
    assert_eq!(Scenario::FullToComp.number(), 2);
    assert_eq!(Scenario::CompToFull.number(), 3);
}

#[test]
fn attack_generation_does_not_move_weights() {
    // The entire taxonomy assumes attacks only *read* models.
    let scale = ExperimentScale::tiny();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let trained = TrainedModel::train(&setup, &scale, 9).unwrap();
    let mut model = trained.instantiate().unwrap();
    let before = model.export_params();
    let (x, y) = setup.test.slice(0, 8).unwrap();
    for attack in [
        Box::new(Ifgsm::new(0.02, 4).unwrap()) as Box<dyn Attack>,
        Box::new(Ifgm::new(1.0, 4).unwrap()),
        Box::new(DeepFool::new(0.02, 4).unwrap()),
    ] {
        attack.generate(&mut model, &x, &y).unwrap();
    }
    for ((_, a), (_, b)) in before.iter().zip(model.export_params().iter()) {
        assert_eq!(a.data(), b.data());
    }
}

#[test]
fn transfer_is_direction_sensitive() {
    // S2 and S3 are different measurements: swapping source and target must
    // actually swap which model generates gradients. We verify by checking
    // the generated perturbations differ between directions.
    let scale = ExperimentScale::tiny();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let baseline = TrainedModel::train(&setup, &scale, 12).unwrap();
    let cfg = setup.finetune_config(&scale);
    let mut comp = baseline.instantiate().unwrap();
    Compression::DnsPrune { density: 0.2 }
        .apply(&mut comp, &setup.train, &cfg)
        .unwrap();
    let (x, y) = setup.test.slice(0, 16).unwrap();
    let attack = Ifgsm::new(0.05, 4).unwrap();
    let mut full = baseline.instantiate().unwrap();
    let adv_from_comp = attack.generate(&mut comp, &x, &y).unwrap();
    let adv_from_full = attack.generate(&mut full, &x, &y).unwrap();
    assert_ne!(
        adv_from_comp.data(),
        adv_from_full.data(),
        "heavily pruned model produced identical gradients to the baseline"
    );
}

#[test]
fn matrix_and_sweep_agree() {
    // TransferSweep is documented as the single-attack view of
    // TransferMatrix; they must produce identical numbers.
    let scale = ExperimentScale::tiny();
    let densities = [1.0, 0.5];
    let sweep = TransferSweep::pruning(NetKind::LeNet5, AttackKind::Ifgm, &densities)
        .run(&scale)
        .unwrap();
    let matrix = TransferMatrix::pruning(NetKind::LeNet5, vec![AttackKind::Ifgm], &densities)
        .run(&scale)
        .unwrap();
    assert_eq!(sweep, matrix[0]);
}

#[test]
fn paper_attack_params_produce_valid_samples() {
    let scale = ExperimentScale::tiny();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let trained = TrainedModel::train(&setup, &scale, 4).unwrap();
    let mut model = trained.instantiate().unwrap();
    let (x, y) = setup.test.slice(0, 6).unwrap();
    for kind in AttackKind::ALL {
        let attack = PaperParams::build(NetKind::LeNet5, kind);
        let adv = attack.generate(&mut model, &x, &y).unwrap();
        assert_eq!(adv.shape(), x.shape(), "{}", attack.name());
        assert!(
            adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "{} left the pixel range",
            attack.name()
        );
        // Samples must actually differ from the input.
        assert_ne!(adv.data(), x.data(), "{} was a no-op", attack.name());
    }
}

#[test]
fn transfer_outcome_reports_clean_accuracy_of_target() {
    let scale = ExperimentScale::tiny();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let trained = TrainedModel::train(&setup, &scale, 2).unwrap();
    let mut src = trained.instantiate().unwrap();
    let mut tgt = trained.instantiate().unwrap();
    let (x, y) = setup.test.slice(0, 32).unwrap();
    let attack = Ifgsm::new(0.02, 2).unwrap();
    let outcome = attack_transfer(&mut src, &mut tgt, &attack, &x, &y).unwrap();
    // Clean accuracy must match a direct evaluation on the same slice.
    let logits = tgt.forward(&x, Mode::Eval).unwrap();
    let direct = advcomp::nn::accuracy(&logits, &y).unwrap();
    assert_eq!(outcome.clean_accuracy, direct);
}
