//! End-to-end acceptance for the calibrated detection pipeline: the full
//! offline→online story. Offline: train a baseline, build the compressed
//! ensemble (including an adversarially fine-tuned variant saved through
//! `finetune_to_checkpoint`), calibrate the disagreement detector on
//! labelled clean/adversarial traffic, and persist the calibration
//! artifact.
//! Online: load everything into the serving registry, then show that a
//! universal perturbation crafted *offline* against the baseline surrogate
//! is flagged at the calibrated threshold by the live engine — the serving
//! counterpart of the paper's transfer observation.

use advcomp::attacks::{craft_uap, Attack, DeepFool, Ifgsm, NetKind, UapConfig};
use advcomp::compress::Quantizer;
use advcomp::core::advtrain::{finetune_to_checkpoint, AdvTrainConfig};
use advcomp::core::{Compression, ExperimentScale, TaskSetup, TrainedModel};
use advcomp::detect::{detector_by_name, DetectorCalibration, VariantEnsemble};
use advcomp::models::Checkpoint;
use advcomp::serve::json::Json;
use advcomp::serve::protocol::Command;
use advcomp::serve::{Client, Engine, GuardConfig, ModelRegistry, ServeConfig, Server};
use std::time::Duration;

#[test]
fn offline_crafted_uap_is_flagged_at_the_calibrated_threshold() {
    let scale = ExperimentScale::tiny();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let baseline = TrainedModel::train(&setup, &scale, 42).unwrap();
    assert!(baseline.test_accuracy > 0.8, "{}", baseline.test_accuracy);
    let dense = baseline.instantiate().unwrap();

    let dir = std::env::temp_dir().join(format!("advcomp_detect_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Ensemble: a frozen-int4 variant, a half-density pruned variant (the
    // compression levels whose decision boundaries move the most), and an
    // adversarially fine-tuned variant that reaches the registry only
    // through its checkpoint file.
    let mut quant4 = baseline.instantiate().unwrap();
    Quantizer::for_bitwidth(4)
        .unwrap()
        .quantize_frozen(&mut quant4)
        .unwrap();
    let mut pruned = baseline.instantiate().unwrap();
    Compression::OneShotPrune { density: 0.5 }
        .apply(&mut pruned, &setup.train, &setup.finetune_config(&scale))
        .unwrap();
    let attack = Ifgsm::new(0.05, 1).unwrap();
    let adv_cfg = AdvTrainConfig {
        epochs: 2,
        seed: 42,
        ..AdvTrainConfig::default()
    };
    let hardened_path = dir.join("hardened.advc");
    let (hardened, _) =
        finetune_to_checkpoint(&dense, &setup.train, &attack, &adv_cfg, &hardened_path).unwrap();

    let dense_path = dir.join("dense.advc");
    Checkpoint::capture(&dense).save(&dense_path).unwrap();
    let q4_path = dir.join("quant4.advc");
    Checkpoint::capture(&quant4).save(&q4_path).unwrap();
    let pruned_path = dir.join("pruned.advc");
    Checkpoint::capture(&pruned).save(&pruned_path).unwrap();

    // Offline calibration: disagreement scores over the same ensemble the
    // server will run, clean traffic vs minimal-perturbation DeepFool
    // traffic. DeepFool lands inputs just past the baseline's decision
    // boundary, exactly where the variants' shifted boundaries disagree —
    // the paper's transfer gap at its sharpest.
    let sample_shape = setup.test.sample_shape();
    let mut ensemble = VariantEnsemble::new("dense", dense.clone(), sample_shape);
    ensemble.push_variant("quant4", quant4.clone());
    ensemble.push_variant("pruned", pruned.clone());
    ensemble.push_variant("hardened", hardened.clone());
    let detector = detector_by_name("disagreement").unwrap();
    let (x_cal, y_cal) = setup.test.slice(64, 64).unwrap();
    let clean_scores = ensemble.score(detector.as_ref(), &x_cal).unwrap();
    let mut surrogate = dense.clone();
    let adv_cal = DeepFool::new(0.02, 10)
        .unwrap()
        .generate(&mut surrogate, &x_cal, &y_cal)
        .unwrap();
    let adv_scores = ensemble.score(detector.as_ref(), &adv_cal).unwrap();
    let cal =
        DetectorCalibration::calibrate("disagreement", &clean_scores, &adv_scores, 0.1).unwrap();
    assert!(cal.auc > 0.8, "offline calibration AUC {}", cal.auc);
    let cal_path = dir.join("guard.advd");
    cal.save(&cal_path).unwrap();

    // Offline UAP crafting against the baseline surrogate: the online
    // attacker just adds this delta to every request.
    let (x_craft, y_craft) = setup.train.slice(0, 64).unwrap();
    let uap = craft_uap(
        &mut surrogate,
        &x_craft,
        &y_craft,
        &UapConfig {
            epsilon: 0.2,
            step: 0.04,
            epochs: 4,
            batch: 16,
            seed: 7,
        },
    )
    .unwrap();

    // Online: registry loads the checkpoints AND the calibration artifact.
    let mut registry = ModelRegistry::new(sample_shape).unwrap();
    let arch = || setup.fresh_model(42);
    registry
        .load_baseline("dense", arch(), &dense_path)
        .unwrap();
    registry.load_variant("quant4", arch(), &q4_path).unwrap();
    registry
        .load_variant("pruned", arch(), &pruned_path)
        .unwrap();
    registry
        .load_variant("hardened", arch(), &hardened_path)
        .unwrap();
    registry.load_calibration(&cal_path).unwrap();

    let engine = Engine::start(
        &registry,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_depth: 128,
            // Deliberately nonsensical ad-hoc threshold: the calibration
            // artifact must override it.
            guard: Some(GuardConfig { threshold: 0.999 }),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let deployment = engine.metrics().guard_deployment().expect("guard on");
    assert!(deployment.calibrated, "artifact must win over GuardConfig");
    assert_eq!(deployment.detector, "disagreement");
    assert!((deployment.threshold - cal.threshold).abs() < 1e-12);

    let server = Server::bind(engine.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Serve clean and UAP traffic over real TCP, tagging the adversarial
    // requests so the per-attack counters pick them up.
    let n = 48;
    let (x_eval, _) = setup.test.slice(0, n).unwrap();
    let x_uap = uap.apply(&x_eval).unwrap();
    let sample_len: usize = sample_shape.iter().product();
    let mut client = Client::connect(addr).unwrap();
    let mut flag_fraction = |images: &advcomp::tensor::Tensor, tag: Option<&str>| -> f64 {
        let mut flagged = 0usize;
        for i in 0..n {
            let input = images.data()[i * sample_len..(i + 1) * sample_len].to_vec();
            let resp = client
                .predict_tagged(input, false, tag.map(str::to_string))
                .unwrap();
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
            let suspect = resp.get("suspect").and_then(Json::as_f64).unwrap();
            let is_flagged = resp.get("flagged").and_then(Json::as_bool).unwrap();
            // Every verdict is taken at the calibrated threshold.
            assert_eq!(is_flagged, suspect >= cal.threshold, "suspect {suspect}");
            flagged += usize::from(is_flagged);
        }
        flagged as f64 / n as f64
    };
    let clean_rate = flag_fraction(&x_eval, None);
    let uap_rate = flag_fraction(&x_uap, Some("uap"));
    assert!(
        uap_rate > clean_rate,
        "guard blind to the UAP: clean flag rate {clean_rate:.3} vs uap {uap_rate:.3}"
    );
    assert!(
        uap_rate >= 0.2,
        "offline-crafted UAP must be flagged online: rate {uap_rate:.3}"
    );
    assert!(
        clean_rate <= 0.15,
        "clean traffic must stay near the calibrated FPR budget: {clean_rate:.3}"
    );

    // The per-attack counters saw exactly the tagged traffic.
    let metrics = client.control(Command::Metrics).unwrap();
    let uap_stats = metrics
        .get("metrics")
        .and_then(|m| m.get("guard"))
        .and_then(|g| g.get("attacks"))
        .and_then(|a| a.get("uap"))
        .expect("per-attack guard section");
    assert_eq!(
        uap_stats.get("scored").and_then(Json::as_u64),
        Some(n as u64)
    );
    let online_rate = uap_stats
        .get("detection_rate")
        .and_then(Json::as_f64)
        .unwrap();
    assert!((online_rate - uap_rate).abs() < 1e-9);

    server.join();
    std::fs::remove_dir_all(&dir).ok();
}
