//! End-to-end integration tests across the whole workspace: train →
//! compress → attack → transfer, exercised through the public facade.

use advcomp::attacks::{AttackKind, Ifgsm, NetKind, PaperParams};
use advcomp::compress::{DnsPruner, Quantizer};
use advcomp::core::scenario::{attack_transfer, cross_seed_transfer};
use advcomp::core::{evaluate_model, Compression, ExperimentScale, TaskSetup, TrainedModel};
use advcomp::models::Checkpoint;
use advcomp::nn::Mode;
use advcomp::qformat::QFormat;

fn scale() -> ExperimentScale {
    ExperimentScale::tiny()
}

#[test]
fn train_prune_attack_transfer_pipeline() {
    let scale = scale();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let baseline = TrainedModel::train(&setup, &scale, 42).unwrap();
    assert!(
        baseline.test_accuracy > 0.8,
        "baseline {}",
        baseline.test_accuracy
    );

    // Prune to 30% density with DNS.
    let mut compressed = baseline.instantiate().unwrap();
    let mask = DnsPruner::new(0.3)
        .prune_and_finetune(
            &mut compressed,
            &setup.train,
            &setup.finetune_config(&scale),
        )
        .unwrap();
    assert!((mask.overall_density() - 0.3).abs() < 0.05);
    let comp_acc = evaluate_model(&mut compressed, &setup.test, 64).unwrap();
    assert!(comp_acc > 0.5, "pruned accuracy collapsed: {comp_acc}");

    // Scenario 3: attack the hidden baseline from the compressed model.
    let (x, y) = setup.test.slice(0, 32).unwrap();
    let attack = Ifgsm::new(0.05, 8).unwrap();
    let mut full = baseline.instantiate().unwrap();
    let outcome = attack_transfer(&mut compressed, &mut full, &attack, &x, &y).unwrap();
    // Transferability: samples from the pruned model must hurt the baseline.
    assert!(
        outcome.adversarial_accuracy < outcome.clean_accuracy,
        "no transfer: clean {} adv {}",
        outcome.clean_accuracy,
        outcome.adversarial_accuracy
    );
}

#[test]
fn train_quantise_attack_pipeline() {
    let scale = scale();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let baseline = TrainedModel::train(&setup, &scale, 7).unwrap();

    let mut quantised = baseline.instantiate().unwrap();
    let quantizer = Quantizer::for_bitwidth(8).unwrap();
    quantizer
        .quantize_and_finetune(&mut quantised, &setup.train, &setup.finetune_config(&scale))
        .unwrap();
    let qacc = evaluate_model(&mut quantised, &setup.test, 64).unwrap();
    assert!(
        qacc > baseline.test_accuracy - 0.15,
        "8-bit QAT collapsed accuracy: {} -> {qacc}",
        baseline.test_accuracy
    );
    // Every weight is on the Q2.6 grid.
    let fmt = QFormat::for_bitwidth(8).unwrap();
    for p in quantised.params() {
        if p.kind == advcomp::nn::ParamKind::Weight {
            assert!(p.value.data().iter().all(|&v| fmt.is_representable(v)));
        }
    }
    // White-box attack still works on the quantised model.
    let (x, y) = setup.test.slice(0, 32).unwrap();
    let attack = PaperParams::build_adapted(NetKind::LeNet5, AttackKind::Ifgsm);
    let adv = attack.generate(&mut quantised, &x, &y).unwrap();
    let logits = quantised.forward(&adv, Mode::Eval).unwrap();
    let adv_acc = advcomp::nn::accuracy(&logits, &y).unwrap();
    assert!(adv_acc < qacc, "attack had no effect on quantised model");
}

#[test]
fn checkpoint_roundtrip_through_facade() {
    let scale = scale();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let trained = TrainedModel::train(&setup, &scale, 3).unwrap();
    let model = trained.instantiate().unwrap();

    let dir = std::env::temp_dir().join("advcomp_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lenet5.advc");
    Checkpoint::capture(&model).save(&path).unwrap();

    let mut restored = setup.fresh_model(999); // different init seed
    Checkpoint::load(&path)
        .unwrap()
        .restore(&mut restored)
        .unwrap();
    let acc = evaluate_model(&mut restored, &setup.test, 64).unwrap();
    assert!((acc - trained.test_accuracy).abs() < 1e-9);
    std::fs::remove_file(&path).ok();
}

#[test]
fn compression_recipes_compose_with_scenarios() {
    let scale = scale();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let baseline = TrainedModel::train(&setup, &scale, 5).unwrap();
    let cfg = setup.finetune_config(&scale);
    let (x, y) = setup.test.slice(0, 24).unwrap();
    let attack = Ifgsm::new(0.05, 6).unwrap();

    for recipe in [
        Compression::DnsPrune { density: 0.5 },
        Compression::Quant {
            bitwidth: 8,
            weights_only: false,
        },
    ] {
        let mut comp = baseline.instantiate().unwrap();
        recipe.apply(&mut comp, &setup.train, &cfg).unwrap();
        let mut full = baseline.instantiate().unwrap();
        // All three scenario directions produce accuracies in [0, 1].
        let s1_src = &mut comp;
        let o = attack_transfer(s1_src, &mut full, &attack, &x, &y).unwrap();
        assert!((0.0..=1.0).contains(&o.adversarial_accuracy));
        assert!(o.mean_l2 > 0.0, "{}: no perturbation applied", recipe.id());
    }
}

#[test]
fn cross_seed_models_differ_but_both_work() {
    let scale = scale();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let a = TrainedModel::train(&setup, &scale, 1).unwrap();
    let b = TrainedModel::train(&setup, &scale, 2).unwrap();
    let mut ma = a.instantiate().unwrap();
    let mut mb = b.instantiate().unwrap();
    assert_ne!(
        ma.param("conv1.weight").unwrap().value.data(),
        mb.param("conv1.weight").unwrap().value.data()
    );
    let (x, y) = setup.test.slice(0, 24).unwrap();
    let attack = Ifgsm::new(0.05, 8).unwrap();
    let ct = cross_seed_transfer(&mut ma, &mut mb, &attack, &x, &y).unwrap();
    assert!(ct.source_fool_rate > 0.0);
    assert!((0.0..=1.0).contains(&ct.transfer_rate));
}
