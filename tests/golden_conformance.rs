//! Workspace-level golden smoke check — the fast subset of the testkit's
//! conformance suite that tier-1 `cargo test` runs from the repo root.
//!
//! The full suite (attacks, compression, train-step goldens, differential
//! fuzzing, determinism) lives in `crates/testkit/tests/`; this file only
//! pins the fixture forward pass so a plain `cargo test` at the root
//! cannot silently drift the numerical contract. See `TESTING.md`.

use advcomp_nn::Mode;
use advcomp_testkit::golden::{self, tensor_json};
use advcomp_testkit::json::Json;
use advcomp_testkit::{fixtures, DetRng};

#[test]
fn lenet_forward_matches_checked_in_golden() {
    // Goldens are defined by the scalar kernels; pin before any tensor op.
    advcomp_testkit::pin_kernel("scalar");
    // Mirrors `crates/testkit/tests/goldens.rs::forward_logits_conform` —
    // same seeds, same golden file.
    let mut model = fixtures::lenet(42);
    let x = fixtures::image_batch(7, 4);
    let logits = model.forward(&x, Mode::Eval).expect("fixture forward");
    let doc = Json::Obj(vec![
        ("model_seed".into(), Json::from_usize(42)),
        (
            "params".into(),
            Json::Obj(
                model
                    .export_params()
                    .iter()
                    .map(|(name, value)| (name.clone(), tensor_json(value)))
                    .collect(),
            ),
        ),
        ("input".into(), tensor_json(&x)),
        ("logits".into(), tensor_json(&logits)),
    ]);
    golden::check_or_regen("lenet_forward", &doc).unwrap();
}

#[test]
fn det_rng_stream_is_pinned() {
    // The golden format depends on this exact SplitMix64 stream; a change
    // here invalidates every file under tests/goldens/.
    let mut r = DetRng::new(0);
    assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
}
