//! End-to-end acceptance test for the serving subsystem: train a digit
//! model, quantise variants, push everything through CRC-verified
//! checkpoints into the registry, serve over real TCP under concurrency,
//! and show the compression-ensemble guard scores IFGSM samples as more
//! suspect than clean ones — the paper's transfer gap, operationalised.

use advcomp::attacks::{Attack, Ifgsm, NetKind};
use advcomp::compress::Quantizer;
use advcomp::core::{ExperimentScale, TaskSetup, TrainedModel};
use advcomp::models::{mlp, Checkpoint};
use advcomp::serve::json::Json;
use advcomp::serve::protocol::Command;
use advcomp::serve::{Client, Engine, GuardConfig, ModelRegistry, ServeConfig, ServeError, Server};
use std::time::Duration;

#[test]
fn serve_trained_ensemble_end_to_end() {
    let scale = ExperimentScale::tiny();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let baseline = TrainedModel::train(&setup, &scale, 42).unwrap();
    assert!(baseline.test_accuracy > 0.8, "{}", baseline.test_accuracy);

    // Packed integer-execution variants: quantise to the grid, then freeze
    // into block-quantised form so the guard's variant forwards run the
    // fused int8 GEMM. Their checkpoints carry the packed blocks (format
    // v3) and loading them freezes the fresh registry models in turn.
    let dense = baseline.instantiate().unwrap();
    let mut quant8 = baseline.instantiate().unwrap();
    let frozen8 = Quantizer::for_bitwidth(8)
        .unwrap()
        .quantize_frozen(&mut quant8)
        .unwrap();
    assert!(frozen8 > 0, "no layers froze");
    let mut quant5 = baseline.instantiate().unwrap();
    Quantizer::for_bitwidth(5)
        .unwrap()
        .quantize_frozen(&mut quant5)
        .unwrap();

    // Through checkpoint files: exercises the CRC footer on both ends —
    // v2 for the dense baseline, v3 (packed) for the frozen variants.
    let dir = std::env::temp_dir().join(format!("advcomp_serve_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let save = |name: &str, model: &advcomp::nn::Sequential| {
        let path = dir.join(format!("{name}.advc"));
        Checkpoint::capture(model).save(&path).unwrap();
        path
    };
    let dense_path = save("dense", &dense);
    let q8_path = save("quant8", &quant8);
    let q5_path = save("quant5", &quant5);

    let mut registry = ModelRegistry::new(setup.test.sample_shape()).unwrap();
    let arch = || setup.fresh_model(42);
    registry
        .load_baseline("dense", arch(), &dense_path)
        .unwrap();
    registry.load_variant("quant8", arch(), &q8_path).unwrap();
    registry.load_variant("quant5", arch(), &q5_path).unwrap();

    let engine = Engine::start(
        &registry,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_delay: Duration::from_millis(3),
            queue_depth: 128,
            guard: Some(GuardConfig { threshold: 0.5 }),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server = Server::bind(engine.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // 64 concurrent TCP requests, one connection each: every single one
    // must be answered (queue depth 128 means none may be shed).
    let sample_len: usize = setup.test.sample_shape().iter().product();
    let (x, _) = setup.test.slice(0, 64).unwrap();
    let mut handles = Vec::new();
    for i in 0..64 {
        let input = x.data()[i * sample_len..(i + 1) * sample_len].to_vec();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.predict(input, false).unwrap()
        }));
    }
    let mut answered = 0;
    for h in handles {
        let resp = h.join().unwrap();
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "{resp}"
        );
        assert!(resp.get("label").and_then(Json::as_u64).unwrap() < 10);
        assert!(resp.get("suspect").and_then(Json::as_f64).is_some());
        answered += 1;
    }
    assert_eq!(answered, 64);

    // The dynamic batcher must actually have coalesced under that load.
    let mut client = Client::connect(addr).unwrap();
    let metrics = client.control(Command::Metrics).unwrap();
    let max_batch = metrics
        .get("metrics")
        .and_then(|m| m.get("batch"))
        .and_then(|b| b.get("max"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        max_batch > 1,
        "no batching observed (max batch {max_batch})"
    );
    // Per-model forward histograms: baseline and both packed variants must
    // have recorded every batch, making the packed-vs-dense cost visible.
    let per_model = metrics
        .get("metrics")
        .and_then(|m| m.get("latency"))
        .and_then(|l| l.get("forward_per_model"))
        .expect("forward_per_model section");
    for name in ["dense", "quant8", "quant5"] {
        let count = per_model
            .get(name)
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        assert!(count > 0, "no forward samples recorded for {name}");
    }

    // Guard: IFGSM samples crafted on the served baseline must score a
    // higher mean suspect rate than the same clean samples.
    let n = 48;
    let (x, y) = setup.test.slice(0, n).unwrap();
    let mut attacked = baseline.instantiate().unwrap();
    let adv = Ifgsm::new(0.03, 10)
        .unwrap()
        .generate(&mut attacked, &x, &y)
        .unwrap();
    let mean_suspect = |images: &advcomp::tensor::Tensor| -> f64 {
        let mut total = 0.0;
        for i in 0..n {
            let input = images.data()[i * sample_len..(i + 1) * sample_len].to_vec();
            let p = engine.submit(input, false).unwrap();
            total += p.suspect.expect("guard enabled");
        }
        total / n as f64
    };
    let clean_suspect = mean_suspect(&x);
    let adv_suspect = mean_suspect(&adv);
    assert!(
        adv_suspect > clean_suspect,
        "guard blind to IFGSM: clean {clean_suspect:.4} vs adversarial {adv_suspect:.4}"
    );

    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_returns_overloaded_not_a_hang() {
    // Deliberately starved engine: one worker, batch size one, a single
    // queue slot. A burst must shed load with explicit `overloaded`
    // responses over the wire — and never deadlock.
    let mut registry = ModelRegistry::new(&[1, 28, 28]).unwrap();
    registry.set_baseline("dense", mlp(64, 0)).unwrap();
    registry.add_variant("alt", mlp(64, 1)).unwrap();
    let engine = Engine::start(
        &registry,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            queue_depth: 1,
            guard: Some(GuardConfig { threshold: 0.5 }),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server = Server::bind(engine.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for t in 0..16 {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut ok = 0u64;
            let mut overloaded = 0u64;
            for i in 0..8 {
                let v = (t * 8 + i) as f32 / 128.0;
                let resp = client.predict(vec![v; 28 * 28], false).unwrap();
                match resp.get("status").and_then(Json::as_str) {
                    Some("ok") => ok += 1,
                    Some("overloaded") => overloaded += 1,
                    other => panic!("unexpected status {other:?}"),
                }
            }
            (ok, overloaded)
        }));
    }
    let (mut ok, mut overloaded) = (0, 0);
    for h in handles {
        let (o, v) = h.join().unwrap();
        ok += o;
        overloaded += v;
    }
    assert_eq!(ok + overloaded, 16 * 8, "every request got a response");
    assert!(ok > 0, "some requests must succeed");
    assert!(
        overloaded > 0,
        "a 1-deep queue under a 16-way burst must shed load"
    );
    // The engine's own counter agrees with what clients saw on the wire.
    assert_eq!(
        engine
            .metrics()
            .overloaded
            .load(std::sync::atomic::Ordering::Relaxed),
        overloaded
    );
    server.join();

    // And after shutdown, submissions fail fast rather than hanging.
    assert!(matches!(
        engine.submit(vec![0.0; 28 * 28], false),
        Err(ServeError::ShuttingDown)
    ));
}
