//! Cross-crate property-based tests (proptest) on the invariants the
//! experiments rely on.

use advcomp::attacks::{Attack, Fgsm, Ifgsm};
use advcomp::compress::{magnitude_threshold, PruneMask};
use advcomp::models::{mlp, Checkpoint};
use advcomp::nn::Mode;
use advcomp::qformat::QFormat;
use advcomp::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// IFGSM output always stays inside [0,1] and within iters·ε of the
    /// input in L∞ — for arbitrary inputs and parameters.
    #[test]
    fn ifgsm_respects_ball(
        seed in 0u64..1000,
        eps in 0.001f32..0.2,
        iters in 1usize..6,
        pixels in proptest::collection::vec(0.0f32..1.0, 28 * 28),
    ) {
        let mut model = mlp(8, seed);
        let x = Tensor::new(&[1, 1, 28, 28], pixels).unwrap();
        let attack = Ifgsm::new(eps, iters).unwrap();
        let adv = attack.generate(&mut model, &x, &[3]).unwrap();
        let delta = adv.sub(&x).unwrap();
        prop_assert!(delta.linf_norm() <= eps * iters as f32 + 1e-5);
        prop_assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// FGSM perturbs every coordinate by exactly 0, +ε or −ε before the
    /// pixel-range clamp.
    #[test]
    fn fgsm_step_structure(
        seed in 0u64..1000,
        eps in 0.01f32..0.3,
        pixels in proptest::collection::vec(0.3f32..0.7, 28 * 28),
    ) {
        // Pixels chosen away from the clamp boundary so steps are exact.
        let mut model = mlp(8, seed);
        let x = Tensor::new(&[1, 1, 28, 28], pixels).unwrap();
        let attack = Fgsm::new(eps).unwrap();
        let adv = attack.generate(&mut model, &x, &[1]).unwrap();
        let delta = adv.sub(&x).unwrap();
        for &d in delta.data() {
            let ok = d.abs() < 1e-6 || (d.abs() - eps).abs() < 1e-5;
            prop_assert!(ok, "unexpected step {d} for eps {eps}");
        }
    }

    /// Quantisation is idempotent, monotone and range-bounded for every
    /// valid (int_bits, frac_bits) format.
    #[test]
    fn quantiser_invariants(
        int_bits in 1u32..6,
        frac_bits in 1u32..12,
        a in -100.0f32..100.0,
        b in -100.0f32..100.0,
    ) {
        let q = QFormat::new(int_bits, frac_bits).unwrap();
        let qa = q.quantize(a);
        prop_assert_eq!(q.quantize(qa), qa);
        prop_assert!(qa >= q.min_value() && qa <= q.max_value());
        if a <= b {
            prop_assert!(qa <= q.quantize(b));
        }
        prop_assert!((qa - a.clamp(q.min_value(), q.max_value())).abs() <= q.resolution());
    }

    /// The magnitude threshold always yields a kept-fraction within one
    /// element of the target density.
    #[test]
    fn prune_threshold_density(
        values in proptest::collection::vec(-10.0f32..10.0, 1..400),
        density in 0.01f64..1.0,
    ) {
        let t = magnitude_threshold(&values, density);
        let kept = values.iter().filter(|v| v.abs() >= t).count();
        let target = (values.len() as f64 * density).round();
        // Ties at the threshold can keep a few extra values.
        prop_assert!(kept as f64 >= target - 1.0,
            "kept {kept} of {} at density {density}", values.len());
    }

    /// Masks built from a model have the target density and applying them
    /// never increases any weight's magnitude.
    #[test]
    fn prune_mask_behaviour(seed in 0u64..100, density in 0.05f64..1.0) {
        let mut model = mlp(8, seed);
        let before: Vec<f32> = model.param("fc1.weight").unwrap().value.data().to_vec();
        let mask = PruneMask::from_magnitude(&model, density).unwrap();
        prop_assert!((mask.overall_density() - density).abs() < 0.05);
        mask.apply(&mut model).unwrap();
        let after = model.param("fc1.weight").unwrap().value.data();
        for (b, a) in before.iter().zip(after) {
            prop_assert!(a.abs() <= b.abs() + 1e-12);
            prop_assert!(*a == 0.0 || a == b);
        }
    }

    /// Checkpoints roundtrip arbitrary parameter tensors bit-exactly.
    #[test]
    fn checkpoint_roundtrip(values in proptest::collection::vec(-1e6f32..1e6, 1..200)) {
        let len = values.len();
        let ckpt = Checkpoint::from_params(vec![
            ("w".into(), Tensor::new(&[len], values.clone()).unwrap()),
        ]);
        let decoded = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        prop_assert_eq!(decoded.params()[0].1.data(), values.as_slice());
    }

    /// Forward passes are deterministic in eval mode: same input, same
    /// logits, regardless of how often we run.
    #[test]
    fn eval_forward_deterministic(seed in 0u64..100, pixels in proptest::collection::vec(0.0f32..1.0, 28 * 28)) {
        let mut model = mlp(8, seed);
        let x = Tensor::new(&[1, 1, 28, 28], pixels).unwrap();
        let a = model.forward(&x, Mode::Eval).unwrap();
        let b = model.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }
}
