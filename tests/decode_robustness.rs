//! Fuzz-style robustness: every binary decoder in the workspace must
//! reject arbitrary byte soup with a typed error — never panic, never hang,
//! never return garbage silently accepted as valid.

use advcomp::data::idx::{parse_cifar_batch, parse_idx_images, parse_idx_labels};
use advcomp::models::Checkpoint;
use advcomp::qformat::QFormat;
use advcomp::sparse::huffman;
use advcomp::sparse::QuantizedTensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn checkpoint_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Checkpoint::from_bytes(&bytes);
    }

    #[test]
    fn idx_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_idx_images(&bytes);
        let _ = parse_idx_labels(&bytes);
        let _ = parse_cifar_batch(&bytes);
    }

    #[test]
    fn quantized_unpack_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        n in 0usize..64,
        bw in 2u32..17,
    ) {
        if let Ok(fmt) = QFormat::for_bitwidth(bw) {
            if let Ok(qt) = QuantizedTensor::unpack(&bytes, &[n], fmt) {
                // Anything accepted must decode to in-range values.
                let t = qt.to_tensor().unwrap();
                let in_range = t
                    .data()
                    .iter()
                    .all(|v| *v >= fmt.min_value() && *v <= fmt.max_value());
                prop_assert!(in_range);
            }
        }
    }

    #[test]
    fn huffman_decoder_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        len in 0usize..64,
        symbols in proptest::collection::vec(-8i32..8, 1..32),
    ) {
        // A legitimate codebook fed a corrupted stream must error, not
        // panic or loop.
        let book = huffman::build_codebook(&symbols).unwrap();
        let bits = payload.len() * 8;
        let enc = huffman::Encoded { bytes: payload, len, bits };
        let _ = huffman::decode(&enc, &book);
    }

    /// Checkpoints with adversarial headers (huge claimed counts) must fail
    /// fast on truncation rather than attempt enormous allocations.
    #[test]
    fn checkpoint_truncation_from_valid_prefix(cut in 0usize..100) {
        let model = advcomp::models::mlp(4, 0);
        let bytes = Checkpoint::capture(&model).to_bytes();
        let cut = cut.min(bytes.len().saturating_sub(1));
        let truncated = &bytes[..bytes.len() - 1 - cut];
        prop_assert!(Checkpoint::from_bytes(truncated).is_err());
    }
}
