//! Quickstart: train a LeNet5 baseline on the synthetic digit task, craft
//! IFGSM adversarial samples against it, and measure the damage.
//!
//! ```text
//! cargo run --release --example quickstart            # quick profile
//! ADVCOMP_SCALE=tiny cargo run --release --example quickstart
//! ```

use advcomp::attacks::{Attack, Ifgsm, NetKind, PerturbationStats};
use advcomp::core::report::pct;
use advcomp::core::{evaluate_model, ExperimentScale, TaskSetup, TrainedModel};
use advcomp::nn::Mode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    println!(
        "training LeNet5 on SynthDigits ({} samples)...",
        scale.train_size
    );
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let trained = TrainedModel::train(&setup, &scale, 42)?;
    println!(
        "baseline test accuracy: {}% (paper's LeNet5: 99.36% on MNIST)",
        pct(trained.test_accuracy)
    );

    // White-box IFGSM at the paper's Table 1 parameters (ε=0.02, i=12).
    let mut model = trained.instantiate()?;
    let n = scale.attack_eval.min(setup.test.len());
    let (x, y) = setup.test.slice(0, n)?;
    let attack = Ifgsm::new(0.02, 12)?;
    let adv = attack.generate(&mut model, &x, &y)?;

    let clean_acc = evaluate_model(&mut model, &setup.test, 64)?;
    let logits = model.forward(&adv, Mode::Eval)?;
    let adv_acc = advcomp::nn::accuracy(&logits, &y)?;
    let stats = PerturbationStats::between(&x, &adv)?;

    println!("\nIFGSM (epsilon=0.02, 12 iterations), {n} samples:");
    println!("  clean accuracy:       {}%", pct(clean_acc));
    println!("  adversarial accuracy: {}%", pct(adv_acc));
    println!(
        "  perturbation: mean L2 {:.3}, Linf {:.3}, {:.1}% of pixels touched",
        stats.l2,
        stats.linf,
        100.0 * stats.l0_fraction
    );
    println!("\nNext: examples/cctv_transfer.rs and examples/edge_av_scanner.rs");
    Ok(())
}
