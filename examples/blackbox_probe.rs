//! Extension beyond the paper's taxonomy: a **black-box** attacker who
//! cannot read any deployed weights — compressed or not — and can only
//! query the product for labels (Papernot et al. 2017, cited in §2.3).
//!
//! The attacker distils a surrogate model from the target's answers on a
//! probe set, white-boxes the surrogate with IFGSM, and replays the samples
//! against the real target.

use advcomp::attacks::{Ifgsm, NetKind};
use advcomp::core::blackbox::{black_box_attack, SurrogateConfig};
use advcomp::core::report::pct;
use advcomp::core::{ExperimentScale, TaskSetup, TrainedModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    println!("training the victim model...");
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let victim = TrainedModel::train(&setup, &scale, 42)?;
    println!("victim accuracy: {}%\n", pct(victim.test_accuracy));

    let mut target = victim.instantiate()?;
    // Attacker's own architecture + initialisation; they never see the
    // victim's weights.
    let mut surrogate = setup.fresh_model(1234);
    let probe_n = (scale.train_size / 2).min(setup.train.len());
    let probe = setup.train.images().narrow(0, probe_n)?;
    let eval_n = scale.attack_eval.min(setup.test.len());
    let (x, y) = setup.test.slice(0, eval_n)?;

    println!("distilling a surrogate from {probe_n} label queries...");
    let attack = Ifgsm::new(0.05, 8)?;
    let (report, clean, adv) = black_box_attack(
        &mut surrogate,
        &mut target,
        &probe,
        (&x, &y),
        &attack,
        &SurrogateConfig::default(),
    )?;

    println!("surrogate/target agreement: {}%", pct(report.agreement));
    println!("oracle queries spent:       {}", report.queries);
    println!("\nvictim accuracy on clean samples:      {}%", pct(clean));
    println!("victim accuracy under black-box attack: {}%", pct(adv));
    println!(
        "\nEven with zero weight access, label queries alone are enough to\n\
         craft transferable samples — the paper's 'break-once, run-anywhere'\n\
         concern extends below its own weakest threat model."
    );
    Ok(())
}
