//! Scenario 2 (`Full → Comp`), the paper's CCTV story: an alarm company
//! takes a publicly-available model, prunes it for consumer CCTV hardware,
//! and ships it. The attacker never sees the device model — they craft
//! adversarial samples on the **public baseline** and replay them against
//! the pruned devices.
//!
//! This example prunes the baseline to several densities with Dynamic
//! Network Surgery and shows how well baseline-crafted IFGSM samples
//! transfer to each derivative.

use advcomp::attacks::{AttackKind, NetKind, PaperParams};
use advcomp::core::report::{pct, Table};
use advcomp::core::scenario::attack_transfer;
use advcomp::core::{Compression, ExperimentScale, TaskSetup, TrainedModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    println!("training the 'public' LeNet5 baseline...");
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let baseline = TrainedModel::train(&setup, &scale, 42)?;
    println!("public model accuracy: {}%\n", pct(baseline.test_accuracy));

    let n = scale.attack_eval.min(setup.test.len());
    let (x, y) = setup.test.slice(0, n)?;
    let attack = PaperParams::build_adapted(NetKind::LeNet5, AttackKind::Ifgsm);
    let finetune_cfg = setup.finetune_config(&scale);

    let mut table = Table::new(
        "Attacker crafts on the public model; devices run pruned derivatives",
        &[
            "device density",
            "device clean acc%",
            "device acc% under transferred attack",
        ],
    );
    for density in [0.5f64, 0.3, 0.1] {
        // The vendor prunes + fine-tunes a device model.
        let mut device = baseline.instantiate()?;
        Compression::DnsPrune { density }.apply(&mut device, &setup.train, &finetune_cfg)?;
        // The attacker generates on their own copy of the public model.
        let mut public = baseline.instantiate()?;
        let outcome = attack_transfer(&mut public, &mut device, attack.as_ref(), &x, &y)?;
        table.push_row(vec![
            format!("{density:.1}"),
            pct(outcome.clean_accuracy),
            pct(outcome.adversarial_accuracy),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\nThe transferred attack degrades every derivative: shipping a pruned\n\
         model is not a defence (paper §4.1, cyan line of Figure 2)."
    );
    Ok(())
}
