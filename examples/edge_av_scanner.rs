//! Scenario 3 (`Comp → Full`), the paper's anti-virus story: a security
//! vendor deploys a *quantised* classifier in offline edge scanners; the
//! full-precision master model stays hidden in the cloud. An attacker buys
//! a scanner, extracts the 8-bit model, crafts adversarial samples against
//! it — do those samples also evade the hidden master model (and therefore
//! every other product derived from it)?

use advcomp::attacks::{AttackKind, NetKind, PaperParams};
use advcomp::core::report::{pct, Table};
use advcomp::core::scenario::attack_transfer;
use advcomp::core::{Compression, ExperimentScale, TaskSetup, TrainedModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    println!("training the vendor's hidden full-precision model...");
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let master = TrainedModel::train(&setup, &scale, 42)?;
    println!("hidden master accuracy: {}%\n", pct(master.test_accuracy));

    let n = scale.attack_eval.min(setup.test.len());
    let (x, y) = setup.test.slice(0, n)?;
    let finetune_cfg = setup.finetune_config(&scale);

    let mut table = Table::new(
        "Samples crafted on the extracted edge model, applied to the hidden master",
        &[
            "edge bitwidth",
            "edge clean acc%",
            "edge acc% under own attack",
            "master acc% under same samples",
        ],
    );
    for bitwidth in [16u32, 8, 4] {
        // The vendor ships a quantised edge model (weights + activations).
        let mut edge = master.instantiate()?;
        Compression::Quant {
            bitwidth,
            weights_only: false,
        }
        .apply(&mut edge, &setup.train, &finetune_cfg)?;
        let edge_clean = advcomp::core::evaluate_model(&mut edge, &setup.test, 64)?;

        // Attacker white-boxes the edge model...
        let attack = PaperParams::build_adapted(NetKind::LeNet5, AttackKind::Ifgsm);
        let mut edge_target = master.instantiate()?;
        Compression::Quant {
            bitwidth,
            weights_only: false,
        }
        .apply(&mut edge_target, &setup.train, &finetune_cfg)?;
        let own = attack_transfer(&mut edge, &mut edge_target, attack.as_ref(), &x, &y)?;
        // ...and replays the same samples against the hidden master.
        let mut hidden = master.instantiate()?;
        let crossed = attack_transfer(&mut edge, &mut hidden, attack.as_ref(), &x, &y)?;

        table.push_row(vec![
            bitwidth.to_string(),
            pct(edge_clean),
            pct(own.adversarial_accuracy),
            pct(crossed.adversarial_accuracy),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\n'Break-once, run-anywhere': edge-crafted samples transfer to the\n\
         hidden master at moderate bitwidths; only aggressive (4-bit)\n\
         quantisation blunts them marginally (paper §4.2, Figure 5)."
    );
    Ok(())
}
