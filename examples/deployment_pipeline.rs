//! The full edge-deployment pipeline end to end: train → prune (DNS) →
//! quantise → encode (CSR / packed codes / Huffman) → verify the deployed
//! artefact computes the same function → report what actually ships.
//!
//! This is the substrate the paper's introduction describes (EIE: "pruning,
//! quantisation and encoding"), exercised through `advcomp-sparse`.

use advcomp::attacks::NetKind;
use advcomp::compress::Quantizer;
use advcomp::core::report::{pct, Table};
use advcomp::core::{Compression, ExperimentScale, TaskSetup, TrainedModel};
use advcomp::qformat::QFormat;
use advcomp::sparse::{huffman, CsrMatrix, ModelSize, QuantizedTensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    println!("1. training the baseline...");
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let baseline = TrainedModel::train(&setup, &scale, 42)?;
    println!("   accuracy: {}%\n", pct(baseline.test_accuracy));

    println!("2. compressing: DNS prune to 30% density, then 8-bit PTQ...");
    let mut model = baseline.instantiate()?;
    Compression::DnsPrune { density: 0.3 }.apply(
        &mut model,
        &setup.train,
        &setup.finetune_config(&scale),
    )?;
    let fmt = QFormat::for_bitwidth(8)?;
    Quantizer::for_bitwidth(8)?.quantize(&mut model);
    let acc = advcomp::core::evaluate_model(&mut model, &setup.test, 64)?;
    println!("   compressed accuracy: {}%\n", pct(acc));

    println!("3. encoding every weight tensor for shipment...");
    let mut table = Table::new(
        "Per-tensor shipping formats",
        &[
            "tensor",
            "shape",
            "density",
            "CSR B",
            "packed B",
            "huffman B",
        ],
    );
    for p in model.params() {
        if p.kind != advcomp::nn::ParamKind::Weight {
            continue;
        }
        let rows = p.value.shape()[0];
        let cols = p.value.len() / rows;
        let csr = CsrMatrix::from_dense(&p.value.reshape(&[rows, cols])?)?;
        let qt = QuantizedTensor::from_tensor(&p.value, fmt);
        let book = huffman::build_codebook(qt.codes())?;
        let encoded = huffman::encode(qt.codes(), &book)?;
        // Decode-verify before shipping: the artefact must be lossless.
        assert_eq!(huffman::decode(&encoded, &book)?, qt.codes());
        let unpacked = QuantizedTensor::unpack(&qt.pack(), p.value.shape(), fmt)?;
        assert_eq!(unpacked.to_tensor()?.data(), p.value.data());
        table.push_row(vec![
            p.name.clone(),
            format!("{:?}", p.value.shape()),
            format!("{:.2}", p.value.density()),
            csr.storage_bytes().to_string(),
            qt.storage_bytes().to_string(),
            (encoded.bits / 8 + 1).to_string(),
        ]);
    }
    print!("{}", table.to_markdown());

    let report = ModelSize::measure(&model, Some(fmt))?;
    println!(
        "\n4. totals: dense f32 {} B → best shipped {} B ({:.1}x compression)",
        report.dense_f32_bytes,
        report
            .huffman_bytes
            .unwrap_or(report.csr_bytes)
            .min(report.csr_bytes),
        report.best_ratio()
    );
    println!(
        "   code-stream entropy: {:.2} bits/symbol",
        report.code_entropy_bits.unwrap_or(f64::NAN)
    );
    Ok(())
}
