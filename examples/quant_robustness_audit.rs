//! A deployment audit: before shipping a quantised model, measure what the
//! chosen bitwidth does to (a) clean accuracy, (b) white-box attackability,
//! and (c) the weight/activation distributions (the paper's Figure 6 view).
//!
//! Also runs the weights-only ablation, isolating the activation-clipping
//! effect the paper credits with the low-bitwidth defence.

use advcomp::attacks::{AttackKind, NetKind, PaperParams};
use advcomp::core::cdf::{activation_values, weight_values, zero_fraction};
use advcomp::core::report::{pct, Table};
use advcomp::core::scenario::attack_transfer;
use advcomp::core::{Compression, ExperimentScale, TaskSetup, TrainedModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    println!("training the float32 reference model...");
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let reference = TrainedModel::train(&setup, &scale, 42)?;
    println!("reference accuracy: {}%\n", pct(reference.test_accuracy));

    let n = scale.attack_eval.min(setup.test.len());
    let (x, y) = setup.test.slice(0, n)?;
    let (probe, _) = setup.test.slice(0, 10.min(setup.test.len()))?;
    let finetune_cfg = setup.finetune_config(&scale);
    let attack = PaperParams::build_adapted(NetKind::LeNet5, AttackKind::Ifgsm);

    let mut table = Table::new(
        "Quantisation audit (IFGSM white-box per variant)",
        &[
            "variant",
            "clean acc%",
            "adv acc%",
            "weight zero-mass",
            "act zero-mass",
            "act max",
        ],
    );
    let mut variants: Vec<(String, Option<Compression>)> = vec![("float32".into(), None)];
    for bw in [16u32, 8, 4] {
        variants.push((
            format!("w+a {bw}-bit"),
            Some(Compression::Quant {
                bitwidth: bw,
                weights_only: false,
            }),
        ));
        variants.push((
            format!("w-only {bw}-bit"),
            Some(Compression::Quant {
                bitwidth: bw,
                weights_only: true,
            }),
        ));
    }

    for (name, recipe) in variants {
        let mut model = reference.instantiate()?;
        if let Some(recipe) = recipe {
            recipe.apply(&mut model, &setup.train, &finetune_cfg)?;
        }
        let mut target = reference.instantiate()?;
        target.import_params(&model.export_params())?;
        // Match activation formats on the target copy.
        if let Some(Compression::Quant {
            bitwidth,
            weights_only: false,
        }) = recipe
        {
            target.set_activation_format(Some(advcomp::qformat::QFormat::for_bitwidth(bitwidth)?));
        }
        let outcome = attack_transfer(&mut model, &mut target, attack.as_ref(), &x, &y)?;
        let weights = weight_values(&model);
        let acts = activation_values(&mut model, &probe)?;
        let act_max = acts.iter().fold(0.0f32, |a, v| a.max(*v));
        table.push_row(vec![
            name,
            pct(outcome.clean_accuracy),
            pct(outcome.adversarial_accuracy),
            format!("{:.3}", zero_fraction(&weights)),
            format!("{:.3}", zero_fraction(&acts)),
            format!("{act_max:.2}"),
        ]);
    }
    print!("{}", table.to_markdown());
    println!(
        "\nReading: 4-bit weight+activation quantisation clips activations to\n\
         < 1.0 and drives most values to zero (Figure 6); the white-box\n\
         defence it buys is marginal (Figure 5) — do not rely on it."
    );
    Ok(())
}
