//! Result tables: console (Markdown) and CSV output, plus JSON records.

use crate::Result;
use serde::Serialize;
use std::path::Path;

/// A rectangular result table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must match `headers.len()`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width — a programmer
    /// error in the exhibit binary.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders a Markdown table (what the exhibit binaries print).
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("## {}\n\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}-|", "-".repeat(w + 1)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes only where needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    /// Crash-safe: see [`write_atomic`].
    ///
    /// # Errors
    ///
    /// Returns I/O errors.
    pub fn write_csv(&self, path: &Path) -> Result<()> {
        write_atomic(path, &self.to_csv())
    }
}

/// Writes any serialisable experiment record as pretty JSON, creating
/// parent directories. Crash-safe: see [`write_atomic`].
///
/// # Errors
///
/// Returns I/O errors (serialisation of these plain records cannot fail).
pub fn write_json<T: Serialize>(value: &T, path: &Path) -> Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| crate::CoreError::InvalidConfig(format!("serialisation failed: {e}")))?;
    write_atomic(path, &json)
}

/// Crash-safe file write: creates parent directories, writes the full
/// contents to a `.tmp` sibling, then atomically renames it over `path`.
/// A crash (or injected fault) mid-write leaves either the previous file
/// intact or a stale temp file — never a truncated report that a later
/// resume or plotting step would trust.
///
/// # Errors
///
/// Returns I/O errors (including one injected at the `report_write` fault
/// site).
pub fn write_atomic(path: &Path, contents: &str) -> Result<()> {
    if let Some(e) = advcomp_nn::faults::io_error("report_write") {
        return Err(crate::CoreError::Io(e));
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Formats an accuracy in percent with two decimals, e.g. `"85.93"`.
pub fn pct(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "hello".into()]);
        t.push_row(vec!["2".into(), "wor,ld".into()]);
        t
    }

    #[test]
    fn markdown_render() {
        let md = table().to_markdown();
        assert!(md.contains("## Demo"));
        // Column b is padded to the widest cell ("wor,ld", 6 chars).
        assert!(md.contains("| a | b      |"));
        assert!(md.contains("| 1 | hello  |"));
    }

    #[test]
    fn csv_escaping() {
        let csv = table().to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"wor,ld\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("advcomp_report_test");
        let path = dir.join("t.csv");
        table().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, table().to_csv());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_write() {
        let dir = std::env::temp_dir().join("advcomp_report_test");
        let path = dir.join("r.json");
        write_json(&vec![1, 2, 3], &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains('1'));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.8593), "85.93");
        assert_eq!(pct(1.0), "100.00");
    }

    #[test]
    fn atomic_write_leaves_no_temp_residue() {
        let dir = std::env::temp_dir().join(format!(
            "advcomp_report_atomic_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("nested/deeper/out.json");
        write_atomic(&path, "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}");
        assert!(!path.with_extension("json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_io_fault_preserves_previous_report() {
        use advcomp_nn::faults::{install, FaultKind, FaultSpec};
        let dir = std::env::temp_dir().join(format!(
            "advcomp_report_fault_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("r.csv");
        table().write_csv(&path).unwrap();
        let _g = install(vec![FaultSpec::once(FaultKind::Io, "report_write", 0)]);
        assert!(table().write_csv(&path).is_err());
        // The earlier report is still intact and complete.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), table().to_csv());
        std::fs::remove_dir_all(&dir).ok();
    }
}
