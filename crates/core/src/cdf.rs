//! Weight and activation distribution extraction (Figure 6).
//!
//! Figure 6 of the paper plots cumulative distribution functions of all
//! weights (a) and all activations (b) of quantised CifarNet at several
//! bitwidths, sampled over ten validation images. These helpers extract the
//! raw values and reduce them to plot-ready CDF points.

use crate::Result;
use advcomp_nn::{Mode, ParamKind, Sequential};
use advcomp_tensor::Tensor;

/// Reduces raw values to at most `resolution` CDF points
/// `(value, cumulative fraction)`, evenly spaced in rank.
///
/// Returns an empty vector for empty input.
pub fn cdf_points(values: &[f32], resolution: usize) -> Vec<(f32, f64)> {
    if values.is_empty() || resolution == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(f32::total_cmp);
    let n = sorted.len();
    let steps = resolution.min(n);
    let mut out = Vec::with_capacity(steps);
    for k in 0..steps {
        // Last rank hits the maximum with cumulative fraction 1.0.
        let rank = if steps == 1 {
            n - 1
        } else {
            k * (n - 1) / (steps - 1)
        };
        out.push((sorted[rank], (rank + 1) as f64 / n as f64));
    }
    out
}

/// All weight values of a model (biases excluded, matching Figure 6a which
/// plots the quantised weight tensors).
pub fn weight_values(model: &Sequential) -> Vec<f32> {
    model
        .params()
        .into_iter()
        .filter(|p| p.kind == ParamKind::Weight)
        .flat_map(|p| p.value.data().iter().copied())
        .collect()
}

/// All activation values the model produces on `images` — collected from
/// every layer that retains its last output (ReLU and FakeQuant points),
/// matching the paper's "ten randomly chosen input images" methodology.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn activation_values(model: &mut Sequential, images: &Tensor) -> Result<Vec<f32>> {
    model.forward(images, Mode::Eval)?;
    let mut out = Vec::new();
    for layer in model.layers() {
        if let Some(t) = layer.last_output() {
            out.extend_from_slice(t.data());
        }
    }
    Ok(out)
}

/// Fraction of `values` that are exactly zero — the headline statistic the
/// paper reads off Figure 6 ("cumulative density reaches around 0.9 when
/// value is at 0" for the 4-bit model).
pub fn zero_fraction(values: &[f32]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v == 0.0).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_models::mlp;

    #[test]
    fn cdf_points_basic() {
        let vals = vec![3.0, 1.0, 2.0, 4.0];
        let pts = cdf_points(&vals, 4);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], (1.0, 0.25));
        assert_eq!(pts[3], (4.0, 1.0));
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn cdf_points_downsamples() {
        let vals: Vec<f32> = (0..1000).map(|v| v as f32).collect();
        let pts = cdf_points(&vals, 10);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[9].1, 1.0);
        assert_eq!(pts[0].0, 0.0);
    }

    #[test]
    fn cdf_points_edge_cases() {
        assert!(cdf_points(&[], 10).is_empty());
        assert!(cdf_points(&[1.0], 0).is_empty());
        let single = cdf_points(&[5.0], 10);
        assert_eq!(single, vec![(5.0, 1.0)]);
    }

    #[test]
    fn weight_values_exclude_biases() {
        let model = mlp(4, 0);
        let n = weight_values(&model).len();
        assert_eq!(n, 28 * 28 * 4 + 4 * 10); // weights only, no biases
    }

    #[test]
    fn activation_values_collected() {
        let mut model = mlp(4, 0);
        let x = Tensor::ones(&[2, 1, 28, 28]);
        let acts = activation_values(&mut model, &x).unwrap();
        // Two FakeQuant points (784 + 4 values per sample) and one ReLU (4).
        assert_eq!(acts.len(), 2 * (784 + 4 + 4));
    }

    #[test]
    fn zero_fraction_counts() {
        assert_eq!(zero_fraction(&[0.0, 1.0, 0.0, 2.0]), 0.5);
        assert_eq!(zero_fraction(&[]), 0.0);
    }
}
