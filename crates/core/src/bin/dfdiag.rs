//! Diagnostic: white-box attack-strength calibration on the quick-scale
//! baselines — the measurements behind `PaperParams::adapted` and the
//! EXPERIMENTS.md calibration table.
//!
//! ```text
//! cargo run --release -p advcomp-core --bin dfdiag
//! ```
use advcomp_attacks::{Attack, DeepFool, Ifgm, NetKind};
use advcomp_core::{ExperimentScale, TaskSetup, TrainedModel};
use advcomp_nn::Mode;

fn adv_acc(
    model: &mut advcomp_nn::Sequential,
    attack: &dyn Attack,
    x: &advcomp_tensor::Tensor,
    y: &[usize],
) -> f64 {
    let adv = attack.generate(model, x, y).unwrap();
    let logits = model.forward(&adv, Mode::Eval).unwrap();
    advcomp_nn::accuracy(&logits, y).unwrap()
}

fn main() {
    let scale = ExperimentScale::quick();
    for net in [NetKind::LeNet5, NetKind::CifarNet] {
        let setup = TaskSetup::new(net, &scale);
        let trained = TrainedModel::train(&setup, &scale, 7).unwrap();
        let mut model = trained.instantiate().unwrap();
        let (x, y) = setup.test.slice(0, 48).unwrap();
        println!(
            "{net:?}: baseline acc {:.3}, final loss {:.4}",
            trained.test_accuracy, trained.final_loss
        );
        // DeepFool: Table 1 iterations vs the adapted 4x.
        let t1_iters = if net == NetKind::LeNet5 { 5 } else { 3 };
        for iters in [t1_iters, 4 * t1_iters] {
            let df = DeepFool::new(0.01, iters).unwrap();
            println!(
                "  deepfool i={iters}: adv_acc={:.3}",
                adv_acc(&mut model, &df, &x, &y)
            );
        }
        // IFGM at Table 1 values (used verbatim).
        let (eps, iters) = if net == NetKind::LeNet5 {
            (10.0, 5)
        } else {
            (0.02, 12)
        };
        let ifgm = Ifgm::new(eps, iters).unwrap();
        println!(
            "  ifgm eps={eps} i={iters}: adv_acc={:.3}",
            adv_acc(&mut model, &ifgm, &x, &y)
        );
    }
}
