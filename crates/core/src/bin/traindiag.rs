//! Diagnostic: trains the reference baselines at each scale profile and
//! reports accuracy, loss and wall time — the quickest way to sanity-check
//! a machine before running the exhibit binaries.
//!
//! ```text
//! cargo run --release -p advcomp-core --bin traindiag
//! ```
use advcomp_attacks::NetKind;
use advcomp_core::{ExperimentScale, TaskSetup, TrainedModel};

fn run(net: NetKind, scale: &ExperimentScale, name: &str) {
    let setup = TaskSetup::new(net, scale);
    let t0 = std::time::Instant::now();
    let trained = TrainedModel::train(&setup, scale, 42).unwrap();
    println!(
        "{name:>6} {net:?}: loss={:.4} test_acc={:.3} ({:.1}s)",
        trained.final_loss,
        trained.test_accuracy,
        t0.elapsed().as_secs_f64()
    );
}

fn main() {
    let tiny = ExperimentScale::tiny();
    let quick = ExperimentScale::quick();
    run(NetKind::LeNet5, &tiny, "tiny");
    run(NetKind::CifarNet, &tiny, "tiny");
    run(NetKind::LeNet5, &quick, "quick");
    run(NetKind::CifarNet, &quick, "quick");
    println!("\nreference (paper): LeNet5 99.36%, CifarNet 85.93%");
}
