//! Density and bitwidth sweeps — the machinery behind Figures 2–5.

use crate::compression::Compression;
use crate::journal::{point_key, Journal, PointRecord, PointStatus};
use crate::resilience::RetryPolicy;
use crate::runner::{run_parallel, run_supervised};
use crate::scale::ExperimentScale;
use crate::trainer::{evaluate_model, TaskSetup, TrainedModel};
use crate::{CoreError, Result};
use advcomp_attacks::{AttackKind, NetKind, PaperParams};
use advcomp_compress::TrainConfig;
use advcomp_nn::{faults, health, Mode};
use advcomp_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One point on a Figure 2/5-style curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The sweep coordinate: weight density (pruning) or bitwidth
    /// (quantisation).
    pub x: f64,
    /// Compression recipe identifier.
    pub compression: String,
    /// Clean test accuracy of the compressed model (the paper's blue
    /// "BASE ACC" line).
    pub base_accuracy: f64,
    /// Scenario 1: accuracy of the compressed model on samples generated
    /// from itself (green line).
    pub comp_to_comp: f64,
    /// Scenario 2: accuracy of the compressed model on samples generated
    /// from the baseline (cyan line).
    pub full_to_comp: f64,
    /// Scenario 3: accuracy of the *baseline* on samples generated from the
    /// compressed model (red line).
    pub comp_to_full: f64,
}

/// A complete Figure 2/5 curve for one (network, attack) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Network identifier.
    pub net: String,
    /// Attack identifier.
    pub attack: String,
    /// Clean test accuracy of the uncompressed baseline.
    pub baseline_accuracy: f64,
    /// Final training loss of the baseline (LeNet5's is much smaller than
    /// CifarNet's — the paper's §4.1 explanation for attack difficulty).
    pub baseline_loss: f32,
    /// Points in sweep order.
    pub points: Vec<SweepPoint>,
}

/// Recipe list builders shared by [`TransferSweep`] and [`TransferMatrix`].
fn pruning_recipes(densities: &[f64], one_shot: bool) -> Vec<(f64, Compression)> {
    densities
        .iter()
        .map(|&d| {
            if d >= 1.0 {
                (d, Compression::None)
            } else if one_shot {
                (d, Compression::OneShotPrune { density: d })
            } else {
                (d, Compression::DnsPrune { density: d })
            }
        })
        .collect()
}

fn quant_recipes(bitwidths: &[u32], weights_only: bool) -> Vec<(f64, Compression)> {
    bitwidths
        .iter()
        .map(|&b| {
            if b >= 32 {
                (b as f64, Compression::None)
            } else {
                (
                    b as f64,
                    Compression::Quant {
                        bitwidth: b,
                        weights_only,
                    },
                )
            }
        })
        .collect()
}

/// A full exhibit run: one trained baseline, a family of compressed
/// variants, and **several attacks** evaluated on each variant. Compressing
/// once per recipe and reusing it across attacks is what makes Figures 2
/// and 5 affordable on CPU.
#[derive(Debug, Clone)]
pub struct TransferMatrix {
    /// Which network to train and compress.
    pub net: NetKind,
    /// Attacks to evaluate (at their Table 1 parameters).
    pub attacks: Vec<AttackKind>,
    /// `(x coordinate, recipe)` pairs, e.g. densities or bitwidths.
    pub recipes: Vec<(f64, Compression)>,
}

impl TransferMatrix {
    /// Figure 2: DNS-pruning sweep over `densities` for all `attacks`.
    pub fn pruning(net: NetKind, attacks: Vec<AttackKind>, densities: &[f64]) -> Self {
        TransferMatrix {
            net,
            attacks,
            recipes: pruning_recipes(densities, false),
        }
    }

    /// Ablation: one-shot pruning instead of DNS.
    pub fn pruning_one_shot(net: NetKind, attacks: Vec<AttackKind>, densities: &[f64]) -> Self {
        TransferMatrix {
            net,
            attacks,
            recipes: pruning_recipes(densities, true),
        }
    }

    /// Figure 5: weight+activation quantisation sweep over `bitwidths`
    /// (32 = float32 baseline).
    pub fn quantisation(net: NetKind, attacks: Vec<AttackKind>, bitwidths: &[u32]) -> Self {
        TransferMatrix {
            net,
            attacks,
            recipes: quant_recipes(bitwidths, false),
        }
    }

    /// Ablation: weights-only quantisation (isolates the activation
    /// clipping effect of §4.2).
    pub fn quantisation_weights_only(
        net: NetKind,
        attacks: Vec<AttackKind>,
        bitwidths: &[u32],
    ) -> Self {
        TransferMatrix {
            net,
            attacks,
            recipes: quant_recipes(bitwidths, true),
        }
    }

    /// Runs the matrix: trains the baseline once (seed 7), compresses each
    /// recipe once, evaluates all attacks on it, and returns one
    /// [`SweepResult`] per attack (in `self.attacks` order).
    ///
    /// # Errors
    ///
    /// Propagates training, compression and attack errors; rejects empty
    /// attack or recipe lists.
    pub fn run(&self, scale: &ExperimentScale) -> Result<Vec<SweepResult>> {
        self.run_with_baseline_seed(scale, 7)
    }

    /// [`TransferMatrix::run`] with an explicit baseline-training seed.
    ///
    /// Fail-fast wrapper over [`TransferMatrix::run_resilient`]: no journal,
    /// no retries, and any failed point (panic included) surfaces as an
    /// error — the semantics tests and short diagnostics want.
    ///
    /// # Errors
    ///
    /// Same as [`TransferMatrix::run`].
    pub fn run_with_baseline_seed(
        &self,
        scale: &ExperimentScale,
        seed: u64,
    ) -> Result<Vec<SweepResult>> {
        let cfg = RunConfig {
            seed,
            run_dir: None,
            retry: RetryPolicy::none(),
        };
        let run = self.run_resilient(scale, &cfg)?;
        if let Some(f) = run.failed.first() {
            return Err(CoreError::Job(format!(
                "sweep point x={} ({}): {}",
                f.x, f.compression, f.error
            )));
        }
        Ok(run.results)
    }

    /// Trains the baseline and precomputes everything point execution
    /// needs: per-attack evaluation sets, baseline-generated adversarial
    /// samples (Scenario 2 inputs) and per-point journal keys. The result
    /// is self-contained and `Sync`, so one [`PreparedMatrix`] can be
    /// shared (e.g. behind an `Arc`) by local workers, the distributed
    /// coordinator and its in-process workers alike.
    ///
    /// # Errors
    ///
    /// Rejects empty attack/recipe lists; propagates baseline-training,
    /// data and attack errors.
    pub fn prepare(&self, scale: &ExperimentScale, seed: u64) -> Result<PreparedMatrix> {
        if self.recipes.is_empty() {
            return Err(CoreError::InvalidConfig("sweep has no recipes".into()));
        }
        if self.attacks.is_empty() {
            return Err(CoreError::InvalidConfig("sweep has no attacks".into()));
        }
        let setup = TaskSetup::new(self.net, scale);
        let baseline = TrainedModel::train(&setup, scale, seed)?;
        let finetune_cfg = setup.finetune_config(scale);

        // Per-attack evaluation sets and baseline-generated adversarial
        // samples — these do not depend on the recipe, so compute them once.
        let mut eval_sets: Vec<(Tensor, Vec<usize>)> = Vec::new();
        let mut adv_from_full: Vec<Tensor> = Vec::new();
        {
            let mut full = baseline.instantiate()?;
            for &kind in &self.attacks {
                let n = eval_count(kind, scale, setup.test.len());
                let (x, y) = setup.test.slice(0, n)?;
                let attack = PaperParams::build_adapted(self.net, kind);
                let adv = attack.generate(&mut full, &x, &y)?;
                eval_sets.push((x, y));
                adv_from_full.push(adv);
            }
        }

        let attack_ids: Vec<&str> = self.attacks.iter().map(|k| k.id()).collect();
        let keys: Vec<String> = self
            .recipes
            .iter()
            .map(|(x, recipe)| point_key(self.net.id(), &attack_ids, *x, &recipe.id(), seed, scale))
            .collect();

        Ok(PreparedMatrix {
            net: self.net,
            attacks: self.attacks.clone(),
            recipes: self.recipes.clone(),
            scale: *scale,
            seed,
            setup,
            baseline,
            finetune_cfg,
            eval_sets,
            adv_from_full,
            keys,
        })
    }

    /// Runs the matrix under the full resilience stack: supervised workers
    /// (panic isolation + [`RetryPolicy`] retries), per-point numerical
    /// health capture, and — when [`RunConfig::run_dir`] is set — a
    /// checkpoint/resume journal. Completed points found in the journal are
    /// loaded instead of recomputed (bit-exactly, see [`crate::journal`]);
    /// points that exhaust their retry budget are recorded in
    /// [`MatrixRun::failed`] and omitted from the curves instead of sinking
    /// the whole run.
    ///
    /// # Errors
    ///
    /// Rejects empty attack/recipe lists, propagates baseline-training and
    /// journal-corruption errors. Per-point compute failures do *not* error
    /// here — they land in [`MatrixRun::failed`].
    pub fn run_resilient(&self, scale: &ExperimentScale, cfg: &RunConfig) -> Result<MatrixRun> {
        if self.recipes.is_empty() {
            return Err(CoreError::InvalidConfig("sweep has no recipes".into()));
        }
        if self.attacks.is_empty() {
            return Err(CoreError::InvalidConfig("sweep has no attacks".into()));
        }
        // Open the journal before training: a bad run_dir should surface
        // before the expensive part, not after.
        let journal = match &cfg.run_dir {
            Some(dir) => Some(Journal::open(dir)?),
            None => None,
        };
        let prepared = self.prepare(scale, cfg.seed)?;
        let mut health_log = prepared.baseline_health();

        // One slot per recipe, filled either from the journal or by compute.
        let mut slots: Vec<Option<PointRecord>> = (0..self.recipes.len()).map(|_| None).collect();
        let mut resumed = 0usize;
        if let Some(j) = &journal {
            for (i, key) in prepared.keys().iter().enumerate() {
                if let Some(rec) = j.load(key)? {
                    if prepared.resumable(&rec) {
                        slots[i] = Some(rec);
                        resumed += 1;
                    }
                }
            }
        }

        let pending: Vec<usize> = (0..self.recipes.len())
            .filter(|&i| slots[i].is_none())
            .collect();
        let jobs: Vec<_> = pending
            .iter()
            .map(|&i| {
                let prepared = &prepared;
                move || prepared.run_point(i)
            })
            .collect();

        let outcomes = run_supervised(jobs, scale.workers(), &cfg.retry);

        let mut failed = Vec::new();
        let computed = pending.len();
        for (&i, outcome) in pending.iter().zip(outcomes) {
            let record = match outcome {
                Ok((out, attempts)) => prepared.record_ok(i, out, attempts),
                Err(f) => {
                    let (x, compression) = prepared.coordinate(i);
                    failed.push(PointFailure {
                        x,
                        compression,
                        error: f.error.clone(),
                        attempts: f.attempts,
                    });
                    prepared.record_failed(i, f.error, f.attempts)
                }
            };
            if let Some(j) = &journal {
                // A journal-write failure must not discard a computed point:
                // degrade to "won't resume next time" and note it.
                if let Err(e) = j.store(&record) {
                    health_log.push(format!(
                        "journal: failed to persist point x={} ({}): {e}",
                        record.x, record.compression
                    ));
                }
            }
            slots[i] = Some(record);
        }

        Ok(prepared.assemble(slots, resumed, computed, failed, health_log))
    }
}

/// A [`TransferMatrix`] with its baseline trained and all per-point inputs
/// precomputed — the shared, immutable substrate every execution mode
/// (in-process supervised workers, the distributed coordinator, remote
/// workers) runs points against. Self-contained and `Sync`; clone-free
/// sharing via `Arc`.
///
/// Determinism contract: two `PreparedMatrix` values built from the same
/// matrix, scale and seed produce bit-identical [`PointRecord`]s for the
/// same point index — this is what lets a re-dispatched or remotely
/// computed point splice into the journal exactly as if it had been
/// computed locally.
#[derive(Debug)]
pub struct PreparedMatrix {
    net: NetKind,
    attacks: Vec<AttackKind>,
    recipes: Vec<(f64, Compression)>,
    scale: ExperimentScale,
    seed: u64,
    setup: TaskSetup,
    baseline: TrainedModel,
    finetune_cfg: TrainConfig,
    eval_sets: Vec<(Tensor, Vec<usize>)>,
    adv_from_full: Vec<Tensor>,
    keys: Vec<String>,
}

/// The computed numbers (plus health events) of one sweep point, before
/// they are folded into a [`PointRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// Clean test accuracy of the compressed model.
    pub base_accuracy: f64,
    /// One `(comp→comp, full→comp, comp→full)` triple per attack.
    pub scenarios: Vec<(f64, f64, f64)>,
    /// Numerical-health incidents captured while computing the point.
    pub health: Vec<String>,
}

impl PreparedMatrix {
    /// Number of sweep points (recipes).
    pub fn num_points(&self) -> usize {
        self.recipes.len()
    }

    /// Per-point journal keys, in recipe order.
    pub fn keys(&self) -> &[String] {
        &self.keys
    }

    /// `(x coordinate, recipe id)` of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn coordinate(&self, i: usize) -> (f64, String) {
        let (x, recipe) = &self.recipes[i];
        (*x, recipe.id())
    }

    /// 16-hex-digit hash over the full point-key list — a cheap handshake
    /// token two processes can compare to prove they were built from the
    /// same matrix, scale and seed before exchanging results.
    pub fn config_hash(&self) -> String {
        format!("{:016x}", crate::journal::fnv1a64(&self.keys.join("|")))
    }

    /// Whether `rec` is a completed point this matrix can resume from.
    /// Only `Ok` records resume; recorded failures are retried (a re-run is
    /// usually an attempt to get past a transient cause). The
    /// scenario-arity check guards against hand-edited entries.
    pub fn resumable(&self, rec: &PointRecord) -> bool {
        rec.status == PointStatus::Ok && rec.scenarios.len() == self.attacks.len()
    }

    /// Baseline-training health events, formatted for [`MatrixRun::health`].
    pub fn baseline_health(&self) -> Vec<String> {
        self.baseline
            .health
            .events
            .iter()
            .map(|e| format!("baseline: {e}"))
            .collect()
    }

    /// Executes point `i`: the train→compress→attack pipeline under a
    /// numerical-health scope, with the `sweep_point` fault site fired
    /// first. The fault site counts *invocations*, so a retried point
    /// advances the hit counter on each attempt.
    ///
    /// # Errors
    ///
    /// Propagates compression/attack/eval errors (and injected `error`
    /// faults); injected `panic` faults panic, which supervised execution
    /// ([`run_supervised`]) converts into a retryable failure.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn run_point(&self, i: usize) -> Result<PointOutcome> {
        match faults::fire("sweep_point") {
            Some(faults::FaultKind::Panic) => {
                panic!("injected fault: panic at site 'sweep_point'")
            }
            Some(faults::FaultKind::Error) => {
                return Err(CoreError::Job(
                    "injected fault: error at site 'sweep_point'".into(),
                ))
            }
            _ => {}
        }
        let (result, events) = health::scope(|| {
            compute_point(
                self.recipes[i].1,
                self.net,
                &self.setup,
                &self.baseline,
                &self.finetune_cfg,
                &self.attacks,
                &self.eval_sets,
                &self.adv_from_full,
            )
        });
        let outcome = result?;
        Ok(PointOutcome {
            base_accuracy: outcome.base_accuracy,
            scenarios: outcome.scenarios,
            health: events.iter().map(health::HealthEvent::describe).collect(),
        })
    }

    /// Folds a successful [`PointOutcome`] for point `i` into its
    /// journal-ready [`PointRecord`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn record_ok(&self, i: usize, outcome: PointOutcome, attempts: u32) -> PointRecord {
        let (x, compression) = self.coordinate(i);
        PointRecord {
            key: self.keys[i].clone(),
            x,
            compression,
            status: PointStatus::Ok,
            attempts,
            base_accuracy: outcome.base_accuracy,
            scenarios: outcome.scenarios,
            health: outcome.health,
            error: None,
        }
    }

    /// Builds the permanent-failure [`PointRecord`] for point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn record_failed(&self, i: usize, error: String, attempts: u32) -> PointRecord {
        let (x, compression) = self.coordinate(i);
        PointRecord {
            key: self.keys[i].clone(),
            x,
            compression,
            status: PointStatus::Failed,
            attempts,
            base_accuracy: 0.0,
            scenarios: Vec::new(),
            health: Vec::new(),
            error: Some(error),
        }
    }

    /// Assembles the final [`MatrixRun`] from filled point slots: appends
    /// each record's health incidents to `health_log` and projects the `Ok`
    /// records (in recipe order) onto one [`SweepResult`] per attack.
    pub fn assemble(
        &self,
        slots: Vec<Option<PointRecord>>,
        resumed: usize,
        computed: usize,
        failed: Vec<PointFailure>,
        mut health_log: Vec<String>,
    ) -> MatrixRun {
        for rec in slots.iter().flatten() {
            for h in &rec.health {
                health_log.push(format!("point x={} ({}): {h}", rec.x, rec.compression));
            }
        }

        let completed: Vec<&PointRecord> = slots
            .iter()
            .flatten()
            .filter(|r| r.status == PointStatus::Ok)
            .collect();
        let results = self
            .attacks
            .iter()
            .enumerate()
            .map(|(ai, &kind)| SweepResult {
                net: self.net.id().into(),
                attack: kind.id().into(),
                baseline_accuracy: self.baseline.test_accuracy,
                baseline_loss: self.baseline.final_loss,
                points: completed
                    .iter()
                    .map(|r| {
                        let (s1, s2, s3) = r.scenarios[ai];
                        SweepPoint {
                            x: r.x,
                            compression: r.compression.clone(),
                            base_accuracy: r.base_accuracy,
                            comp_to_comp: s1,
                            full_to_comp: s2,
                            comp_to_full: s3,
                        }
                    })
                    .collect(),
            })
            .collect();
        MatrixRun {
            results,
            resumed,
            computed,
            failed,
            health: health_log,
        }
    }

    /// The experiment scale this matrix was prepared at.
    pub fn scale(&self) -> &ExperimentScale {
        &self.scale
    }

    /// The baseline-training seed this matrix was prepared with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Options for [`TransferMatrix::run_resilient`].
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Baseline-training seed (part of every point's journal key).
    pub seed: u64,
    /// Journal directory for checkpoint/resume; `None` disables journaling.
    pub run_dir: Option<PathBuf>,
    /// Retry budget for failed/panicked points.
    pub retry: RetryPolicy,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 7,
            run_dir: None,
            retry: RetryPolicy::sweep_default(),
        }
    }
}

/// A sweep point that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PointFailure {
    /// Sweep coordinate of the failed point.
    pub x: f64,
    /// Compression recipe identifier.
    pub compression: String,
    /// Error (or panic) message from the final attempt.
    pub error: String,
    /// Attempts consumed.
    pub attempts: u32,
}

/// Outcome of a resilient matrix run: the curves plus the run's
/// resilience bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MatrixRun {
    /// One [`SweepResult`] per attack; failed points are omitted from the
    /// curves (see [`MatrixRun::failed`]).
    pub results: Vec<SweepResult>,
    /// Points loaded from the journal instead of recomputed.
    pub resumed: usize,
    /// Points actually executed this run (successes and failures).
    pub computed: usize,
    /// Points that failed permanently, with their final error and attempt
    /// count — recorded, not dropped.
    pub failed: Vec<PointFailure>,
    /// Resilience incidents: baseline-training rollbacks, per-point
    /// numerical-health events, journal-write degradations.
    pub health: Vec<String>,
}

struct RecipeOutcome {
    base_accuracy: f64,
    // One (s1, s2, s3) triple per attack.
    scenarios: Vec<(f64, f64, f64)>,
}

/// The train→compress→attack pipeline for one sweep point (shared by every
/// execution mode; must stay deterministic in its inputs so journal resume
/// is honest).
#[allow(clippy::too_many_arguments)]
fn compute_point(
    recipe: Compression,
    net: NetKind,
    setup: &TaskSetup,
    baseline: &TrainedModel,
    finetune_cfg: &TrainConfig,
    attacks: &[AttackKind],
    eval_sets: &[(Tensor, Vec<usize>)],
    adv_from_full: &[Tensor],
) -> Result<RecipeOutcome> {
    let mut comp = baseline.instantiate()?;
    recipe.apply(&mut comp, &setup.train, finetune_cfg)?;
    let mut full = baseline.instantiate()?;
    let base_accuracy = evaluate_model(&mut comp, &setup.test, 64)?;
    let mut scenarios = Vec::with_capacity(attacks.len());
    for (i, &kind) in attacks.iter().enumerate() {
        let (x, y) = &eval_sets[i];
        let attack = PaperParams::build_adapted(net, kind);
        // One generation on the compressed model serves both Scenario 1
        // (evaluate on itself) and Scenario 3 (evaluate on the hidden
        // baseline).
        let adv_comp = attack.generate(&mut comp, x, y)?;
        let s1 = accuracy_on(&mut comp, &adv_comp, y)?;
        let s3 = accuracy_on(&mut full, &adv_comp, y)?;
        let s2 = accuracy_on(&mut comp, &adv_from_full[i], y)?;
        scenarios.push((s1, s2, s3));
    }
    Ok(RecipeOutcome {
        base_accuracy,
        scenarios,
    })
}

/// A single-attack sweep — the one-curve convenience wrapper over
/// [`TransferMatrix`].
#[derive(Debug, Clone)]
pub struct TransferSweep {
    /// Which network to train and compress.
    pub net: NetKind,
    /// Which attack (at its Table 1 parameters) to evaluate.
    pub attack: AttackKind,
    /// `(x coordinate, recipe)` pairs.
    pub recipes: Vec<(f64, Compression)>,
}

impl TransferSweep {
    /// The Figure 2 pruning sweep (DNS, as in the paper).
    pub fn pruning(net: NetKind, attack: AttackKind, densities: &[f64]) -> Self {
        TransferSweep {
            net,
            attack,
            recipes: pruning_recipes(densities, false),
        }
    }

    /// One-shot pruning ablation.
    pub fn pruning_one_shot(net: NetKind, attack: AttackKind, densities: &[f64]) -> Self {
        TransferSweep {
            net,
            attack,
            recipes: pruning_recipes(densities, true),
        }
    }

    /// The Figure 5 quantisation sweep (32 = float32 baseline).
    pub fn quantisation(net: NetKind, attack: AttackKind, bitwidths: &[u32]) -> Self {
        TransferSweep {
            net,
            attack,
            recipes: quant_recipes(bitwidths, false),
        }
    }

    /// Weights-only quantisation ablation.
    pub fn quantisation_weights_only(net: NetKind, attack: AttackKind, bitwidths: &[u32]) -> Self {
        TransferSweep {
            net,
            attack,
            recipes: quant_recipes(bitwidths, true),
        }
    }

    /// Runs the sweep (see [`TransferMatrix::run`]).
    ///
    /// # Errors
    ///
    /// Propagates training, compression and attack errors.
    pub fn run(&self, scale: &ExperimentScale) -> Result<SweepResult> {
        let matrix = TransferMatrix {
            net: self.net,
            attacks: vec![self.attack],
            recipes: self.recipes.clone(),
        };
        let mut results = matrix.run(scale)?;
        Ok(results.remove(0))
    }
}

fn eval_count(attack: AttackKind, scale: &ExperimentScale, test_len: usize) -> usize {
    let want = match attack {
        AttackKind::DeepFool => scale.deepfool_eval,
        _ => scale.attack_eval,
    };
    want.min(test_len).max(1)
}

fn accuracy_on(model: &mut advcomp_nn::Sequential, x: &Tensor, labels: &[usize]) -> Result<f64> {
    let logits = model.forward(x, Mode::Eval)?;
    Ok(advcomp_nn::accuracy(&logits, labels)?)
}

/// One point of the Figure 3 grid: white-box attack strength versus (ε,
/// iterations) on the uncompressed model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonPoint {
    /// Attack step size.
    pub epsilon: f32,
    /// Attack iteration count.
    pub iterations: usize,
    /// Accuracy of the attacked model on the adversarial samples.
    pub adversarial_accuracy: f64,
}

/// Runs the Figure 3 grid: the white-box attack on `trained` for every
/// (ε, iterations) combination.
///
/// # Errors
///
/// Propagates attack errors; rejects empty grids and non-FGM attacks.
pub fn epsilon_grid(
    trained: &TrainedModel,
    setup: &TaskSetup,
    attack: AttackKind,
    epsilons: &[f32],
    iterations: &[usize],
    scale: &ExperimentScale,
) -> Result<Vec<EpsilonPoint>> {
    if epsilons.is_empty() || iterations.is_empty() {
        return Err(CoreError::InvalidConfig(
            "empty epsilon/iteration grid".into(),
        ));
    }
    if attack == AttackKind::DeepFool {
        return Err(CoreError::InvalidConfig(
            "Figure 3 sweeps IFGSM/IFGM, not DeepFool".into(),
        ));
    }
    let eval_n = scale.attack_eval.min(setup.test.len()).max(1);
    let (x, y) = setup.test.slice(0, eval_n)?;
    let jobs: Vec<_> = epsilons
        .iter()
        .flat_map(|&eps| iterations.iter().map(move |&it| (eps, it)))
        .map(|(eps, it)| {
            let x = x.clone();
            let y = y.clone();
            move || -> Result<EpsilonPoint> {
                let attack_obj: Box<dyn advcomp_attacks::Attack> = match attack {
                    AttackKind::Ifgsm => {
                        Box::new(advcomp_attacks::Ifgsm::new(eps, it).map_err(CoreError::Attack)?)
                    }
                    AttackKind::Ifgm => {
                        Box::new(advcomp_attacks::Ifgm::new(eps, it).map_err(CoreError::Attack)?)
                    }
                    AttackKind::DeepFool => unreachable!("rejected above"),
                };
                let mut model = trained.instantiate()?;
                let adv = attack_obj.generate(&mut model, &x, &y)?;
                let acc = accuracy_on(&mut model, &adv, &y)?;
                Ok(EpsilonPoint {
                    epsilon: eps,
                    iterations: it,
                    adversarial_accuracy: acc,
                })
            }
        })
        .collect();
    let outcomes = run_parallel(jobs, scale.workers());
    let mut points = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        points.push(o?);
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn densities() -> Vec<f64> {
        vec![1.0, 0.5, 0.1]
    }

    #[test]
    fn pruning_sweep_shapes() {
        let sweep = TransferSweep::pruning(NetKind::LeNet5, AttackKind::Ifgsm, &densities());
        assert_eq!(sweep.recipes.len(), 3);
        assert_eq!(sweep.recipes[0].1, Compression::None);
        assert!(matches!(sweep.recipes[1].1, Compression::DnsPrune { .. }));
        let os = TransferSweep::pruning_one_shot(NetKind::LeNet5, AttackKind::Ifgsm, &[0.5]);
        assert!(matches!(os.recipes[0].1, Compression::OneShotPrune { .. }));
    }

    #[test]
    fn quant_sweep_baseline_at_32() {
        let sweep = TransferSweep::quantisation(NetKind::CifarNet, AttackKind::Ifgm, &[4, 8, 32]);
        assert_eq!(sweep.recipes[2].1, Compression::None);
        assert!(matches!(
            sweep.recipes[0].1,
            Compression::Quant {
                bitwidth: 4,
                weights_only: false
            }
        ));
        let wo =
            TransferSweep::quantisation_weights_only(NetKind::CifarNet, AttackKind::Ifgm, &[8]);
        assert!(matches!(
            wo.recipes[0].1,
            Compression::Quant {
                bitwidth: 8,
                weights_only: true
            }
        ));
    }

    #[test]
    fn empty_sweep_rejected() {
        let sweep = TransferSweep {
            net: NetKind::LeNet5,
            attack: AttackKind::Ifgsm,
            recipes: vec![],
        };
        assert!(sweep.run(&ExperimentScale::tiny()).is_err());
        let matrix = TransferMatrix {
            net: NetKind::LeNet5,
            attacks: vec![],
            recipes: pruning_recipes(&[1.0], false),
        };
        assert!(matrix.run(&ExperimentScale::tiny()).is_err());
    }

    #[test]
    fn tiny_pruning_sweep_end_to_end() {
        let scale = ExperimentScale::tiny();
        let sweep = TransferSweep::pruning(NetKind::LeNet5, AttackKind::Ifgsm, &[1.0, 0.3]);
        let result = sweep.run(&scale).unwrap();
        assert_eq!(result.points.len(), 2);
        assert!(result.baseline_accuracy > 0.8);
        let p0 = &result.points[0]; // density 1.0 = identity compression
                                    // At identity compression, Scenario 1 (generate on comp, apply to
                                    // comp) and Scenario 3 (apply to baseline) see identical weights so
                                    // must agree exactly; Scenario 2's samples come from the same model.
        assert!((p0.comp_to_comp - p0.comp_to_full).abs() < 1e-9);
        assert!((p0.comp_to_comp - p0.full_to_comp).abs() < 1e-9);
        assert!((p0.base_accuracy - result.baseline_accuracy).abs() < 1e-9);
        // White-box attack hurts.
        assert!(p0.comp_to_comp < p0.base_accuracy - 0.15);
        for p in &result.points {
            for v in [
                p.base_accuracy,
                p.comp_to_comp,
                p.full_to_comp,
                p.comp_to_full,
            ] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn matrix_shares_baseline_across_attacks() {
        let scale = ExperimentScale::tiny();
        let matrix = TransferMatrix::pruning(
            NetKind::LeNet5,
            vec![AttackKind::Ifgsm, AttackKind::Ifgm],
            &[1.0, 0.3],
        );
        let results = matrix.run(&scale).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].attack, "ifgsm");
        assert_eq!(results[1].attack, "ifgm");
        // Same baseline, same compressed models → identical base accuracy
        // columns.
        assert_eq!(results[0].baseline_accuracy, results[1].baseline_accuracy);
        for (a, b) in results[0].points.iter().zip(&results[1].points) {
            assert_eq!(a.base_accuracy, b.base_accuracy);
            assert_eq!(a.compression, b.compression);
        }
    }

    #[test]
    fn resilient_run_records_failures_without_dropping_the_sweep() {
        use advcomp_nn::faults::{install, FaultKind, FaultSpec};
        let mut scale = ExperimentScale::tiny();
        scale.max_workers = 1; // deterministic fault-site hit order
                               // Point 0 computes (hit 0); point 1 fails on its first attempt
                               // (hit 1) and on its retry (sticky).
        let _g = install(vec![FaultSpec::sticky(FaultKind::Error, "sweep_point", 1)]);
        let matrix = TransferMatrix::pruning(NetKind::LeNet5, vec![AttackKind::Ifgsm], &[1.0, 0.3]);
        let cfg = RunConfig {
            seed: 7,
            run_dir: None,
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_ms: 0,
            },
        };
        let run = matrix.run_resilient(&scale, &cfg).unwrap();
        assert_eq!(run.computed, 2);
        assert_eq!(run.resumed, 0);
        assert_eq!(run.failed.len(), 1);
        assert_eq!(run.failed[0].x, 0.3);
        assert_eq!(run.failed[0].attempts, 2);
        assert!(run.failed[0].error.contains("sweep_point"));
        // The surviving point still made it onto the curve.
        assert_eq!(run.results[0].points.len(), 1);
        assert_eq!(run.results[0].points[0].x, 1.0);
    }

    #[test]
    fn fail_fast_run_surfaces_injected_panic_as_error() {
        use advcomp_nn::faults::{install, FaultKind, FaultSpec};
        let mut scale = ExperimentScale::tiny();
        scale.max_workers = 1;
        let _g = install(vec![FaultSpec::once(FaultKind::Panic, "sweep_point", 0)]);
        let sweep = TransferSweep::pruning(NetKind::LeNet5, AttackKind::Ifgsm, &[1.0]);
        let err = sweep.run(&scale).unwrap_err();
        match err {
            CoreError::Job(msg) => assert!(msg.contains("panic"), "{msg}"),
            other => panic!("expected Job error, got {other:?}"),
        }
    }

    #[test]
    fn journalled_rerun_resumes_every_point_bit_identically() {
        let run_dir = std::env::temp_dir().join(format!(
            "advcomp-sweep-resume-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&run_dir);
        let scale = ExperimentScale::tiny();
        let matrix = TransferMatrix::pruning(NetKind::LeNet5, vec![AttackKind::Ifgsm], &[1.0, 0.3]);
        let cfg = RunConfig {
            seed: 7,
            run_dir: Some(run_dir.clone()),
            retry: RetryPolicy::none(),
        };
        let first = matrix.run_resilient(&scale, &cfg).unwrap();
        assert_eq!((first.resumed, first.computed), (0, 2));
        let second = matrix.run_resilient(&scale, &cfg).unwrap();
        assert_eq!((second.resumed, second.computed), (2, 0));
        // Journal reload must be bit-exact: SweepResult's f64 equality.
        assert_eq!(first.results, second.results);
        let _ = std::fs::remove_dir_all(&run_dir);
    }

    #[test]
    fn epsilon_grid_monotone_in_epsilon() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let trained = TrainedModel::train(&setup, &scale, 3).unwrap();
        let pts = epsilon_grid(
            &trained,
            &setup,
            AttackKind::Ifgsm,
            &[0.005, 0.1],
            &[4],
            &scale,
        )
        .unwrap();
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].adversarial_accuracy <= pts[0].adversarial_accuracy + 0.05,
            "bigger epsilon should hurt at least as much: {pts:?}"
        );
    }

    #[test]
    fn epsilon_grid_validation() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let trained = TrainedModel::train(&setup, &scale, 3).unwrap();
        assert!(epsilon_grid(&trained, &setup, AttackKind::Ifgsm, &[], &[1], &scale).is_err());
        assert!(
            epsilon_grid(&trained, &setup, AttackKind::DeepFool, &[0.1], &[1], &scale).is_err()
        );
    }
}
