//! Terminal line charts for sweep results.
//!
//! The paper's exhibits are line plots; these helpers render the same
//! series as Unicode charts so `fig2`/`fig5` output is readable as a
//! *figure*, not just a table. Pure string manipulation — no terminal
//! control codes — so output is pipe- and log-safe.

/// A named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Renders series into a fixed-size character grid with axes and a legend.
///
/// `y` is assumed to be an accuracy-like quantity; the axis is fixed to
/// `[0, 1]` when all values fit, otherwise it expands to the data range.
/// Each series is drawn with its own glyph; later series overwrite earlier
/// ones on collisions.
pub fn ascii_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];
    let width = width.max(16);
    let height = height.max(4);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (0.0f64, 1.0f64);
    for &(x, y) in &all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let y_here = ymax - (ymax - ymin) * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_here:6.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>7}{}\n", "+", "-".repeat(width)));
    out.push_str(&format!(
        "{:>8.2}{:>width$.2}\n",
        xmin,
        xmax,
        width = width - 1
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("   {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<Series> {
        vec![
            Series::new("base", vec![(0.0, 1.0), (0.5, 0.9), (1.0, 0.2)]),
            Series::new("attack", vec![(0.0, 0.1), (0.5, 0.2), (1.0, 0.15)]),
        ]
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let chart = ascii_chart("Demo", &series(), 40, 10);
        assert!(chart.starts_with("Demo\n"));
        assert!(chart.contains("o base"));
        assert!(chart.contains("x attack"));
        assert!(chart.contains('|'));
        assert!(chart.contains('+'));
        // 10 grid rows plus title, axis and legend lines.
        assert!(chart.lines().count() >= 13);
    }

    #[test]
    fn points_land_in_grid() {
        let chart = ascii_chart("t", &series(), 40, 10);
        assert!(chart.contains('o'));
        assert!(chart.contains('x'));
    }

    #[test]
    fn empty_series_handled() {
        let chart = ascii_chart("empty", &[], 30, 8);
        assert!(chart.contains("(no data)"));
        let chart = ascii_chart("empty", &[Series::new("s", vec![])], 30, 8);
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let s = vec![Series::new("flat", vec![(2.0, 0.5), (2.0, 0.5)])];
        let chart = ascii_chart("flat", &s, 20, 6);
        assert!(chart.contains("flat"));
    }

    #[test]
    fn high_values_at_top() {
        // A single series with y rising in x: the glyph for the max-y point
        // must appear on an earlier (higher) line than the min-y point.
        let s = vec![Series::new("rise", vec![(0.0, 0.0), (1.0, 1.0)])];
        let chart = ascii_chart("t", &s, 21, 7);
        let lines: Vec<&str> = chart.lines().collect();
        let top_line = lines
            .iter()
            .position(|l| l.ends_with('o') || l.contains("o"))
            .unwrap();
        let bottom_line = lines
            .iter()
            .rposition(|l| l.contains('o') && !l.contains("rise"))
            .unwrap();
        assert!(top_line < bottom_line);
    }
}
