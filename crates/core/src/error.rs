use advcomp_attacks::AttackError;
use advcomp_compress::CompressError;
use advcomp_data::DatasetError;
use advcomp_nn::NnError;
use advcomp_tensor::TensorError;
use std::fmt;

/// Errors from experiment setup and execution.
#[derive(Debug)]
pub enum CoreError {
    /// A network operation failed.
    Nn(NnError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A compression pass failed.
    Compress(CompressError),
    /// An attack failed.
    Attack(AttackError),
    /// A dataset failed to build or load.
    Data(DatasetError),
    /// Checkpoint (de)serialisation failed.
    Checkpoint(String),
    /// Invalid experiment configuration.
    InvalidConfig(String),
    /// Writing results to disk failed.
    Io(std::io::Error),
    /// The numerical-health supervisor exhausted its recovery budget.
    Health(String),
    /// A supervised experiment job failed after exhausting its retries.
    Job(String),
    /// A journal entry could not be read or parsed.
    Journal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Compress(e) => write!(f, "compression error: {e}"),
            CoreError::Attack(e) => write!(f, "attack error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Io(e) => write!(f, "io error: {e}"),
            CoreError::Health(msg) => write!(f, "numerical-health guard: {msg}"),
            CoreError::Job(msg) => write!(f, "job failed: {msg}"),
            CoreError::Journal(msg) => write!(f, "journal error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            CoreError::Compress(e) => Some(e),
            CoreError::Attack(e) => Some(e),
            CoreError::Data(e) => Some(e),
            CoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}
impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}
impl From<CompressError> for CoreError {
    fn from(e: CompressError) -> Self {
        CoreError::Compress(e)
    }
}
impl From<AttackError> for CoreError {
    fn from(e: AttackError) -> Self {
        CoreError::Attack(e)
    }
}
impl From<DatasetError> for CoreError {
    fn from(e: DatasetError) -> Self {
        CoreError::Data(e)
    }
}
impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}
impl From<advcomp_models::CheckpointError> for CoreError {
    fn from(e: advcomp_models::CheckpointError) -> Self {
        CoreError::Checkpoint(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_display() {
        let e: CoreError = NnError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("network"));
        let e: CoreError = TensorError::Empty("max").into();
        assert!(e.to_string().contains("tensor"));
        let e = CoreError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
