//! Trimmed hand-rolled JSON reader/writer helpers shared by the journal and
//! the distributed-sweep wire messages.
//!
//! The workspace's `serde` is stubbed in offline containers (serialize
//! only), so readers are hand-rolled. Two properties matter here:
//!
//! * numbers are kept as **raw tokens** so `f64` decoding re-parses the
//!   exact text the writer produced (bit-exact resume and bit-exact result
//!   transport both depend on this);
//! * [`quote`] is the one string escaper every core writer uses, so the
//!   parser and all writers agree on the escape set.

/// A parsed JSON value; numbers stay raw tokens.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal (including the surrounding quotes).
pub(crate) fn quote(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    token
        .parse::<f64>()
        .map_err(|_| format!("malformed number at byte {start}"))?;
    Ok(Value::Num(token.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf8".to_string())?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_round_trips_through_parse() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnl\nret\r",
            "ctl\u{1}",
            "π",
        ] {
            let parsed = parse(&quote(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn numbers_keep_raw_tokens() {
        let v = parse("[0.30000000000000004, -1e-3, 42]").unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr[0], Value::Num("0.30000000000000004".into()));
        assert_eq!(arr[0].as_f64().unwrap().to_bits(), 0.3f64.to_bits() + 1);
        assert_eq!(arr[2].as_u64(), Some(42));
    }
}
