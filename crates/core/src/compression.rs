//! Uniform handle over the compression methods a sweep can apply.

use crate::Result;
use advcomp_compress::{DnsPruner, OneShotPruner, Quantizer, TrainConfig};
use advcomp_data::Dataset;
use advcomp_nn::Sequential;

/// A compression recipe applied to a trained model (with fine-tuning),
/// producing the "compressed model" of the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Compression {
    /// No compression: the identity recipe. Sweeps use this for the
    /// density-1.0 / float32 end of the axis, where every scenario must
    /// degenerate to the plain white-box attack.
    None,
    /// Dynamic Network Surgery pruning to the given density (the paper's
    /// pruning method).
    DnsPrune {
        /// Target weight density in `[0, 1]`.
        density: f64,
    },
    /// One-shot magnitude pruning to the given density (Han et al.;
    /// ablation baseline).
    OneShotPrune {
        /// Target weight density in `[0, 1]`.
        density: f64,
    },
    /// Fixed-point quantisation of weights and activations at a bitwidth
    /// (paper §3.2 integer-bit schedule).
    Quant {
        /// Total bitwidth.
        bitwidth: u32,
        /// `true` to quantise weights only (the activation-clipping
        /// ablation).
        weights_only: bool,
    },
}

impl Compression {
    /// Stable identifier for file names and CSV cells.
    pub fn id(&self) -> String {
        match self {
            Compression::None => "none".into(),
            Compression::DnsPrune { density } => format!("dns-d{density:.3}"),
            Compression::OneShotPrune { density } => format!("oneshot-d{density:.3}"),
            Compression::Quant {
                bitwidth,
                weights_only,
            } => {
                if *weights_only {
                    format!("quant-w{bitwidth}")
                } else {
                    format!("quant-wa{bitwidth}")
                }
            }
        }
    }

    /// Applies the recipe to `model`, fine-tuning on `train` with `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates compression and training errors.
    pub fn apply(&self, model: &mut Sequential, train: &Dataset, cfg: &TrainConfig) -> Result<()> {
        match *self {
            Compression::None => Ok(()),
            Compression::DnsPrune { density } => {
                DnsPruner::new(density).prune_and_finetune(model, train, cfg)?;
                Ok(())
            }
            Compression::OneShotPrune { density } => {
                OneShotPruner::new(density).prune_and_finetune(model, train, cfg)?;
                Ok(())
            }
            Compression::Quant {
                bitwidth,
                weights_only,
            } => {
                let quantizer = if weights_only {
                    Quantizer::new(advcomp_compress::QuantConfig::weights_only(bitwidth)?)
                } else {
                    Quantizer::for_bitwidth(bitwidth)?
                };
                quantizer.quantize_and_finetune(model, train, cfg)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentScale, TaskSetup, TrainedModel};
    use advcomp_attacks::NetKind;

    #[test]
    fn ids_stable() {
        assert_eq!(Compression::None.id(), "none");
        assert_eq!(Compression::DnsPrune { density: 0.5 }.id(), "dns-d0.500");
        assert_eq!(
            Compression::Quant {
                bitwidth: 8,
                weights_only: false
            }
            .id(),
            "quant-wa8"
        );
        assert_eq!(
            Compression::Quant {
                bitwidth: 4,
                weights_only: true
            }
            .id(),
            "quant-w4"
        );
    }

    #[test]
    fn apply_each_recipe_preserves_usability() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let trained = TrainedModel::train(&setup, &scale, 3).unwrap();
        let cfg = setup.finetune_config(&scale);
        for recipe in [
            Compression::None,
            Compression::DnsPrune { density: 0.5 },
            Compression::OneShotPrune { density: 0.5 },
            Compression::Quant {
                bitwidth: 8,
                weights_only: false,
            },
            Compression::Quant {
                bitwidth: 8,
                weights_only: true,
            },
        ] {
            let mut model = trained.instantiate().unwrap();
            recipe.apply(&mut model, &setup.train, &cfg).unwrap();
            let acc = crate::trainer::evaluate_model(&mut model, &setup.test, 64).unwrap();
            assert!(
                acc > trained.test_accuracy - 0.25,
                "{} collapsed accuracy {} -> {acc}",
                recipe.id(),
                trained.test_accuracy
            );
        }
    }

    #[test]
    fn invalid_recipes_error() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let mut model = setup.fresh_model(0);
        let cfg = setup.finetune_config(&scale);
        assert!(Compression::DnsPrune { density: 2.0 }
            .apply(&mut model, &setup.train, &cfg)
            .is_err());
        assert!(Compression::Quant {
            bitwidth: 1,
            weights_only: false
        }
        .apply(&mut model, &setup.train, &cfg)
        .is_err());
    }
}
