//! Black-box surrogate attacks (extension).
//!
//! §2.3 of the paper cites Papernot et al. 2017: "an adversary can
//! sometimes perform attacks without any knowledge of a model's internal
//! parameters — it can be enough to approximate a model with another known
//! model and build adversarial samples against that instead." This module
//! implements that loop as a fourth, stricter scenario beyond the paper's
//! taxonomy: the attacker cannot read *any* deployed weights and can only
//! query the target for labels.

use crate::{CoreError, Result};
use advcomp_attacks::PlannedEval;
use advcomp_data::Batches;
use advcomp_nn::{softmax_cross_entropy, LrSchedule, Mode, Sequential, Sgd, StepDecay};
use advcomp_tensor::Tensor;

/// Configuration for surrogate distillation.
#[derive(Debug, Clone)]
pub struct SurrogateConfig {
    /// Training epochs over the probe set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: StepDecay,
    /// SGD momentum.
    pub momentum: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            epochs: 8,
            batch_size: 32,
            schedule: StepDecay::new(0.05, 0.1, vec![6]),
            momentum: 0.9,
            seed: 0,
        }
    }
}

/// Labels `images` with the target model's own predictions — the only
/// oracle access a black-box adversary has.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn query_labels(target: &mut Sequential, images: &Tensor, batch: usize) -> Result<Vec<usize>> {
    let n = *images.shape().first().unwrap_or(&0);
    // One compiled plan answers every oracle query; its activation arena
    // is reused across chunks.
    let mut oracle = PlannedEval::compile(target, images.shape().get(1..).unwrap_or(&[]));
    let mut labels = Vec::with_capacity(n);
    let mut start = 0usize;
    while start < n {
        let len = batch.max(1).min(n - start);
        let chunk = images.narrow(start, len)?;
        labels.extend(oracle.predictions(target, &chunk)?);
        start += len;
    }
    Ok(labels)
}

/// Outcome of surrogate distillation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateReport {
    /// Fraction of probe samples where surrogate and target agree after
    /// training.
    pub agreement: f64,
    /// Number of oracle queries spent (one per probe image).
    pub queries: usize,
}

/// Distils a surrogate of `target` by training `surrogate` on the target's
/// predicted labels over `probe` images (Papernot et al.'s substitute
/// training, without the Jacobian augmentation).
///
/// The trained surrogate can then be attacked with any white-box method and
/// the samples transferred to the target.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an empty probe set and
/// propagates network errors.
pub fn distill_surrogate(
    surrogate: &mut Sequential,
    target: &mut Sequential,
    probe: &Tensor,
    cfg: &SurrogateConfig,
) -> Result<SurrogateReport> {
    let n = *probe.shape().first().unwrap_or(&0);
    if n == 0 {
        return Err(CoreError::InvalidConfig("empty probe set".into()));
    }
    let oracle = query_labels(target, probe, cfg.batch_size)?;
    let mut opt = Sgd::new(cfg.schedule.lr_at(0), cfg.momentum, 1e-4)?;
    for epoch in 0..cfg.epochs {
        opt.set_lr(cfg.schedule.lr_at(epoch));
        let plan = Batches::shuffled(n, cfg.batch_size, cfg.seed.wrapping_add(epoch as u64));
        // The probe is a raw tensor (not a Dataset), so expand the plan's
        // index batches by hand.
        for (x, y) in plan_iter(&plan, probe, &oracle)? {
            let logits = surrogate.forward(&x, Mode::Train)?;
            let loss = softmax_cross_entropy(&logits, &y)?;
            surrogate.zero_grad();
            surrogate.backward(&loss.grad)?;
            opt.step(surrogate.params_mut())?;
        }
    }
    // Final agreement over the probe set.
    let surrogate_preds = query_labels(surrogate, probe, cfg.batch_size)?;
    let agree = surrogate_preds
        .iter()
        .zip(&oracle)
        .filter(|(a, b)| a == b)
        .count();
    Ok(SurrogateReport {
        agreement: agree as f64 / n as f64,
        queries: n,
    })
}

/// Expands a shuffled batch plan over a raw probe tensor + labels.
fn plan_iter(
    plan: &Batches,
    probe: &Tensor,
    labels: &[usize],
) -> Result<Vec<(Tensor, Vec<usize>)>> {
    let mut out = Vec::with_capacity(plan.num_batches());
    for idx in plan.index_batches() {
        let mut imgs = Vec::with_capacity(idx.len());
        let mut ys = Vec::with_capacity(idx.len());
        for &i in idx {
            imgs.push(probe.index_axis0(i)?);
            ys.push(labels[i]);
        }
        out.push((Tensor::stack(&imgs)?, ys));
    }
    Ok(out)
}

/// Measures a complete black-box attack: distil a surrogate, craft samples
/// on it, apply them to the target. Returns `(surrogate report, target
/// accuracy on clean eval set, target accuracy on adversarial samples)`.
///
/// # Errors
///
/// Propagates distillation and attack errors.
pub fn black_box_attack(
    surrogate: &mut Sequential,
    target: &mut Sequential,
    probe: &Tensor,
    eval: (&Tensor, &[usize]),
    attack: &dyn advcomp_attacks::Attack,
    cfg: &SurrogateConfig,
) -> Result<(SurrogateReport, f64, f64)> {
    let report = distill_surrogate(surrogate, target, probe, cfg)?;
    let (x, y) = eval;
    let mut teval = PlannedEval::compile(target, x.shape().get(1..).unwrap_or(&[]));
    let clean_acc = teval.accuracy(target, x, y)?;
    let adv = attack.generate(surrogate, x, y)?;
    let adv_acc = teval.accuracy(target, &adv, y)?;
    Ok((report, clean_acc, adv_acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentScale, TaskSetup, TrainedModel};
    use advcomp_attacks::{Ifgsm, NetKind};

    #[test]
    fn query_labels_batches_correctly() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let trained = TrainedModel::train(&setup, &scale, 1).unwrap();
        let mut model = trained.instantiate().unwrap();
        let (x, _) = setup.test.slice(0, 10).unwrap();
        let a = query_labels(&mut model, &x, 3).unwrap();
        let b = query_labels(&mut model, &x, 10).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn surrogate_learns_to_agree_and_attack_transfers() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let trained = TrainedModel::train(&setup, &scale, 2).unwrap();
        let mut target = trained.instantiate().unwrap();
        // The attacker uses their own architecture and initialisation.
        let mut surrogate = setup.fresh_model(999);
        let probe = setup.train.images().narrow(0, 200).unwrap();
        let (x, y) = setup.test.slice(0, 32).unwrap();
        let attack = Ifgsm::new(0.08, 8).unwrap();
        let cfg = SurrogateConfig::default();
        let (report, clean, adv) =
            black_box_attack(&mut surrogate, &mut target, &probe, (&x, &y), &attack, &cfg).unwrap();
        assert_eq!(report.queries, 200);
        assert!(report.agreement > 0.6, "agreement {}", report.agreement);
        assert!(
            adv < clean,
            "black-box attack failed to transfer: clean {clean} adv {adv}"
        );
    }

    #[test]
    fn empty_probe_rejected() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let mut target = setup.fresh_model(0);
        let mut surrogate = setup.fresh_model(1);
        let probe = Tensor::zeros(&[0, 1, 28, 28]);
        assert!(distill_surrogate(
            &mut surrogate,
            &mut target,
            &probe,
            &SurrogateConfig::default()
        )
        .is_err());
    }
}
