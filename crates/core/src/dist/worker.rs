//! The worker side of the lease protocol.
//!
//! A worker owns its own [`PreparedMatrix`] (or a shared `Arc` of the
//! coordinator's, in local-spawn mode), so the coordinator never ships
//! model weights — only point indices. Compute runs on a helper thread
//! while the protocol thread keeps the lease alive with heartbeats; an
//! injected `dist_heartbeat` panic therefore kills the *worker*, not the
//! point — exactly the crash the coordinator's lease expiry is built for.

use super::msg::{CoordMsg, WorkerMsg};
use crate::resilience::RetryPolicy;
use crate::runner::run_supervised;
use crate::sweep::PreparedMatrix;
use crate::{CoreError, Result};
use advcomp_nn::faults;
use advcomp_wire::{read_frame, write_frame};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::Duration;

/// Worker behaviour knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Worker identifier (appears in coordinator events).
    pub id: String,
    /// Heartbeat interval while computing a point.
    pub heartbeat_ms: u64,
    /// Local retry budget per leased point (panic isolation included).
    pub retry: RetryPolicy,
    /// Connection attempts before giving up on the coordinator.
    pub connect_attempts: u32,
    /// Delay between connection attempts.
    pub connect_backoff_ms: u64,
    /// Artificial per-point slowdown — lets tests hold a point in-flight
    /// long enough to kill the worker mid-compute deterministically.
    pub slow_ms: u64,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            id: "worker".into(),
            heartbeat_ms: 250,
            retry: RetryPolicy::sweep_default(),
            connect_attempts: 20,
            connect_backoff_ms: 50,
            slow_ms: 0,
        }
    }
}

/// What a worker did before the coordinator sent `done`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Points computed and successfully reported.
    pub completed: usize,
    /// Points reported as failed after the local retry budget.
    pub failed: usize,
    /// Heartbeats sent.
    pub heartbeats_sent: usize,
    /// Heartbeats suppressed by an injected `dist_heartbeat` I/O fault.
    pub heartbeats_skipped: usize,
}

fn exchange(stream: &mut TcpStream, msg: &WorkerMsg) -> Result<CoordMsg> {
    write_frame(stream, msg.to_json().as_bytes())?;
    let payload = read_frame(stream)?
        .ok_or_else(|| CoreError::Job("coordinator closed the connection mid-exchange".into()))?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| CoreError::Job(format!("coordinator sent non-UTF-8 frame: {e}")))?;
    CoordMsg::from_json(text).map_err(|e| CoreError::Job(format!("bad coordinator message: {e}")))
}

fn connect(addr: &str, opts: &WorkerOptions) -> Result<TcpStream> {
    let mut last = None;
    for attempt in 0..opts.connect_attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < opts.connect_attempts {
            std::thread::sleep(Duration::from_millis(opts.connect_backoff_ms));
        }
    }
    Err(CoreError::Io(last.expect("at least one attempt")))
}

/// Runs the worker loop against the coordinator at `addr` until it sends
/// `done`.
///
/// # Errors
///
/// Connection failures, protocol violations and handshake rejection
/// (config-hash mismatch). Per-point compute failures are *reported*, not
/// returned — the coordinator owns the failure budget.
///
/// # Panics
///
/// An injected `panic` fault at the `dist_heartbeat` site panics here by
/// design, simulating sudden worker death.
pub fn run_worker(
    addr: &str,
    prepared: &PreparedMatrix,
    opts: &WorkerOptions,
) -> Result<WorkerSummary> {
    let mut stream = connect(addr, opts)?;
    let mut summary = WorkerSummary::default();
    let hello = WorkerMsg::Hello {
        worker: opts.id.clone(),
        config: prepared.config_hash(),
    };
    if let CoordMsg::Reject { reason } = exchange(&mut stream, &hello)? {
        return Err(CoreError::Job(format!(
            "coordinator rejected worker: {reason}"
        )));
    }
    loop {
        match exchange(&mut stream, &WorkerMsg::Request)? {
            CoordMsg::Grant { index, key, .. } => {
                if prepared.keys().get(index).map(String::as_str) != Some(key.as_str()) {
                    return Err(CoreError::Job(format!(
                        "grant for point {index} key '{key}' does not match this \
                         worker's matrix — config drift past the handshake"
                    )));
                }
                let report = compute_with_heartbeats(
                    &mut stream,
                    prepared,
                    index,
                    &key,
                    opts,
                    &mut summary,
                )?;
                match report {
                    Ok(record_json) => {
                        summary.completed += 1;
                        exchange(
                            &mut stream,
                            &WorkerMsg::Result {
                                key,
                                record: record_json,
                            },
                        )?;
                    }
                    Err(error) => {
                        summary.failed += 1;
                        exchange(&mut stream, &WorkerMsg::Failed { key, error })?;
                    }
                }
            }
            CoordMsg::Wait { ms } => {
                std::thread::sleep(Duration::from_millis(ms.min(1000)));
            }
            CoordMsg::Done => return Ok(summary),
            CoordMsg::Reject { reason } => {
                return Err(CoreError::Job(format!(
                    "coordinator rejected worker: {reason}"
                )));
            }
        }
    }
}

/// Computes one leased point on a helper thread while heartbeating from
/// this one. Returns `Ok(Ok(record_json))` on success, `Ok(Err(msg))` when
/// the point exhausted the local retry budget — protocol errors are the
/// outer `Err`.
fn compute_with_heartbeats(
    stream: &mut TcpStream,
    prepared: &PreparedMatrix,
    index: usize,
    key: &str,
    opts: &WorkerOptions,
    summary: &mut WorkerSummary,
) -> Result<std::result::Result<String, String>> {
    let slot = std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel();
        let retry = opts.retry;
        let slow_ms = opts.slow_ms;
        s.spawn(move || {
            if slow_ms > 0 {
                std::thread::sleep(Duration::from_millis(slow_ms));
            }
            // `run_supervised` supplies the panic isolation and local
            // retries; a send failure just means the protocol thread died
            // first, in which case the result is moot.
            let mut slots = run_supervised(vec![|| prepared.run_point(index)], 1, &retry);
            let _ = tx.send(slots.pop().expect("one job in, one slot out"));
        });
        loop {
            match rx.recv_timeout(Duration::from_millis(opts.heartbeat_ms.max(1))) {
                Ok(slot) => return Ok(slot),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("supervised compute always sends exactly once")
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    match faults::fire("dist_heartbeat") {
                        Some(faults::FaultKind::Panic) => {
                            panic!("injected fault: panic at site 'dist_heartbeat'")
                        }
                        Some(_) => {
                            // Injected I/O (or other) fault: the heartbeat
                            // is silently dropped; enough of these and the
                            // coordinator expires the lease — the
                            // slow-network failure mode.
                            summary.heartbeats_skipped += 1;
                            continue;
                        }
                        None => {}
                    }
                    let ack = exchange(
                        stream,
                        &WorkerMsg::Heartbeat {
                            key: key.to_string(),
                        },
                    )?;
                    summary.heartbeats_sent += 1;
                    if let CoordMsg::Reject { reason } = ack {
                        return Err(CoreError::Job(format!(
                            "coordinator rejected heartbeat: {reason}"
                        )));
                    }
                }
            }
        }
    })?;
    Ok(match slot {
        Ok((outcome, attempts)) => Ok(prepared.record_ok(index, outcome, attempts).to_json()),
        Err(failure) => Err(failure.error),
    })
}
