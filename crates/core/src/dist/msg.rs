//! Coordinator/worker message types and their JSON encoding.
//!
//! Messages travel one per `advcomp-wire` frame. Encoding is the crate's
//! hand-rolled minijson (the vendored `serde` stub cannot deserialize);
//! point records travel as an **escaped JSON string field** rather than a
//! nested object so the coordinator journals the worker's exact bytes —
//! the bit-identity contract needs the record to cross the wire untouched.

use crate::minijson::{self as mini, quote};

/// Messages a worker sends to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// Handshake: worker id plus the config hash of its
    /// [`PreparedMatrix`](crate::sweep::PreparedMatrix) — rejected unless
    /// it matches the coordinator's.
    Hello {
        /// Worker identifier (for lease bookkeeping and events).
        worker: String,
        /// `PreparedMatrix::config_hash()` of the worker's matrix.
        config: String,
    },
    /// Ask for work.
    Request,
    /// Refresh the lease on `key` while computing it.
    Heartbeat {
        /// Journal key of the leased point.
        key: String,
    },
    /// A completed point: the full [`PointRecord`](crate::journal::PointRecord)
    /// JSON, transported verbatim.
    Result {
        /// Journal key of the point.
        key: String,
        /// Exact `PointRecord::to_json()` bytes.
        record: String,
    },
    /// The point failed after the worker's local retry budget.
    Failed {
        /// Journal key of the point.
        key: String,
        /// Final error (or panic) message.
        error: String,
    },
}

/// Messages the coordinator sends back (exactly one per worker message).
#[derive(Debug, Clone, PartialEq)]
pub enum CoordMsg {
    /// Work assignment: compute point `index` and heartbeat until done.
    Grant {
        /// Point index into the prepared matrix.
        index: usize,
        /// Journal key (workers cross-check it against their own matrix).
        key: String,
        /// Lease time-to-live granted, in milliseconds.
        deadline_ms: u64,
    },
    /// No work right now (also the generic ack, with `ms == 0`).
    Wait {
        /// Suggested wait before the next request, in milliseconds.
        ms: u64,
    },
    /// Sweep complete; the worker should exit cleanly.
    Done,
    /// Handshake or protocol rejection; the worker must not continue.
    Reject {
        /// Human-readable reason.
        reason: String,
    },
}

fn field_str(doc: &mini::Value, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(mini::Value::as_str)
        .map(String::from)
        .ok_or_else(|| format!("missing/malformed string field '{key}'"))
}

fn field_u64(doc: &mini::Value, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(mini::Value::as_u64)
        .ok_or_else(|| format!("missing/malformed integer field '{key}'"))
}

impl WorkerMsg {
    /// Encodes to one frame payload.
    pub fn to_json(&self) -> String {
        match self {
            WorkerMsg::Hello { worker, config } => format!(
                "{{\"type\": \"hello\", \"worker\": {}, \"config\": {}}}",
                quote(worker),
                quote(config)
            ),
            WorkerMsg::Request => "{\"type\": \"request\"}".into(),
            WorkerMsg::Heartbeat { key } => {
                format!("{{\"type\": \"heartbeat\", \"key\": {}}}", quote(key))
            }
            WorkerMsg::Result { key, record } => format!(
                "{{\"type\": \"result\", \"key\": {}, \"record\": {}}}",
                quote(key),
                quote(record)
            ),
            WorkerMsg::Failed { key, error } => format!(
                "{{\"type\": \"failed\", \"key\": {}, \"error\": {}}}",
                quote(key),
                quote(error)
            ),
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A description of the malformation — the coordinator treats it as a
    /// protocol violation and drops the connection.
    pub fn from_json(text: &str) -> Result<WorkerMsg, String> {
        let doc = mini::parse(text)?;
        match field_str(&doc, "type")?.as_str() {
            "hello" => Ok(WorkerMsg::Hello {
                worker: field_str(&doc, "worker")?,
                config: field_str(&doc, "config")?,
            }),
            "request" => Ok(WorkerMsg::Request),
            "heartbeat" => Ok(WorkerMsg::Heartbeat {
                key: field_str(&doc, "key")?,
            }),
            "result" => Ok(WorkerMsg::Result {
                key: field_str(&doc, "key")?,
                record: field_str(&doc, "record")?,
            }),
            "failed" => Ok(WorkerMsg::Failed {
                key: field_str(&doc, "key")?,
                error: field_str(&doc, "error")?,
            }),
            other => Err(format!("unknown worker message type '{other}'")),
        }
    }
}

impl CoordMsg {
    /// Encodes to one frame payload.
    pub fn to_json(&self) -> String {
        match self {
            CoordMsg::Grant {
                index,
                key,
                deadline_ms,
            } => format!(
                "{{\"type\": \"grant\", \"index\": {index}, \"key\": {}, \"deadline_ms\": {deadline_ms}}}",
                quote(key)
            ),
            CoordMsg::Wait { ms } => format!("{{\"type\": \"wait\", \"ms\": {ms}}}"),
            CoordMsg::Done => "{\"type\": \"done\"}".into(),
            CoordMsg::Reject { reason } => {
                format!("{{\"type\": \"reject\", \"reason\": {}}}", quote(reason))
            }
        }
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// A description of the malformation — the worker treats it as a fatal
    /// protocol error.
    pub fn from_json(text: &str) -> Result<CoordMsg, String> {
        let doc = mini::parse(text)?;
        match field_str(&doc, "type")?.as_str() {
            "grant" => Ok(CoordMsg::Grant {
                index: usize::try_from(field_u64(&doc, "index")?)
                    .map_err(|_| "index out of range".to_string())?,
                key: field_str(&doc, "key")?,
                deadline_ms: field_u64(&doc, "deadline_ms")?,
            }),
            "wait" => Ok(CoordMsg::Wait {
                ms: field_u64(&doc, "ms")?,
            }),
            "done" => Ok(CoordMsg::Done),
            "reject" => Ok(CoordMsg::Reject {
                reason: field_str(&doc, "reason")?,
            }),
            other => Err(format!("unknown coordinator message type '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{PointRecord, PointStatus};

    #[test]
    fn worker_messages_round_trip() {
        let msgs = [
            WorkerMsg::Hello {
                worker: "w0".into(),
                config: "00c0ffee00c0ffee".into(),
            },
            WorkerMsg::Request,
            WorkerMsg::Heartbeat {
                key: "deadbeef".into(),
            },
            WorkerMsg::Result {
                key: "deadbeef".into(),
                record: "{\n  \"quoted\": \"yes\\n\"\n}\n".into(),
            },
            WorkerMsg::Failed {
                key: "deadbeef".into(),
                error: "panic: \"boom\"".into(),
            },
        ];
        for m in msgs {
            assert_eq!(WorkerMsg::from_json(&m.to_json()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn coord_messages_round_trip() {
        let msgs = [
            CoordMsg::Grant {
                index: 3,
                key: "0123456789abcdef".into(),
                deadline_ms: 2000,
            },
            CoordMsg::Wait { ms: 0 },
            CoordMsg::Wait { ms: 250 },
            CoordMsg::Done,
            CoordMsg::Reject {
                reason: "config hash mismatch".into(),
            },
        ];
        for m in msgs {
            assert_eq!(CoordMsg::from_json(&m.to_json()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn point_record_survives_the_wire_byte_exactly() {
        // The record field is the bit-identity carrier: a full PointRecord
        // JSON (newlines, quotes, shortest-round-trip floats) must come out
        // byte-for-byte.
        let rec = PointRecord {
            key: "00c0ffee00c0ffee".into(),
            x: 0.30000000000000004,
            compression: "dns_prune(0.3)".into(),
            status: PointStatus::Ok,
            attempts: 2,
            base_accuracy: 0.937_499_999_999_999_9,
            scenarios: vec![(0.1, 1.0 / 3.0, 0.3)],
            health: vec!["epoch 1: \"rolled back\"".into()],
            error: None,
        };
        let msg = WorkerMsg::Result {
            key: rec.key.clone(),
            record: rec.to_json(),
        };
        match WorkerMsg::from_json(&msg.to_json()).unwrap() {
            WorkerMsg::Result { record, .. } => {
                assert_eq!(record, rec.to_json());
                assert_eq!(PointRecord::from_json(&record).unwrap(), rec);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn malformed_messages_are_rejected() {
        for bad in [
            "not json",
            "{\"type\": \"nope\"}",
            "{\"type\": \"grant\", \"index\": \"x\"}",
            "{\"worker\": \"missing type\"}",
        ] {
            assert!(CoordMsg::from_json(bad).is_err(), "{bad}");
            assert!(WorkerMsg::from_json(bad).is_err(), "{bad}");
        }
    }
}
