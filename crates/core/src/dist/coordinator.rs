//! The coordinator side of the lease protocol.
//!
//! One thread per worker connection (I/O + protocol), one main loop
//! (accept, lease expiry, solo fallback, termination), one mutex around
//! the sweep state. Per-point work takes seconds to minutes, so lock
//! granularity is nowhere near the bottleneck — correctness of the lease
//! ledger is what matters.

use super::msg::{CoordMsg, WorkerMsg};
use super::{DistOutcome, DistReport, DistRunConfig};
use crate::journal::{EventLog, EventRecord, Journal, PointRecord};
use crate::runner::run_supervised;
use crate::sweep::{PointFailure, PreparedMatrix};
use crate::{CoreError, Result};
use advcomp_nn::faults;
use advcomp_wire::{write_frame, FrameBuffer};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One outstanding lease on a sweep point.
#[derive(Debug)]
struct Lease {
    worker: String,
    granted: Instant,
    deadline: Instant,
}

/// Mutable sweep state, shared between the main loop and connection
/// handler threads.
struct CoordState {
    slots: Vec<Option<PointRecord>>,
    /// Total grants per point (a second grant is a re-dispatch).
    grants: Vec<u32>,
    /// Reported failures per point (feeds the failure budget).
    failures: Vec<u32>,
    /// Earliest next dispatch per point (failure backoff).
    eligible_at: Vec<Instant>,
    leases: Vec<Vec<Lease>>,
    connected: usize,
    last_worker_seen: Instant,
    report: DistReport,
    /// Points executed (completed or permanently failed) by this
    /// coordinator process — [`MatrixRun::computed`](crate::sweep::MatrixRun).
    computed_run: usize,
    failed: Vec<PointFailure>,
    health: Vec<String>,
    journal: Journal,
    events: EventLog,
    done: bool,
}

impl CoordState {
    fn event(&mut self, kind: &str, key: &str, detail: &str) {
        // Event-log appends are best-effort observability; losing one must
        // not fail the sweep. Note it and move on.
        if let Err(e) = self.events.append(kind, key, detail) {
            self.health
                .push(format!("dist: event log append failed: {e}"));
        }
    }

    fn release_worker_lease(&mut self, index: usize, worker: &str) {
        self.leases[index].retain(|l| l.worker != worker);
    }

    fn pending(&self) -> bool {
        self.slots.iter().any(Option::is_none)
    }
}

/// Everything a connection handler needs.
struct Shared {
    state: Mutex<CoordState>,
    prepared: Arc<PreparedMatrix>,
    cfg: DistRunConfig,
    key_index: HashMap<String, usize>,
}

/// Read-only probe into a running coordinator — lets tests (and the kill
/// harness) wait for observable protocol states without sleeping blind.
#[derive(Clone)]
pub struct DistHandle {
    shared: Arc<Shared>,
}

impl DistHandle {
    /// Snapshot of the current report counters.
    pub fn report(&self) -> DistReport {
        self.shared
            .state
            .lock()
            .expect("coordinator state lock")
            .report
            .clone()
    }

    /// Whether the sweep has completed.
    pub fn done(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("coordinator state lock")
            .done
    }
}

/// A bound, not-yet-running sweep coordinator.
pub struct Coordinator {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds the listener and restores state: journal-completed points are
    /// loaded as resumed, the event log is replayed to restore report
    /// counters (tolerating a torn final line from a coordinator crash).
    ///
    /// # Errors
    ///
    /// Bind, journal and event-log errors.
    pub fn bind(
        listen: &str,
        prepared: Arc<PreparedMatrix>,
        cfg: &DistRunConfig,
    ) -> Result<Coordinator> {
        let journal = Journal::open(&cfg.run_dir)?;
        let (events, past, warnings) = EventLog::open(&cfg.run_dir)?;
        let n = prepared.num_points();
        let mut report = DistReport {
            points: n,
            resume_warnings: warnings.len(),
            ..DistReport::default()
        };
        restore_counters(&mut report, &past);
        let mut health = prepared.baseline_health();
        for w in &warnings {
            health.push(format!("dist: {w}"));
        }

        let mut slots: Vec<Option<PointRecord>> = (0..n).map(|_| None).collect();
        let mut resumed = 0usize;
        for (i, key) in prepared.keys().iter().enumerate() {
            if let Some(rec) = journal.load(key)? {
                if prepared.resumable(&rec) {
                    slots[i] = Some(rec);
                    resumed += 1;
                }
            }
        }
        report.resumed = resumed;

        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let now = Instant::now();
        let key_index = prepared
            .keys()
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i))
            .collect();
        let state = CoordState {
            slots,
            grants: vec![0; n],
            failures: vec![0; n],
            eligible_at: vec![now; n],
            leases: (0..n).map(|_| Vec::new()).collect(),
            connected: 0,
            last_worker_seen: now,
            report,
            computed_run: 0,
            failed: Vec::new(),
            health,
            journal,
            events,
            done: false,
        };
        Ok(Coordinator {
            listener,
            addr,
            shared: Arc::new(Shared {
                state: Mutex::new(state),
                prepared,
                cfg: cfg.clone(),
                key_index,
            }),
        })
    }

    /// The bound listen address (for `127.0.0.1:0`-style ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A probe handle for tests and harnesses.
    pub fn handle(&self) -> DistHandle {
        DistHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the sweep to completion: serves workers, expires leases,
    /// degrades to solo compute when every worker is gone, then writes
    /// `dist_report.json` and assembles the final [`DistOutcome`].
    ///
    /// # Errors
    ///
    /// Listener errors and report-write failures. Worker-side failures
    /// never error here.
    pub fn run(self) -> Result<DistOutcome> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            self.accept_waiting(&mut handlers)?;
            self.expire_leases();
            if !self
                .shared
                .state
                .lock()
                .expect("coordinator state lock")
                .pending()
            {
                break;
            }
            self.maybe_solo_step();
            std::thread::sleep(Duration::from_millis(10));
        }
        {
            let mut st = self.shared.state.lock().expect("coordinator state lock");
            st.done = true;
            st.event("done", "", "");
        }
        // Wind-down: keep accepting so a worker that connected in the final
        // instants is told `done` instead of hanging on an unanswered
        // hello; handlers drain as each worker gets its `done` (or drops).
        loop {
            self.accept_waiting(&mut handlers)?;
            handlers.retain(|h| !h.is_finished());
            if handlers.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        let mut st = self.shared.state.lock().expect("coordinator state lock");
        let report = st.report.clone();
        crate::report::write_json(&report, &self.shared.cfg.run_dir.join("dist_report.json"))?;
        let slots = std::mem::take(&mut st.slots);
        let failed = std::mem::take(&mut st.failed);
        let health = std::mem::take(&mut st.health);
        let run =
            self.shared
                .prepared
                .assemble(slots, report.resumed, st.computed_run, failed, health);
        Ok(DistOutcome { run, report })
    }

    /// Accepts every waiting connection, spawning one handler thread each.
    fn accept_waiting(&self, handlers: &mut Vec<std::thread::JoinHandle<()>>) -> Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    handlers.push(std::thread::spawn(move || handle_conn(stream, &shared)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(CoreError::Io(e)),
            }
        }
    }

    /// Expires leases whose deadline passed without a heartbeat.
    fn expire_leases(&self) {
        let mut st = self.shared.state.lock().expect("coordinator state lock");
        let now = Instant::now();
        for i in 0..st.slots.len() {
            if st.slots[i].is_some() {
                continue;
            }
            let expired: Vec<String> = {
                let leases = &mut st.leases[i];
                let dead: Vec<String> = leases
                    .iter()
                    .filter(|l| l.deadline <= now)
                    .map(|l| l.worker.clone())
                    .collect();
                leases.retain(|l| l.deadline > now);
                dead
            };
            for worker in expired {
                st.report.leases_expired += 1;
                let key = self.shared.prepared.keys()[i].clone();
                st.event("lease_expired", &key, &worker);
            }
        }
    }

    /// Degrades to computing one pending point inline when no workers are
    /// connected (and none has been seen for the grace window).
    fn maybe_solo_step(&self) {
        let pick = {
            let mut st = self.shared.state.lock().expect("coordinator state lock");
            if st.connected > 0
                || st.last_worker_seen.elapsed()
                    < Duration::from_millis(self.shared.cfg.dist.solo_grace_ms)
            {
                return;
            }
            let now = Instant::now();
            let pick = (0..st.slots.len()).find(|&i| {
                st.slots[i].is_none() && st.leases[i].is_empty() && st.eligible_at[i] <= now
            });
            if let Some(i) = pick {
                // A synthetic lease keeps a late-arriving worker from being
                // granted the same point while we compute it (duplicates
                // would still resolve correctly — this just avoids waste).
                st.leases[i].push(Lease {
                    worker: "solo".into(),
                    granted: now,
                    deadline: now + Duration::from_secs(3600),
                });
            }
            pick
        };
        let Some(i) = pick else { return };
        let prepared = &self.shared.prepared;
        let mut slots = run_supervised(vec![|| prepared.run_point(i)], 1, &self.shared.cfg.retry);
        let outcome = slots.pop().expect("one job in, one slot out");

        let mut st = self.shared.state.lock().expect("coordinator state lock");
        st.release_worker_lease(i, "solo");
        if st.slots[i].is_some() {
            // A worker connected mid-compute and beat us to it.
            st.report.duplicates += 1;
            let key = prepared.keys()[i].clone();
            st.event("duplicate", &key, "solo");
            return;
        }
        let key = prepared.keys()[i].clone();
        match outcome {
            Ok((out, attempts)) => {
                let rec = prepared.record_ok(i, out, attempts);
                store_degraded(&mut st, &rec);
                st.slots[i] = Some(rec);
                st.computed_run += 1;
                st.report.computed_solo += 1;
                st.event("completed_solo", &key, "");
            }
            Err(f) => note_failure(&mut st, &self.shared, i, f.error),
        }
    }
}

/// Maps replayed event kinds back onto report counters so a restarted
/// coordinator's report stays cumulative for the whole sweep.
fn restore_counters(report: &mut DistReport, past: &[EventRecord]) {
    for e in past {
        match e.kind.as_str() {
            "worker_joined" => report.workers_joined += 1,
            "worker_lost" => report.workers_lost += 1,
            "lease_granted" => report.leases_granted += 1,
            "lease_expired" => report.leases_expired += 1,
            "redispatch" => report.redispatches += 1,
            "speculative" => report.speculative += 1,
            "duplicate" => report.duplicates += 1,
            "divergent" => report.divergent += 1,
            "grant_error" => report.grant_errors += 1,
            "result_write_error" => report.result_write_errors += 1,
            "point_failed" => report.reported_failures += 1,
            "permanent_failure" => report.permanent_failures += 1,
            "completed" => report.computed_remote += 1,
            "completed_solo" => report.computed_solo += 1,
            _ => {}
        }
    }
}

/// Journal-store with the same degradation contract as
/// [`TransferMatrix::run_resilient`](crate::sweep::TransferMatrix::run_resilient):
/// a persist failure must not discard a computed point.
fn store_degraded(st: &mut CoordState, rec: &PointRecord) {
    if let Err(e) = st.journal.store(rec) {
        st.health.push(format!(
            "journal: failed to persist point x={} ({}): {e}",
            rec.x, rec.compression
        ));
    }
}

/// Registers a reported failure for point `i`: backoff for re-dispatch, or
/// a permanent journalled failure once the budget is spent.
fn note_failure(st: &mut CoordState, shared: &Shared, i: usize, error: String) {
    st.failures[i] += 1;
    st.report.reported_failures += 1;
    let key = shared.prepared.keys()[i].clone();
    st.event("point_failed", &key, &error);
    let failures = st.failures[i];
    if failures >= shared.cfg.dist.failure_budget.max(1) {
        let rec = shared.prepared.record_failed(i, error.clone(), failures);
        store_degraded(st, &rec);
        st.slots[i] = Some(rec);
        let (x, compression) = shared.prepared.coordinate(i);
        st.failed.push(PointFailure {
            x,
            compression,
            error,
            attempts: failures,
        });
        st.computed_run += 1;
        st.report.permanent_failures += 1;
        st.event("permanent_failure", &key, "");
    } else {
        let backoff = shared
            .cfg
            .dist
            .backoff_ms
            .saturating_mul(1 << (failures - 1).min(16));
        st.eligible_at[i] = Instant::now() + Duration::from_millis(backoff);
    }
}

/// Picks the next grant for `worker`: lowest-index fresh point first, then
/// a speculative copy of the longest-running straggler, else wait/done.
fn select_grant(st: &mut CoordState, shared: &Shared, worker: &str) -> CoordMsg {
    let now = Instant::now();
    let dist = &shared.cfg.dist;
    let n = st.slots.len();

    let fresh = (0..n).find(|&i| {
        st.slots[i].is_none()
            && st.leases[i].is_empty()
            && st.failures[i] < dist.failure_budget.max(1)
            && st.eligible_at[i] <= now
    });
    let index = match fresh {
        Some(i) => {
            if st.grants[i] > 0 {
                st.report.redispatches += 1;
                let key = shared.prepared.keys()[i].clone();
                st.event("redispatch", &key, worker);
            }
            Some(i)
        }
        None => {
            // Straggler speculation: re-dispatch the oldest in-flight point
            // this worker doesn't already hold, within the speculation cap.
            let straggler = (0..n)
                .filter(|&i| {
                    st.slots[i].is_none()
                        && !st.leases[i].is_empty()
                        && st.leases[i].len() < 1 + dist.max_speculation
                        && st.leases[i].iter().all(|l| l.worker != worker)
                })
                .filter_map(|i| {
                    let oldest = st.leases[i].iter().map(|l| l.granted).min()?;
                    (now.duration_since(oldest) >= Duration::from_millis(dist.straggler_ms))
                        .then_some((oldest, i))
                })
                .min()
                .map(|(_, i)| i);
            if let Some(i) = straggler {
                st.report.speculative += 1;
                let key = shared.prepared.keys()[i].clone();
                st.event("speculative", &key, worker);
            }
            straggler
        }
    };
    match index {
        Some(i) => {
            st.leases[i].push(Lease {
                worker: worker.to_string(),
                granted: now,
                deadline: now + Duration::from_millis(dist.lease_ms),
            });
            st.grants[i] += 1;
            st.report.leases_granted += 1;
            let key = shared.prepared.keys()[i].clone();
            st.event("lease_granted", &key, worker);
            CoordMsg::Grant {
                index: i,
                key,
                deadline_ms: dist.lease_ms,
            }
        }
        None if st.pending() => CoordMsg::Wait {
            ms: dist.heartbeat_ms,
        },
        None => CoordMsg::Done,
    }
}

/// Handles a completed-point report. Returns the reply.
fn accept_result(
    st: &mut CoordState,
    shared: &Shared,
    worker: &str,
    key: &str,
    record: &str,
) -> CoordMsg {
    let Some(&i) = shared.key_index.get(key) else {
        return CoordMsg::Reject {
            reason: format!("result for unknown point key '{key}'"),
        };
    };
    // The journalled-result fault site: an injected persist failure must
    // cost only this delivery — the lease is released so the point
    // re-dispatches, and the worker carries on.
    if let Some(e) = faults::io_error("dist_result_write") {
        st.report.result_write_errors += 1;
        st.release_worker_lease(i, worker);
        st.event("result_write_error", key, &e.to_string());
        return CoordMsg::Wait { ms: 0 };
    }
    st.release_worker_lease(i, worker);
    if let Some(existing) = st.slots[i].as_ref().map(PointRecord::to_json) {
        // Lost a race (lease expiry, speculation): first write won. The
        // duplicate must be bit-identical — divergence means the
        // determinism contract broke somewhere.
        st.report.duplicates += 1;
        st.event("duplicate", key, worker);
        if existing != record {
            st.report.divergent += 1;
            st.health.push(format!(
                "dist: divergent duplicate for point key {key} from {worker}"
            ));
            st.event("divergent", key, worker);
        }
        return CoordMsg::Wait { ms: 0 };
    }
    let rec = match PointRecord::from_json(record) {
        Ok(rec) if rec.key == key && shared.prepared.resumable(&rec) => rec,
        Ok(_) => {
            note_failure(
                st,
                shared,
                i,
                format!("worker {worker} sent a mismatched record"),
            );
            return CoordMsg::Wait { ms: 0 };
        }
        Err(e) => {
            note_failure(
                st,
                shared,
                i,
                format!("worker {worker} sent an unparseable record: {e}"),
            );
            return CoordMsg::Wait { ms: 0 };
        }
    };
    store_degraded(st, &rec);
    st.slots[i] = Some(rec);
    st.leases[i].clear();
    st.computed_run += 1;
    st.report.computed_remote += 1;
    st.event("completed", key, worker);
    CoordMsg::Wait { ms: 0 }
}

/// Per-connection protocol loop: drains frames via a [`FrameBuffer`]
/// (timeout-safe), answers each message, and settles the worker's leases on
/// disconnect.
fn handle_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut fb = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    let mut worker: Option<String> = None;
    let mut done_since: Option<Instant> = None;
    loop {
        loop {
            let payload = match fb.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(_) => return disconnect(shared, worker.as_deref()),
            };
            let msg = std::str::from_utf8(&payload)
                .map_err(|e| e.to_string())
                .and_then(WorkerMsg::from_json);
            let Ok(msg) = msg else {
                return disconnect(shared, worker.as_deref());
            };
            let (reply, close) = process(shared, &mut worker, msg);
            if write_frame(&mut stream, reply.to_json().as_bytes()).is_err() {
                return disconnect(shared, worker.as_deref());
            }
            if close {
                // Clean end (done/reject): the worker is not "lost".
                if worker.is_some() {
                    let mut st = shared.state.lock().expect("coordinator state lock");
                    st.connected = st.connected.saturating_sub(1);
                }
                return;
            }
        }
        // Helloed workers are served until their `done` (their next request
        // answers it); a connection that still hasn't helloed a while after
        // the sweep finished is dead weight — drop it so wind-down ends.
        if worker.is_none() && shared.state.lock().expect("coordinator state lock").done {
            let since = *done_since.get_or_insert_with(Instant::now);
            if since.elapsed() > Duration::from_secs(2) {
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return disconnect(shared, worker.as_deref()),
            Ok(nread) => fb.extend(&chunk[..nread]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return disconnect(shared, worker.as_deref()),
        }
    }
}

/// Settles state for a dropped connection: every lease the worker held is
/// released so its points re-dispatch immediately.
fn disconnect(shared: &Shared, worker: Option<&str>) {
    let Some(worker) = worker else { return };
    let mut st = shared.state.lock().expect("coordinator state lock");
    st.connected = st.connected.saturating_sub(1);
    if st.done {
        return;
    }
    st.report.workers_lost += 1;
    for i in 0..st.slots.len() {
        st.release_worker_lease(i, worker);
    }
    st.event("worker_lost", "", worker);
}

/// Dispatches one worker message; returns the reply and whether the
/// connection should close after sending it.
fn process(shared: &Shared, worker: &mut Option<String>, msg: WorkerMsg) -> (CoordMsg, bool) {
    let mut st = shared.state.lock().expect("coordinator state lock");
    st.last_worker_seen = Instant::now();
    match msg {
        WorkerMsg::Hello { worker: id, config } => {
            if config != shared.prepared.config_hash() {
                return (
                    CoordMsg::Reject {
                        reason: format!(
                            "config hash mismatch: coordinator {}, worker {config} — \
                             different matrix, scale or seed",
                            shared.prepared.config_hash()
                        ),
                    },
                    true,
                );
            }
            st.connected += 1;
            st.report.workers_joined += 1;
            st.event("worker_joined", "", &id);
            *worker = Some(id);
            (CoordMsg::Wait { ms: 0 }, false)
        }
        _ if worker.is_none() => (
            CoordMsg::Reject {
                reason: "protocol violation: first message must be hello".into(),
            },
            true,
        ),
        WorkerMsg::Request => {
            // The lease-grant fault site: an injected failure here must
            // cost one request, not the worker or the sweep.
            if let Some(e) = faults::io_error("dist_lease_grant") {
                st.report.grant_errors += 1;
                st.event("grant_error", "", &e.to_string());
                return (
                    CoordMsg::Wait {
                        ms: shared.cfg.dist.heartbeat_ms,
                    },
                    false,
                );
            }
            let w = worker.clone().expect("checked above");
            let reply = select_grant(&mut st, shared, &w);
            let close = matches!(reply, CoordMsg::Done);
            (reply, close)
        }
        WorkerMsg::Heartbeat { key } => {
            let w = worker.as_deref().expect("checked above");
            if let Some(&i) = shared.key_index.get(&key) {
                let deadline = Instant::now() + Duration::from_millis(shared.cfg.dist.lease_ms);
                for l in st.leases[i].iter_mut().filter(|l| l.worker == w) {
                    l.deadline = deadline;
                }
            }
            (CoordMsg::Wait { ms: 0 }, false)
        }
        WorkerMsg::Result { key, record } => {
            let w = worker.clone().expect("checked above");
            let reply = accept_result(&mut st, shared, &w, &key, &record);
            let close = matches!(reply, CoordMsg::Reject { .. });
            (reply, close)
        }
        WorkerMsg::Failed { key, error } => {
            let w = worker.clone().expect("checked above");
            if let Some(&i) = shared.key_index.get(&key) {
                st.release_worker_lease(i, &w);
                if st.slots[i].is_none() {
                    note_failure(&mut st, shared, i, error);
                }
            }
            (CoordMsg::Wait { ms: 0 }, false)
        }
    }
}
