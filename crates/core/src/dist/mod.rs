//! Distributed sweep execution: a lease-based coordinator/worker layer over
//! the attack×compression matrix.
//!
//! A paper-scale Figure 2/5 grid is embarrassingly parallel across sweep
//! points but hostile to naive distribution: points take minutes, workers
//! die (OOM, preemption, injected panics), and the final report must be
//! **bit-identical** to a single-process run. The design leans on three
//! existing pieces rather than inventing new ones:
//!
//! * the content-hash **journal** ([`crate::journal`]) is the source of
//!   truth for completion — results are idempotent (first write wins, and a
//!   duplicate must be bit-identical or it is flagged as divergence);
//! * [`PreparedMatrix`](crate::sweep::PreparedMatrix) is the deterministic
//!   substrate — every participant trains the same baseline from the same
//!   seed, so any worker's point record splices in exactly;
//! * the serve layer's length-prefixed JSON framing (`advcomp-wire`) is the
//!   transport — one frame per message, 16 MiB cap.
//!
//! The protocol is strict request/response, worker-initiated:
//!
//! ```text
//! worker                         coordinator
//!   | -- hello {id, config} -----> |   reject on config-hash mismatch
//!   | <- wait (ack) -------------- |
//!   | -- request ----------------> |
//!   | <- grant {index, key, ttl} - |   lease registered, deadline set
//!   | -- heartbeat {key} --------> |   lease deadline extended
//!   | <- wait (ack) -------------- |
//!   | -- result {key, record} ---> |   journalled; all leases released
//!   | <- wait (ack) -------------- |
//!   | -- request ----------------> |
//!   | <- done -------------------- |
//! ```
//!
//! Failure handling: a lease whose deadline passes without a heartbeat is
//! **expired** and the point re-dispatched (exponential backoff after
//! explicit worker-reported failures; a per-point failure budget turns a
//! poisoned point into a recorded failure instead of an infinite loop).
//! Near the end of the sweep, long-in-flight points are speculatively
//! re-dispatched to idle workers (stragglers); whichever copy finishes
//! first wins, the loser is a counted duplicate. If every worker is gone,
//! the coordinator finishes the sweep alone. Coordinator crash-resume rides
//! on the journal plus an append-only [`EventLog`](crate::journal::EventLog)
//! that restores the run report's counters.

mod coordinator;
mod msg;
mod worker;

pub use coordinator::{Coordinator, DistHandle};
pub use msg::{CoordMsg, WorkerMsg};
pub use worker::{run_worker, WorkerOptions, WorkerSummary};

use crate::resilience::RetryPolicy;
use crate::scale::ExperimentScale;
use crate::sweep::{MatrixRun, TransferMatrix};
use crate::Result;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// Timing and budget knobs for the lease protocol.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Lease time-to-live: a lease not refreshed by a heartbeat within this
    /// window is expired and its point re-dispatched.
    pub lease_ms: u64,
    /// Worker heartbeat interval (must be comfortably below `lease_ms`).
    pub heartbeat_ms: u64,
    /// Explicit worker-reported failures tolerated per point before it is
    /// recorded as permanently failed.
    pub failure_budget: u32,
    /// Base re-dispatch backoff after a reported failure; doubles per
    /// failure (`backoff_ms * 2^(failures-1)`).
    pub backoff_ms: u64,
    /// In-flight age beyond which a point is considered a straggler and
    /// eligible for speculative re-dispatch to an idle worker.
    pub straggler_ms: u64,
    /// How long the coordinator waits with zero connected workers before
    /// degrading to computing pending points itself.
    pub solo_grace_ms: u64,
    /// Extra concurrent leases allowed per straggling point (1 = at most
    /// one speculative copy alongside the original).
    pub max_speculation: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            lease_ms: 2000,
            heartbeat_ms: 250,
            failure_budget: 3,
            backoff_ms: 50,
            straggler_ms: 1000,
            solo_grace_ms: 500,
            max_speculation: 1,
        }
    }
}

/// Full configuration of a distributed run.
#[derive(Debug, Clone)]
pub struct DistRunConfig {
    /// Baseline-training seed (part of every point's journal key).
    pub seed: u64,
    /// Run directory: journal (`points/`), event log (`events.log`) and the
    /// final `dist_report.json` all live here. Mandatory — distribution
    /// without a journal would have no idempotency story.
    pub run_dir: PathBuf,
    /// Lease-protocol knobs.
    pub dist: DistConfig,
    /// Retry budget workers (and the solo fallback) apply *within* one
    /// lease — panics and errors retried locally before being reported.
    pub retry: RetryPolicy,
    /// Coordinator listen address, e.g. `127.0.0.1:0`.
    pub listen: String,
    /// Artificial per-point slowdown applied to local-spawn workers — a
    /// test knob that holds points in flight long enough to exercise
    /// heartbeats, stragglers and mid-compute kills deterministically.
    pub worker_slow_ms: u64,
}

impl DistRunConfig {
    /// Defaults (seed 7, sweep-default retry, ephemeral localhost port)
    /// with the given run directory.
    pub fn new(run_dir: PathBuf) -> Self {
        DistRunConfig {
            seed: 7,
            run_dir,
            dist: DistConfig::default(),
            retry: RetryPolicy::sweep_default(),
            listen: "127.0.0.1:0".into(),
            worker_slow_ms: 0,
        }
    }
}

/// Per-sweep execution report: how the work actually got done. Written to
/// `<run_dir>/dist_report.json`. Deliberately **not** part of the
/// bit-compared results — its counts depend on timing.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct DistReport {
    /// Total sweep points in the matrix.
    pub points: usize,
    /// Points loaded from the journal at startup instead of recomputed.
    pub resumed: usize,
    /// Points completed by remote/connected workers this run.
    pub computed_remote: usize,
    /// Points the coordinator computed itself after worker loss.
    pub computed_solo: usize,
    /// Workers that completed the hello handshake.
    pub workers_joined: usize,
    /// Worker connections lost (EOF or I/O error) before `done`.
    pub workers_lost: usize,
    /// Leases granted (fresh + re-dispatch + speculative).
    pub leases_granted: usize,
    /// Leases expired after missed heartbeats.
    pub leases_expired: usize,
    /// Grants of a point that had been granted before (recovery path).
    pub redispatches: usize,
    /// Speculative straggler re-dispatches.
    pub speculative: usize,
    /// Results received for already-completed points (losers of races).
    pub duplicates: usize,
    /// Duplicates whose bytes differed from the first write — determinism
    /// violations; always 0 unless something is deeply wrong.
    pub divergent: usize,
    /// Injected/real lease-grant failures (`dist_lease_grant` site).
    pub grant_errors: usize,
    /// Injected/real result-persist failures (`dist_result_write` site).
    pub result_write_errors: usize,
    /// Explicit worker-reported point failures.
    pub reported_failures: usize,
    /// Points that exhausted their failure budget.
    pub permanent_failures: usize,
    /// Torn-event-log lines skipped during crash-resume.
    pub resume_warnings: usize,
}

/// Everything a finished distributed run produces.
#[derive(Debug)]
pub struct DistOutcome {
    /// The assembled matrix run — bit-identical to what
    /// [`TransferMatrix::run_resilient`] would produce for the same inputs.
    pub run: MatrixRun,
    /// The execution report (also persisted to `dist_report.json`).
    pub report: DistReport,
}

/// Runs `matrix` distributed across `workers` in-process worker threads
/// plus the coordinator — the `--workers N` local-spawn mode. The matrix is
/// prepared **once** and shared; worker threads speak the same TCP protocol
/// as external worker processes, so every failure path (dropped
/// connections, injected panics, lease expiry) is exercised for real.
///
/// # Errors
///
/// Propagates preparation (training), bind and journal errors. Worker
/// deaths do not error — they are the thing this layer absorbs.
pub fn run_local(
    matrix: &TransferMatrix,
    scale: &ExperimentScale,
    cfg: &DistRunConfig,
    workers: usize,
) -> Result<DistOutcome> {
    let prepared = Arc::new(matrix.prepare(scale, cfg.seed)?);
    let coordinator = Coordinator::bind(&cfg.listen, Arc::clone(&prepared), cfg)?;
    let addr = coordinator.addr().to_string();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let prepared = Arc::clone(&prepared);
            let addr = addr.clone();
            let opts = WorkerOptions {
                id: format!("local-{w}"),
                heartbeat_ms: cfg.dist.heartbeat_ms,
                retry: cfg.retry,
                slow_ms: cfg.worker_slow_ms,
                ..WorkerOptions::default()
            };
            std::thread::spawn(move || run_worker(&addr, &prepared, &opts))
        })
        .collect();
    let outcome = coordinator.run();
    for h in handles {
        // A worker thread that panicked (e.g. an injected `dist_heartbeat`
        // panic) or errored is precisely the fault this layer tolerates —
        // its lease was re-dispatched; nothing to do here.
        let _ = h.join();
    }
    outcome
}
