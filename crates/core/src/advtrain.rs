//! Adversarial training (defence extension).
//!
//! §2.3 of the paper notes twice that "training a model on adversarial
//! samples helps make it more robust against them" (Szegedy et al.;
//! Papernot et al.). This module implements the standard mixed-batch
//! adversarial training loop — each mini-batch is half clean, half
//! adversarial examples generated *against the current model* — so the
//! defence can be composed with the compression pipeline and measured under
//! the same transfer harness.

use crate::{CoreError, Result};
use advcomp_attacks::Attack;
use advcomp_data::{Batches, Dataset};
use advcomp_models::Checkpoint;
use advcomp_nn::{softmax_cross_entropy, LrSchedule, Mode, Sequential, Sgd, StepDecay};
use advcomp_tensor::Tensor;
use std::path::Path;

/// Configuration for adversarial fine-tuning.
#[derive(Debug, Clone)]
pub struct AdvTrainConfig {
    /// Epochs of adversarial fine-tuning.
    pub epochs: usize,
    /// Mini-batch size (clean half; the adversarial half doubles it).
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: StepDecay,
    /// SGD momentum.
    pub momentum: f32,
    /// Fraction of each batch replaced by adversarial examples, in `(0,1]`.
    pub adversarial_fraction: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for AdvTrainConfig {
    fn default() -> Self {
        AdvTrainConfig {
            epochs: 4,
            batch_size: 32,
            schedule: StepDecay::new(0.01, 0.1, vec![3]),
            momentum: 0.9,
            adversarial_fraction: 0.5,
            seed: 0,
        }
    }
}

/// Adversarially fine-tunes `model` on `data`, generating perturbations
/// with `attack` against the evolving model (Goodfellow et al.'s
/// adversarial objective, mixed-batch form).
///
/// Returns the mean training loss of the final epoch.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an empty dataset or a fraction
/// outside `(0, 1]`, and propagates attack/network errors.
pub fn adversarial_finetune(
    model: &mut Sequential,
    data: &Dataset,
    attack: &dyn Attack,
    cfg: &AdvTrainConfig,
) -> Result<f32> {
    if data.is_empty() {
        return Err(CoreError::InvalidConfig("empty training set".into()));
    }
    if !(cfg.adversarial_fraction > 0.0 && cfg.adversarial_fraction <= 1.0) {
        return Err(CoreError::InvalidConfig(format!(
            "adversarial_fraction {} must be in (0, 1]",
            cfg.adversarial_fraction
        )));
    }
    let mut opt = Sgd::new(cfg.schedule.lr_at(0), cfg.momentum, 1e-4)?;
    let mut final_loss = 0.0f32;
    for epoch in 0..cfg.epochs {
        opt.set_lr(cfg.schedule.lr_at(epoch));
        let plan = Batches::shuffled(
            data.len(),
            cfg.batch_size,
            cfg.seed.wrapping_add(epoch as u64),
        );
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for (x, y) in plan.iter(data) {
            // Generate adversarial counterparts for a prefix of the batch
            // against the *current* parameters.
            let n_adv = ((y.len() as f64) * cfg.adversarial_fraction).ceil() as usize;
            let n_adv = n_adv.clamp(1, y.len());
            let clean_prefix = x.narrow(0, n_adv)?;
            let adv_prefix = attack.generate(model, &clean_prefix, &y[..n_adv])?;
            let mixed_x = Tensor::concat0(&[adv_prefix, x.narrow(n_adv, y.len() - n_adv)?])?;
            let logits = model.forward(&mixed_x, Mode::Train)?;
            let loss = softmax_cross_entropy(&logits, &y)?;
            epoch_loss += loss.loss;
            batches += 1;
            model.zero_grad();
            model.backward(&loss.grad)?;
            opt.step(model.params_mut())?;
        }
        final_loss = epoch_loss / batches.max(1) as f32;
    }
    Ok(final_loss)
}

/// Adversarially fine-tunes a clone of `model` and saves the hardened
/// parameters as a checkpoint at `path`, so the serving registry can
/// register it as a variant (`ModelRegistry::load_variant`) alongside the
/// compressed ensemble. Returns the hardened model and the mean training
/// loss of the final epoch.
///
/// # Errors
///
/// As [`adversarial_finetune`], plus [`CoreError::Checkpoint`] if the
/// checkpoint cannot be written.
pub fn finetune_to_checkpoint(
    model: &Sequential,
    data: &Dataset,
    attack: &dyn Attack,
    cfg: &AdvTrainConfig,
    path: &Path,
) -> Result<(Sequential, f32)> {
    let mut hardened = model.clone();
    let loss = adversarial_finetune(&mut hardened, data, attack, cfg)?;
    Checkpoint::capture(&hardened)
        .save(path)
        .map_err(|e| CoreError::Checkpoint(e.to_string()))?;
    Ok((hardened, loss))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::evaluate_model;
    use crate::{ExperimentScale, TaskSetup, TrainedModel};
    use advcomp_attacks::{Ifgsm, NetKind};

    #[test]
    fn hardening_reduces_attack_success() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let trained = TrainedModel::train(&setup, &scale, 6).unwrap();
        // Single-step FGSM-strength adversary: the regime where plain
        // adversarial training reliably helps (multi-step white-box attacks
        // need PGD-style training budgets far beyond a tiny-profile test).
        let attack = Ifgsm::new(0.05, 1).unwrap();
        let (x, y) = setup.test.slice(0, 48).unwrap();

        // Vulnerable baseline.
        let mut plain = trained.instantiate().unwrap();
        let adv = attack.generate(&mut plain, &x, &y).unwrap();
        let logits = plain.forward(&adv, Mode::Eval).unwrap();
        let plain_adv_acc = advcomp_nn::accuracy(&logits, &y).unwrap();

        // Adversarially fine-tuned model: attack it (white-box, fresh
        // samples) and compare.
        let mut hardened = trained.instantiate().unwrap();
        let cfg = AdvTrainConfig {
            epochs: 8,
            schedule: StepDecay::new(0.02, 0.1, vec![6]),
            ..AdvTrainConfig::default()
        };
        adversarial_finetune(&mut hardened, &setup.train, &attack, &cfg).unwrap();
        let clean_acc = evaluate_model(&mut hardened, &setup.test, 64).unwrap();
        let adv2 = attack.generate(&mut hardened, &x, &y).unwrap();
        let logits = hardened.forward(&adv2, Mode::Eval).unwrap();
        let hardened_adv_acc = advcomp_nn::accuracy(&logits, &y).unwrap();

        assert!(
            clean_acc > 0.6,
            "hardening destroyed clean accuracy: {clean_acc}"
        );
        assert!(
            hardened_adv_acc > plain_adv_acc + 0.1,
            "no robustness gained: plain {plain_adv_acc} vs hardened {hardened_adv_acc}"
        );
    }

    /// The hardened checkpoint must restore bit-exactly into a fresh
    /// architecture — that is what lets the serving registry register the
    /// adversarially trained model as an ensemble variant.
    #[test]
    fn hardened_checkpoint_roundtrips() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let trained = TrainedModel::train(&setup, &scale, 3).unwrap();
        let model = trained.instantiate().unwrap();
        let attack = Ifgsm::new(0.05, 1).unwrap();
        let cfg = AdvTrainConfig {
            epochs: 1,
            ..AdvTrainConfig::default()
        };
        let dir =
            std::env::temp_dir().join(format!("advcomp_advtrain_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hardened.advc");
        let (hardened, loss) =
            finetune_to_checkpoint(&model, &setup.train, &attack, &cfg, &path).unwrap();
        assert!(loss.is_finite());
        // The input model is untouched; the artifact restores the hardened
        // parameters exactly.
        assert_eq!(
            model.export_params(),
            trained.instantiate().unwrap().export_params()
        );
        let mut restored = setup.fresh_model(99);
        advcomp_models::Checkpoint::load(&path)
            .unwrap()
            .restore(&mut restored)
            .unwrap();
        assert_eq!(restored.export_params(), hardened.export_params());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_validation() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let mut model = setup.fresh_model(0);
        let attack = Ifgsm::new(0.05, 2).unwrap();
        let empty = setup.train.take(0).unwrap();
        assert!(
            adversarial_finetune(&mut model, &empty, &attack, &AdvTrainConfig::default()).is_err()
        );
        let mut cfg = AdvTrainConfig {
            adversarial_fraction: 0.0,
            ..AdvTrainConfig::default()
        };
        assert!(adversarial_finetune(&mut model, &setup.train, &attack, &cfg).is_err());
        cfg.adversarial_fraction = 1.5;
        assert!(adversarial_finetune(&mut model, &setup.train, &attack, &cfg).is_err());
    }
}
