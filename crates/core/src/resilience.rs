//! Policies and guards that keep long experiment grids alive.
//!
//! Every Figure 2/5 point is an independent train→compress→attack pipeline,
//! and a full grid runs for hours; one panicking worker, one NaN blow-up or
//! one truncated results file used to cost the whole run. This module holds
//! the recovery half of the resilience story (the injection half lives in
//! [`advcomp_nn::faults`]):
//!
//! * [`RetryPolicy`] — how often and how patiently the supervised runner
//!   ([`crate::runner::run_supervised`]) re-attempts a failed or panicked
//!   job before recording it as a [`crate::runner::JobFailure`];
//! * [`HealthPolicy`] / [`train_guarded`] — a numerical-health supervisor
//!   around the epoch loop that detects NaN/Inf losses and divergence and
//!   recovers by rolling the model back to the last good epoch checkpoint
//!   with a reduced learning rate (bounded attempts), instead of letting a
//!   poisoned model surface as a silently-garbage accuracy number.

use crate::{CoreError, Result};
use advcomp_compress::{train_epoch, validate_train_config, TrainConfig, TrainStats};
use advcomp_data::Dataset;
use advcomp_models::Checkpoint;
use advcomp_nn::{health, LrSchedule, NnError, Sequential, Sgd};

/// Retry budget for supervised job execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff between attempts; attempt `n` sleeps `base * 2^(n-1)`.
    pub backoff_ms: u64,
}

impl RetryPolicy {
    /// No retries: every failure is recorded on the first attempt.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_ms: 0,
        }
    }

    /// The default sweep budget: three attempts with a short exponential
    /// backoff. Sweep jobs are deterministic CPU work, so the backoff is
    /// about letting a transiently-starved machine (memory pressure,
    /// co-tenant load) breathe, not about network-style jitter.
    pub fn sweep_default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 50,
        }
    }

    /// Backoff before retry attempt `attempt` (1-based attempt that just
    /// failed); exponential in the number of failures so far.
    pub fn backoff_before(&self, attempt: u32) -> std::time::Duration {
        let factor = 1u64 << attempt.saturating_sub(1).min(10);
        std::time::Duration::from_millis(self.backoff_ms.saturating_mul(factor))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::sweep_default()
    }
}

/// Bounds for the numerical-health supervisor in [`train_guarded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Maximum rollback-and-retry recoveries before giving up.
    pub max_rollbacks: u32,
    /// Learning-rate multiplier applied at each rollback (compounding).
    pub lr_backoff: f32,
    /// An epoch whose mean loss exceeds `divergence_factor ×` the best
    /// mean loss seen so far counts as diverged.
    pub divergence_factor: f32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            max_rollbacks: 3,
            lr_backoff: 0.5,
            // Generous on purpose: epoch-to-epoch noise at tiny scales can
            // double the loss without anything being wrong; a real blow-up
            // overshoots this by orders of magnitude.
            divergence_factor: 10.0,
        }
    }
}

/// What the health supervisor had to do during a training run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrainHealth {
    /// Rollback-and-retry recoveries performed.
    pub rollbacks: u32,
    /// Human-readable log of each incident (also recorded in the
    /// thread-local [`advcomp_nn::health`] sink for sweep metadata).
    pub events: Vec<String>,
}

impl TrainHealth {
    /// `true` when training never needed intervention.
    pub fn clean(&self) -> bool {
        self.rollbacks == 0 && self.events.is_empty()
    }
}

/// Is this error a numerical blow-up the supervisor should absorb (as
/// opposed to a structural bug — shape mismatch, bad label — that rollback
/// cannot fix and must propagate)?
fn is_numerical(err: &advcomp_compress::CompressError) -> bool {
    matches!(
        err,
        advcomp_compress::CompressError::Nn(NnError::NonFinite { .. })
    )
}

/// Trains `model` epoch by epoch under a numerical-health supervisor.
///
/// Healthy runs are **bit-identical** to [`advcomp_compress::train_baseline`]:
/// same optimiser lifetime, same per-epoch learning rate, same shuffle
/// seeds, same epoch body (the shared [`train_epoch`]). The supervisor only
/// acts when an epoch goes bad — a NaN/Inf loss (including one injected at
/// the `train_step` fault site) or a mean loss diverging past
/// [`HealthPolicy::divergence_factor`] × the best epoch so far. Recovery
/// restores the last good end-of-epoch checkpoint, resets the optimiser
/// (stale momentum would re-diverge immediately), scales the learning rate
/// down by [`HealthPolicy::lr_backoff`], and retries the same epoch; after
/// [`HealthPolicy::max_rollbacks`] recoveries it returns
/// [`CoreError::Health`] rather than emitting garbage numbers.
///
/// # Errors
///
/// Returns [`CoreError::Health`] when the rollback budget is exhausted and
/// propagates structural training errors unchanged.
pub fn train_guarded(
    model: &mut Sequential,
    data: &Dataset,
    cfg: &TrainConfig,
    policy: &HealthPolicy,
) -> Result<(TrainStats, TrainHealth)> {
    validate_train_config(cfg, data).map_err(CoreError::Compress)?;
    let mut opt =
        Sgd::new(cfg.schedule.lr_at(0), cfg.momentum, cfg.weight_decay).map_err(CoreError::Nn)?;
    let mut report = TrainHealth::default();
    let mut lr_scale = 1.0f32;
    let mut best_loss = f32::INFINITY;
    let mut last_good = Checkpoint::capture(model);
    let mut final_loss = 0.0f32;
    let mut final_acc = 0.0f64;
    let mut epoch = 0usize;
    while epoch < cfg.epochs {
        opt.set_lr(cfg.schedule.lr_at(epoch) * lr_scale);
        let incident: String = match train_epoch(model, data, cfg, &mut opt, epoch) {
            Ok(stats) if !stats.mean_loss.is_finite() => {
                format!("epoch {epoch}: non-finite mean loss {}", stats.mean_loss)
            }
            Ok(stats)
                if best_loss.is_finite()
                    && stats.mean_loss > policy.divergence_factor * best_loss =>
            {
                format!(
                    "epoch {epoch}: loss diverged to {} (best was {best_loss})",
                    stats.mean_loss
                )
            }
            Ok(stats) => {
                final_loss = stats.mean_loss;
                final_acc = stats.train_accuracy;
                best_loss = best_loss.min(stats.mean_loss);
                last_good = Checkpoint::capture(model);
                epoch += 1;
                continue;
            }
            Err(e) if is_numerical(&e) => format!("epoch {epoch}: {e}"),
            Err(e) => return Err(CoreError::Compress(e)),
        };
        report.rollbacks += 1;
        if report.rollbacks > policy.max_rollbacks {
            return Err(CoreError::Health(format!(
                "{incident}; rollback budget ({}) exhausted",
                policy.max_rollbacks
            )));
        }
        last_good
            .restore(model)
            .map_err(|e| CoreError::Checkpoint(e.to_string()))?;
        lr_scale *= policy.lr_backoff;
        opt = Sgd::new(
            cfg.schedule.lr_at(epoch) * lr_scale,
            cfg.momentum,
            cfg.weight_decay,
        )
        .map_err(CoreError::Nn)?;
        let detail =
            format!("{incident}; rolled back to last good checkpoint, lr scaled to {lr_scale}");
        health::record("train", detail.clone());
        report.events.push(detail);
    }
    Ok((
        TrainStats {
            final_loss,
            final_train_accuracy: final_acc,
            epochs: cfg.epochs,
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_compress::train_baseline;
    use advcomp_data::{DatasetConfig, SynthDigits};
    use advcomp_nn::faults::{install, FaultKind, FaultSpec};
    use advcomp_nn::{Dense, Flatten, Relu, StepDecay};
    use rand::SeedableRng;

    fn small_mlp() -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        Sequential::new(vec![
            Box::new(Flatten::new()),
            Box::new(Dense::with_name("fc1", 28 * 28, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::with_name("fc2", 16, 10, &mut rng)),
        ])
    }

    fn digits() -> Dataset {
        SynthDigits::generate(&DatasetConfig {
            train: 160,
            test: 40,
            seed: 7,
            noise: 0.05,
        })
        .0
    }

    fn cfg(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 32,
            schedule: StepDecay::new(0.05, 0.1, vec![epochs.max(2) - 1]),
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 3,
        }
    }

    #[test]
    fn healthy_run_matches_train_baseline_bitwise() {
        let data = digits();
        let mut plain = small_mlp();
        let plain_stats = train_baseline(&mut plain, &data, &cfg(3)).unwrap();
        let mut guarded = small_mlp();
        let (stats, hea) =
            train_guarded(&mut guarded, &data, &cfg(3), &HealthPolicy::default()).unwrap();
        assert!(hea.clean());
        assert_eq!(stats.final_loss.to_bits(), plain_stats.final_loss.to_bits());
        assert_eq!(
            plain.param("fc1.weight").unwrap().value.data(),
            guarded.param("fc1.weight").unwrap().value.data()
        );
    }

    #[test]
    fn injected_nan_rolls_back_and_recovers() {
        let data = digits();
        // Epoch 1, batch 2 (the 7th train_step overall at 5 batches/epoch).
        let _g = install(vec![FaultSpec::once(FaultKind::Nan, "train_step", 6)]);
        let mut model = small_mlp();
        let ((result, hea), events) = advcomp_nn::health::scope(|| {
            let (stats, hea) =
                train_guarded(&mut model, &data, &cfg(3), &HealthPolicy::default()).unwrap();
            (stats, hea)
        });
        assert_eq!(hea.rollbacks, 1);
        assert!(hea.events[0].contains("non-finite"), "{:?}", hea.events);
        assert_eq!(events.len(), 1, "sink: {events:?}");
        assert!(result.final_loss.is_finite());
        assert!(!model.param("fc1.weight").unwrap().value.has_non_finite());
    }

    #[test]
    fn sticky_nan_exhausts_rollback_budget() {
        let data = digits();
        let _g = install(vec![FaultSpec::sticky(FaultKind::Nan, "train_step", 0)]);
        let mut model = small_mlp();
        let err = train_guarded(&mut model, &data, &cfg(2), &HealthPolicy::default()).unwrap_err();
        match err {
            CoreError::Health(msg) => assert!(msg.contains("budget"), "{msg}"),
            other => panic!("expected Health error, got {other:?}"),
        }
    }

    #[test]
    fn retry_policy_backoff_is_exponential() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff_ms: 10,
        };
        assert_eq!(p.backoff_before(1).as_millis(), 10);
        assert_eq!(p.backoff_before(2).as_millis(), 20);
        assert_eq!(p.backoff_before(3).as_millis(), 40);
        assert_eq!(RetryPolicy::none().backoff_before(1).as_millis(), 0);
    }
}
