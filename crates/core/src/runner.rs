//! Bounded parallel execution of independent experiment jobs.
//!
//! Two execution modes share the same worker-pool shape:
//!
//! * [`run_parallel`] — fail fast. A panicking job propagates out of the
//!   scope and aborts everything; right for tests and short diagnostics
//!   where an experiment bug should never be silently dropped.
//! * [`run_supervised`] — degrade gracefully. Each job runs under
//!   `catch_unwind` with a retry budget; a job that keeps failing becomes a
//!   [`JobFailure`] in its slot while every other slot still completes.
//!   This is what sweeps use: one bad point on a Figure 2 curve must not
//!   discard the hours of work behind the other points.

use crate::resilience::RetryPolicy;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `jobs` across at most `max_workers` threads, preserving result
/// order. Each sweep point in Figures 2 and 5 is an independent
/// train-compress-attack pipeline, so this is embarrassingly parallel; the
/// worker cap keeps the matmul threads from oversubscribing the machine.
///
/// A job that panics poisons nothing: its slot is reported via the panic
/// propagating out of the scope (fail fast — an experiment bug should never
/// be silently dropped).
pub fn run_parallel<T, F>(jobs: Vec<F>, max_workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_workers.max(1).min(n);
    if workers == 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let queue: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = queue[i].lock().take().expect("each job taken once");
                *slots[i].lock() = Some(job());
            });
        }
    })
    .expect("experiment worker panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled"))
        .collect()
}

/// Terminal failure of one supervised job: what went wrong on the last
/// attempt, and how many attempts were spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Error (or panic) message from the final attempt.
    pub error: String,
    /// `true` when the final attempt panicked rather than returning `Err`.
    pub panicked: bool,
    /// Attempts consumed (= the retry policy's `max_attempts` on failure).
    pub attempts: u32,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after {} attempt{} ({})",
            if self.panicked { "panicked" } else { "failed" },
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.error
        )
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one job to completion under the retry budget.
fn supervise<T, F>(job: &F, retry: &RetryPolicy) -> Result<(T, u32), JobFailure>
where
    F: Fn() -> crate::Result<T>,
{
    let budget = retry.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let (error, panicked) = match catch_unwind(AssertUnwindSafe(job)) {
            Ok(Ok(value)) => return Ok((value, attempt)),
            Ok(Err(e)) => (e.to_string(), false),
            Err(payload) => (panic_message(payload), true),
        };
        if attempt >= budget {
            return Err(JobFailure {
                error,
                panicked,
                attempts: attempt,
            });
        }
        std::thread::sleep(retry.backoff_before(attempt));
    }
}

/// One result slot of [`run_supervised`]: `(value, attempts_used)` on
/// success, the recorded [`JobFailure`] otherwise.
pub type SupervisedSlot<T> = Result<(T, u32), JobFailure>;

/// Supervised variant of [`run_parallel`]: runs `jobs` across at most
/// `max_workers` threads, preserving slot order, catching per-job panics
/// and retrying failures up to `retry.max_attempts` with exponential
/// backoff. A successful slot carries `(value, attempts_used)`; a job that
/// exhausts its budget yields `Err(JobFailure)` in its slot while every
/// other job still runs to completion — a sweep degrades to partial
/// results instead of dying.
///
/// Jobs are `Fn` (not `FnOnce`) because a retry re-invokes the same
/// closure; sweep jobs are pure functions of their captured configuration,
/// so re-running one is safe by construction.
pub fn run_supervised<T, F>(
    jobs: Vec<F>,
    max_workers: usize,
    retry: &RetryPolicy,
) -> Vec<SupervisedSlot<T>>
where
    T: Send,
    F: Fn() -> crate::Result<T> + Send + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_workers.max(1).min(n);
    if workers == 1 {
        return jobs.iter().map(|j| supervise(j, retry)).collect();
    }
    let slots: Vec<Mutex<Option<SupervisedSlot<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock() = Some(supervise(&jobs[i], retry));
            });
        }
    })
    // Unreachable in practice: job panics are caught inside `supervise`.
    .expect("supervised worker infrastructure panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<_> = (0..20).map(|i| move || i * 2).collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = run_parallel(Vec::<fn() -> i32>::new(), 4);
        assert!(out.is_empty());
        let out = run_parallel(vec![|| 7], 4);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn serial_path_when_one_worker() {
        let jobs: Vec<_> = (0..5).map(|i| move || i).collect();
        assert_eq!(run_parallel(jobs, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn actually_parallel() {
        use std::time::{Duration, Instant};
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                || {
                    std::thread::sleep(Duration::from_millis(50));
                    1
                }
            })
            .collect();
        let start = Instant::now();
        let out = run_parallel(jobs, 4);
        assert_eq!(out.iter().sum::<i32>(), 4);
        assert!(
            start.elapsed() < Duration::from_millis(180),
            "jobs appear to have run serially"
        );
    }

    #[test]
    fn supervised_isolates_a_panicking_job() {
        let jobs: Vec<Box<dyn Fn() -> crate::Result<i32> + Send + Sync>> = vec![
            Box::new(|| Ok(1)),
            Box::new(|| panic!("boom at point 1")),
            Box::new(|| Ok(3)),
        ];
        let out = run_supervised(jobs, 2, &RetryPolicy::none());
        assert_eq!(out[0], Ok((1, 1)));
        assert_eq!(out[2], Ok((3, 1)));
        let failure = out[1].as_ref().unwrap_err();
        assert!(failure.panicked);
        assert_eq!(failure.attempts, 1);
        assert!(failure.error.contains("boom at point 1"));
    }

    #[test]
    fn supervised_retries_until_success() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let jobs = vec![|| {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(crate::CoreError::InvalidConfig("transient".into()))
            } else {
                Ok(42)
            }
        }];
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff_ms: 0,
        };
        let out = run_supervised(jobs, 1, &retry);
        assert_eq!(out, vec![Ok((42, 3))]);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn supervised_exhausts_retry_budget() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let jobs = vec![|| -> crate::Result<i32> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(crate::CoreError::InvalidConfig("permanent".into()))
        }];
        let retry = RetryPolicy {
            max_attempts: 3,
            backoff_ms: 0,
        };
        let out = run_supervised(jobs, 1, &retry);
        let failure = out[0].as_ref().unwrap_err();
        assert!(!failure.panicked);
        assert_eq!(failure.attempts, 3);
        assert!(failure.error.contains("permanent"));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn supervised_preserves_order_across_workers() {
        let jobs: Vec<_> = (0..12).map(|i| move || Ok(i * i)).collect();
        let out = run_supervised(jobs, 4, &RetryPolicy::none());
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r, Ok(((i * i) as i32, 1)));
        }
    }

    #[test]
    fn supervised_empty_input() {
        let out: Vec<Result<(i32, u32), JobFailure>> = run_supervised(
            Vec::<fn() -> crate::Result<i32>>::new(),
            4,
            &RetryPolicy::none(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn job_failure_display() {
        let f = JobFailure {
            error: "x".into(),
            panicked: true,
            attempts: 2,
        };
        assert_eq!(f.to_string(), "panicked after 2 attempts (x)");
    }
}
