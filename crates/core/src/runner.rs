//! Bounded parallel execution of independent experiment jobs.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `jobs` across at most `max_workers` threads, preserving result
/// order. Each sweep point in Figures 2 and 5 is an independent
/// train-compress-attack pipeline, so this is embarrassingly parallel; the
/// worker cap keeps the matmul threads from oversubscribing the machine.
///
/// A job that panics poisons nothing: its slot is reported via the panic
/// propagating out of the scope (fail fast — an experiment bug should never
/// be silently dropped).
pub fn run_parallel<T, F>(jobs: Vec<F>, max_workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_workers.max(1).min(n);
    if workers == 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let queue: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = queue[i].lock().take().expect("each job taken once");
                *slots[i].lock() = Some(job());
            });
        }
    })
    .expect("experiment worker panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<_> = (0..20).map(|i| move || i * 2).collect();
        let out = run_parallel(jobs, 4);
        assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = run_parallel(Vec::<fn() -> i32>::new(), 4);
        assert!(out.is_empty());
        let out = run_parallel(vec![|| 7], 4);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn serial_path_when_one_worker() {
        let jobs: Vec<_> = (0..5).map(|i| move || i).collect();
        assert_eq!(run_parallel(jobs, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn actually_parallel() {
        use std::time::{Duration, Instant};
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                || {
                    std::thread::sleep(Duration::from_millis(50));
                    1
                }
            })
            .collect();
        let start = Instant::now();
        let out = run_parallel(jobs, 4);
        assert_eq!(out.iter().sum::<i32>(), 4);
        assert!(
            start.elapsed() < Duration::from_millis(180),
            "jobs appear to have run serially"
        );
    }
}
