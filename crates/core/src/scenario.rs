//! The three-scenario attack taxonomy (§3.1) and transfer evaluation.

use crate::Result;
use advcomp_attacks::{Attack, PlannedEval};
use advcomp_nn::Sequential;
use advcomp_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The paper's compression-aware attack scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Scenario 1: samples generated on a compressed model, applied to the
    /// same compressed model ("attackers buy products and figure out how to
    /// attack them").
    CompToComp,
    /// Scenario 2: samples generated on the baseline, applied to compressed
    /// models (public model → proprietary edge derivatives).
    FullToComp,
    /// Scenario 3: samples generated on a compressed model, applied to the
    /// hidden baseline (edge device → vendor's master model).
    CompToFull,
}

impl Scenario {
    /// All scenarios, in the paper's numbering order.
    pub const ALL: [Scenario; 3] = [
        Scenario::CompToComp,
        Scenario::FullToComp,
        Scenario::CompToFull,
    ];

    /// Stable identifier used in CSV columns.
    pub fn id(&self) -> &'static str {
        match self {
            Scenario::CompToComp => "comp_to_comp",
            Scenario::FullToComp => "full_to_comp",
            Scenario::CompToFull => "comp_to_full",
        }
    }

    /// The paper's scenario number (1-based).
    pub fn number(&self) -> usize {
        match self {
            Scenario::CompToComp => 1,
            Scenario::FullToComp => 2,
            Scenario::CompToFull => 3,
        }
    }
}

/// Per-sample shape of a batched input (batch axis stripped).
fn sample_shape(x: &Tensor) -> &[usize] {
    x.shape().get(1..).unwrap_or(&[])
}

/// Outcome of one transfer evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// Accuracy of the target model on the adversarial samples (the paper's
    /// vertical axes in Figures 2 and 5 — lower = more transferable).
    pub adversarial_accuracy: f64,
    /// Accuracy of the target model on the clean samples, for reference.
    pub clean_accuracy: f64,
    /// Mean L2 norm of the applied perturbations.
    pub mean_l2: f64,
}

/// Generates adversarial samples on `source` and measures `target`'s
/// accuracy on them.
///
/// With `source == target` conceptually (same weights), this is the
/// white-box Scenario 1; with source = baseline and target = compressed it
/// is Scenario 2; the reverse is Scenario 3.
///
/// # Errors
///
/// Propagates attack and network errors.
pub fn attack_transfer(
    source: &mut Sequential,
    target: &mut Sequential,
    attack: &dyn Attack,
    x: &Tensor,
    labels: &[usize],
) -> Result<TransferOutcome> {
    // Measurement forwards run through the compiled plan (bit-identical
    // to Sequential eval, see graph_parity); crafting keeps the layer
    // path for gradients.
    let mut eval = PlannedEval::compile(target, sample_shape(x));
    let clean_accuracy = eval.accuracy(target, x, labels)?;
    let adv = attack.generate(source, x, labels)?;
    let adversarial_accuracy = eval.accuracy(target, &adv, labels)?;
    let stats = advcomp_attacks::PerturbationStats::between(x, &adv)?;
    Ok(TransferOutcome {
        adversarial_accuracy,
        clean_accuracy,
        mean_l2: stats.l2,
    })
}

/// Result of the §3.3 cross-seed transferability check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossSeedTransfer {
    /// Fraction of samples that fooled the source model.
    pub source_fool_rate: f64,
    /// Fraction of *those* samples that also fool the independently-trained
    /// target — the paper reports ≈7% for LeNet5 and ≈60% for CifarNet.
    pub transfer_rate: f64,
}

/// Measures how many adversarial samples crafted on `source` transfer to an
/// independently-initialised `target` trained on the same task (§3.3's
/// DeepFool sanity check).
///
/// # Errors
///
/// Propagates attack and network errors.
pub fn cross_seed_transfer(
    source: &mut Sequential,
    target: &mut Sequential,
    attack: &dyn Attack,
    x: &Tensor,
    labels: &[usize],
) -> Result<CrossSeedTransfer> {
    let adv = attack.generate(source, x, labels)?;
    let src_preds = PlannedEval::compile(source, sample_shape(x)).predictions(source, &adv)?;
    let tgt_preds = PlannedEval::compile(target, sample_shape(x)).predictions(target, &adv)?;
    let mut fooled_src = 0usize;
    let mut fooled_both = 0usize;
    for i in 0..labels.len() {
        if src_preds[i] != labels[i] {
            fooled_src += 1;
            if tgt_preds[i] != labels[i] {
                fooled_both += 1;
            }
        }
    }
    Ok(CrossSeedTransfer {
        source_fool_rate: fooled_src as f64 / labels.len().max(1) as f64,
        transfer_rate: if fooled_src == 0 {
            0.0
        } else {
            fooled_both as f64 / fooled_src as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentScale, TaskSetup, TrainedModel};
    use advcomp_attacks::{Ifgsm, NetKind};

    #[test]
    fn scenario_metadata() {
        assert_eq!(Scenario::CompToComp.number(), 1);
        assert_eq!(Scenario::FullToComp.number(), 2);
        assert_eq!(Scenario::CompToFull.number(), 3);
        assert_eq!(Scenario::ALL.len(), 3);
        assert_eq!(Scenario::CompToFull.id(), "comp_to_full");
    }

    #[test]
    fn white_box_transfer_degrades_accuracy() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let trained = TrainedModel::train(&setup, &scale, 5).unwrap();
        let mut model = trained.instantiate().unwrap();
        let mut target = trained.instantiate().unwrap();
        let (x, y) = setup.test.slice(0, 48).unwrap();
        let attack = Ifgsm::new(0.05, 8).unwrap();
        let out = attack_transfer(&mut model, &mut target, &attack, &x, &y).unwrap();
        assert!(out.clean_accuracy > 0.7);
        assert!(
            out.adversarial_accuracy < out.clean_accuracy - 0.2,
            "white-box attack ineffective: {} -> {}",
            out.clean_accuracy,
            out.adversarial_accuracy
        );
        assert!(out.mean_l2 > 0.0);
    }

    #[test]
    fn cross_seed_transfer_in_unit_range() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let a = TrainedModel::train(&setup, &scale, 1).unwrap();
        let b = TrainedModel::train(&setup, &scale, 2).unwrap();
        let mut ma = a.instantiate().unwrap();
        let mut mb = b.instantiate().unwrap();
        let (x, y) = setup.test.slice(0, 32).unwrap();
        let attack = Ifgsm::new(0.05, 8).unwrap();
        let ct = cross_seed_transfer(&mut ma, &mut mb, &attack, &x, &y).unwrap();
        assert!((0.0..=1.0).contains(&ct.source_fool_rate));
        assert!((0.0..=1.0).contains(&ct.transfer_rate));
        assert!(ct.source_fool_rate > 0.1, "source barely fooled");
    }
}
