//! Experiment scaling profiles.

use serde::{Deserialize, Serialize};

/// Knobs scaling every experiment between a CPU-quick profile and the full
/// paper-shaped profile.
///
/// The paper trained LeNet5 for 350 epochs and CifarNet for 300 on GPUs;
/// on a pure-CPU substrate we keep the *shape* of every run (same schedule
/// family, same relative model widths, same attack parameters) and shrink
/// the sizes. `ADVCOMP_SCALE=paper` selects the larger profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Width multiplier for LeNet5.
    pub lenet5_width: f32,
    /// Width multiplier for CifarNet.
    pub cifarnet_width: f32,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
    /// Samples attacked per transfer evaluation (gradient attacks).
    pub attack_eval: usize,
    /// Samples attacked per DeepFool evaluation (it is per-sample iterative
    /// and far more expensive).
    pub deepfool_eval: usize,
    /// Epochs for baseline training.
    pub baseline_epochs: usize,
    /// Epochs for post-compression fine-tuning.
    pub finetune_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Pixel-noise level of the digit task.
    pub digits_noise: f32,
    /// Pixel-noise level of the object task.
    pub objects_noise: f32,
    /// Maximum parallel sweep points (0 = auto).
    pub max_workers: usize,
}

impl ExperimentScale {
    /// Minutes-scale profile: narrow models, small synthetic sets. The
    /// default for tests and examples.
    pub fn quick() -> Self {
        ExperimentScale {
            lenet5_width: 0.5,
            cifarnet_width: 0.5,
            train_size: 1200,
            test_size: 400,
            attack_eval: 96,
            deepfool_eval: 32,
            baseline_epochs: 10,
            finetune_epochs: 4,
            batch_size: 32,
            digits_noise: 0.05,
            objects_noise: 0.10,
            max_workers: 0,
        }
    }

    /// Hours-scale profile: full-width models, larger sets, longer
    /// schedules. Shapes match the paper's setup (width 1.0, three-decay
    /// schedule); sizes remain CPU-feasible.
    pub fn paper() -> Self {
        ExperimentScale {
            lenet5_width: 1.0,
            cifarnet_width: 1.0,
            train_size: 4096,
            test_size: 1024,
            attack_eval: 256,
            deepfool_eval: 64,
            baseline_epochs: 20,
            finetune_epochs: 8,
            batch_size: 32,
            digits_noise: 0.05,
            objects_noise: 0.10,
            max_workers: 0,
        }
    }

    /// Seconds-scale profile for unit/integration tests.
    pub fn tiny() -> Self {
        ExperimentScale {
            lenet5_width: 0.5,
            cifarnet_width: 0.35,
            train_size: 400,
            test_size: 160,
            attack_eval: 48,
            deepfool_eval: 12,
            // 8 epochs: enough for >0.95 baseline accuracy on the synthetic
            // digits regardless of which rand backend seeds the init (6 was
            // marginal under some init streams).
            baseline_epochs: 8,
            finetune_epochs: 2,
            batch_size: 32,
            digits_noise: 0.05,
            objects_noise: 0.10,
            max_workers: 0,
        }
    }

    /// Reads `ADVCOMP_SCALE` (`tiny`, `quick`, `paper`); defaults to
    /// [`ExperimentScale::quick`] when unset or unrecognised.
    pub fn from_env() -> Self {
        match std::env::var("ADVCOMP_SCALE").as_deref() {
            Ok("paper") => Self::paper(),
            Ok("tiny") => Self::tiny(),
            _ => Self::quick(),
        }
    }

    /// Resolved worker count for parallel sweeps.
    pub fn workers(&self) -> usize {
        if self.max_workers > 0 {
            return self.max_workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8)
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_ordered_by_cost() {
        let t = ExperimentScale::tiny();
        let q = ExperimentScale::quick();
        let p = ExperimentScale::paper();
        assert!(t.train_size < q.train_size && q.train_size < p.train_size);
        assert!(t.baseline_epochs <= q.baseline_epochs && q.baseline_epochs < p.baseline_epochs);
        assert!(p.lenet5_width >= q.lenet5_width);
    }

    #[test]
    fn workers_positive() {
        assert!(ExperimentScale::quick().workers() >= 1);
        let mut s = ExperimentScale::tiny();
        s.max_workers = 3;
        assert_eq!(s.workers(), 3);
    }

    #[test]
    fn default_is_quick() {
        assert_eq!(ExperimentScale::default(), ExperimentScale::quick());
    }
}
