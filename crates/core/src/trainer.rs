//! Task setup and baseline-model training.

use crate::resilience::{train_guarded, HealthPolicy, TrainHealth};
use crate::scale::ExperimentScale;
use crate::{CoreError, Result};
use advcomp_attacks::NetKind;
use advcomp_compress::TrainConfig;
use advcomp_data::{Batches, Dataset, DatasetConfig, SynthDigits, SynthObjects};
use advcomp_models::{cifarnet, lenet5, Checkpoint};
use advcomp_nn::{accuracy, Mode, Sequential, StepDecay};

/// A network kind bound to its train/test data at a given scale.
#[derive(Debug)]
pub struct TaskSetup {
    /// Which reference network this task trains.
    pub net: NetKind,
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
    width: f32,
}

impl TaskSetup {
    /// Builds the task for `net` at `scale` (synthetic data; deterministic).
    pub fn new(net: NetKind, scale: &ExperimentScale) -> Self {
        let (train, test, width) = match net {
            NetKind::LeNet5 => {
                let cfg = DatasetConfig {
                    train: scale.train_size,
                    test: scale.test_size,
                    seed: 100,
                    noise: scale.digits_noise,
                };
                let (tr, te) = SynthDigits::generate(&cfg);
                (tr, te, scale.lenet5_width)
            }
            NetKind::CifarNet => {
                let cfg = DatasetConfig {
                    train: scale.train_size,
                    test: scale.test_size,
                    seed: 200,
                    noise: scale.objects_noise,
                };
                let (tr, te) = SynthObjects::generate(&cfg);
                (tr, te, scale.cifarnet_width)
            }
        };
        TaskSetup {
            net,
            train,
            test,
            width,
        }
    }

    /// Instantiates an untrained network of this task's architecture.
    pub fn fresh_model(&self, seed: u64) -> Sequential {
        match self.net {
            NetKind::LeNet5 => lenet5(self.width, seed),
            NetKind::CifarNet => cifarnet(self.width, seed),
        }
    }

    /// The paper-shaped fine-tuning config at this scale.
    pub fn finetune_config(&self, scale: &ExperimentScale) -> TrainConfig {
        TrainConfig {
            epochs: scale.finetune_epochs,
            batch_size: scale.batch_size,
            // Fine-tuning starts one decade below the initial rate, as the
            // paper's retraining schedule effectively does.
            schedule: StepDecay::new(0.005, 0.1, vec![scale.finetune_epochs.max(2) - 1]),
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 1,
        }
    }
}

/// A trained baseline model plus everything needed to clone it: fresh
/// instances are rebuilt from the architecture and a parameter checkpoint,
/// so sweep workers can each own an independent copy.
#[derive(Debug)]
pub struct TrainedModel {
    /// Which network this is.
    pub net: NetKind,
    /// Held-out test accuracy after training.
    pub test_accuracy: f64,
    /// Mean training loss over the final epoch (the paper's §4.1 argument
    /// keys off how small this is for LeNet5).
    pub final_loss: f32,
    /// What the numerical-health supervisor had to do (empty on a clean
    /// run; rollback/LR-reduction incidents otherwise).
    pub health: TrainHealth,
    width: f32,
    init_seed: u64,
    checkpoint: Checkpoint,
}

impl TrainedModel {
    /// Trains a fresh model for `setup` and captures it, under the default
    /// numerical-health supervisor (see [`TrainedModel::train_with_health`]).
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn train(setup: &TaskSetup, scale: &ExperimentScale, seed: u64) -> Result<Self> {
        Self::train_with_health(setup, scale, seed, &HealthPolicy::default())
    }

    /// [`TrainedModel::train`] with an explicit [`HealthPolicy`]. A healthy
    /// run produces bit-identical weights to the unguarded baseline loop;
    /// NaN/Inf or divergent epochs roll back to the last good checkpoint
    /// with a reduced learning rate and are reported in
    /// [`TrainedModel::health`].
    ///
    /// # Errors
    ///
    /// Propagates training errors; returns [`CoreError::Health`] when the
    /// supervisor's rollback budget is exhausted.
    pub fn train_with_health(
        setup: &TaskSetup,
        scale: &ExperimentScale,
        seed: u64,
        policy: &HealthPolicy,
    ) -> Result<Self> {
        let mut model = setup.fresh_model(seed);
        let cfg = TrainConfig {
            epochs: scale.baseline_epochs,
            batch_size: scale.batch_size,
            schedule: StepDecay::new(
                match setup.net {
                    // Narrow CPU-scale models tolerate (and need) a hotter
                    // start than the paper's 0.01 to converge in few epochs.
                    NetKind::LeNet5 => 0.05,
                    NetKind::CifarNet => 0.02,
                },
                0.1,
                vec![scale.baseline_epochs * 2 / 4, scale.baseline_epochs * 3 / 4],
            ),
            momentum: 0.9,
            weight_decay: 1e-4,
            seed,
        };
        let (stats, health) = train_guarded(&mut model, &setup.train, &cfg, policy)?;
        let test_accuracy = evaluate_model(&mut model, &setup.test, scale.batch_size)?;
        Ok(TrainedModel {
            net: setup.net,
            test_accuracy,
            final_loss: stats.final_loss,
            health,
            width: setup_width(setup),
            init_seed: seed,
            checkpoint: Checkpoint::capture(&model),
        })
    }

    /// Convenience: build the LeNet5 task and train it.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn train_lenet5(scale: &ExperimentScale, seed: u64) -> Result<Self> {
        let setup = TaskSetup::new(NetKind::LeNet5, scale);
        Self::train(&setup, scale, seed)
    }

    /// Convenience: build the CifarNet task and train it.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn train_cifarnet(scale: &ExperimentScale, seed: u64) -> Result<Self> {
        let setup = TaskSetup::new(NetKind::CifarNet, scale);
        Self::train(&setup, scale, seed)
    }

    /// Instantiates an independent copy of the trained network.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] if restoration fails (indicating an
    /// architecture drift bug).
    pub fn instantiate(&self) -> Result<Sequential> {
        let mut model = match self.net {
            NetKind::LeNet5 => lenet5(self.width, self.init_seed),
            NetKind::CifarNet => cifarnet(self.width, self.init_seed),
        };
        self.checkpoint
            .restore(&mut model)
            .map_err(|e| CoreError::Checkpoint(e.to_string()))?;
        Ok(model)
    }

    /// The captured parameter checkpoint.
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }
}

fn setup_width(setup: &TaskSetup) -> f32 {
    setup.width
}

/// Test accuracy of `model` over `data`, batched.
///
/// # Errors
///
/// Propagates network errors.
pub fn evaluate_model(model: &mut Sequential, data: &Dataset, batch_size: usize) -> Result<f64> {
    if data.is_empty() {
        return Ok(0.0);
    }
    let plan = Batches::sequential(data.len(), batch_size.max(1));
    let mut correct = 0.0f64;
    for (x, y) in plan.iter(data) {
        let logits = model.forward(&x, Mode::Eval)?;
        correct += accuracy(&logits, &y)? * y.len() as f64;
    }
    Ok(correct / data.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet5_learns_digits_at_tiny_scale() {
        let scale = ExperimentScale::tiny();
        let trained = TrainedModel::train_lenet5(&scale, 42).unwrap();
        assert!(
            trained.test_accuracy > 0.8,
            "LeNet5 tiny accuracy {}",
            trained.test_accuracy
        );
    }

    #[test]
    fn instantiate_reproduces_accuracy() {
        let scale = ExperimentScale::tiny();
        let setup = TaskSetup::new(NetKind::LeNet5, &scale);
        let trained = TrainedModel::train(&setup, &scale, 1).unwrap();
        let mut copy = trained.instantiate().unwrap();
        let acc = evaluate_model(&mut copy, &setup.test, 64).unwrap();
        assert!((acc - trained.test_accuracy).abs() < 1e-9);
    }

    #[test]
    fn copies_are_independent() {
        let scale = ExperimentScale::tiny();
        let trained = TrainedModel::train_lenet5(&scale, 2).unwrap();
        let mut a = trained.instantiate().unwrap();
        let b = trained.instantiate().unwrap();
        a.param_mut("fc3.weight").unwrap().value.data_mut()[0] = 999.0;
        assert_ne!(
            a.param("fc3.weight").unwrap().value.data()[0],
            b.param("fc3.weight").unwrap().value.data()[0]
        );
    }

    #[test]
    fn setup_is_deterministic() {
        let scale = ExperimentScale::tiny();
        let a = TaskSetup::new(NetKind::CifarNet, &scale);
        let b = TaskSetup::new(NetKind::CifarNet, &scale);
        assert_eq!(a.train.images().data(), b.train.images().data());
    }
}
