//! The paper's contribution: a compression-aware adversarial-attack
//! taxonomy and the transfer-evaluation harness built on it.
//!
//! §3.1 of the paper defines three attack scenarios over a *baseline*
//! (dense, float32) model and its compressed derivatives:
//!
//! * **Scenario 1 (`Comp→Comp`)** — adversarial samples generated on each
//!   compressed model and applied to the same model (white-box on the
//!   deployed artefact);
//! * **Scenario 2 (`Full→Comp`)** — samples generated on the baseline,
//!   applied to each compressed model (public model → proprietary edge
//!   derivative);
//! * **Scenario 3 (`Comp→Full`)** — samples generated on a compressed
//!   model, applied to the hidden baseline (edge device → vendor's master
//!   model).
//!
//! [`scenario`] implements the taxonomy, [`sweep`] the density/bitwidth
//! sweeps behind Figures 2–5, [`cdf`] the weight/activation CDFs of
//! Figure 6, and [`report`] the CSV/Markdown outputs. [`ExperimentScale`]
//! scales every experiment between a CPU-friendly `quick` profile and the
//! full `paper` profile.

pub mod advtrain;
pub mod blackbox;
pub mod cdf;
mod compression;
pub mod dist;
mod error;
pub mod journal;
mod minijson;
pub mod plot;
pub mod report;
pub mod resilience;
mod runner;
mod scale;
pub mod scenario;
pub mod sweep;
mod trainer;

pub use compression::Compression;
pub use error::CoreError;
pub use resilience::{HealthPolicy, RetryPolicy, TrainHealth};
pub use runner::{run_parallel, run_supervised, JobFailure};
pub use scale::ExperimentScale;
pub use trainer::{evaluate_model, TaskSetup, TrainedModel};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
