//! Checkpoint/resume journal for sweep runs.
//!
//! A full Figure 2/5 grid at paper scale runs for hours; losing it to a
//! crash at point 17 of 20 used to mean recomputing all 20. The journal
//! persists each sweep point to its own file **as soon as it completes**,
//! keyed by a content hash of everything that determines the point's value
//! (network, attack list, compression recipe, sweep coordinate, seed and
//! the full [`ExperimentScale`]). A re-run with the same configuration
//! loads finished points instead of recomputing them; a re-run with *any*
//! config change hashes to different keys and recomputes honestly.
//!
//! Two properties carry the design:
//!
//! * **Bit-exact resume.** `f64` values are written with Rust's
//!   shortest-round-trip `{:?}` formatting and re-parsed with
//!   `str::parse::<f64>` directly from the raw token (the same policy as
//!   the golden-vector format), so a resumed sweep's final report is
//!   byte-identical to an uninterrupted one.
//! * **Crash-safe writes.** Entries are written to a `.tmp` sibling and
//!   atomically renamed into place; a crash mid-write leaves at worst a
//!   stale temp file, never a truncated entry that would poison resume.
//!
//! The workspace's `serde` is stubbed in offline containers (serialize
//! only), so the reader is the crate's hand-rolled JSON parser
//! ([`crate::minijson`]) specialised to keep numbers as raw tokens.
//!
//! Besides the per-point files, a run directory carries an append-only
//! [`EventLog`] (`events.log`, one JSON object per line) used by the
//! distributed coordinator to record lifecycle events and restore its
//! counters across a crash. Unlike point files, event appends are *not*
//! atomic — a crash mid-append leaves a torn final line, which
//! [`EventLog::open`] tolerates by design (skip + warn + truncate) rather
//! than failing the whole resume.

use crate::minijson::{self as mini, quote};
use crate::scale::ExperimentScale;
use crate::{CoreError, Result};
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Content-hash key for one sweep point: 16 hex digits of FNV-1a 64 over a
/// canonical description of everything that determines the point's value.
/// `attacks` must be in evaluation order — the scenario triples stored
/// under the key are indexed by that order.
pub fn point_key(
    net: &str,
    attacks: &[&str],
    x: f64,
    recipe: &str,
    seed: u64,
    scale: &ExperimentScale,
) -> String {
    let canonical = format!(
        "v1|net={net}|attacks={}|x={x:?}|recipe={recipe}|seed={seed}|scale={scale:?}",
        attacks.join(",")
    );
    format!("{:016x}", fnv1a64(&canonical))
}

pub(crate) fn fnv1a64(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Terminal state of a journalled point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStatus {
    /// The point computed successfully; its numbers are present.
    Ok,
    /// The point exhausted its retry budget; the error is recorded so the
    /// sweep can report it without recomputing on every resume.
    Failed,
}

/// One persisted sweep point: the result (or recorded failure) of a single
/// train→compress→attack pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Content-hash key (see [`point_key`]); also the file name.
    pub key: String,
    /// Sweep coordinate (density or bitwidth).
    pub x: f64,
    /// Compression recipe identifier.
    pub compression: String,
    /// Whether the point completed or failed permanently.
    pub status: PointStatus,
    /// Attempts consumed (1 on a clean first run).
    pub attempts: u32,
    /// Clean test accuracy of the compressed model (`Ok` only; 0 on failure).
    pub base_accuracy: f64,
    /// One `(comp→comp, full→comp, comp→full)` triple per attack, in key
    /// order (`Ok` only; empty on failure).
    pub scenarios: Vec<(f64, f64, f64)>,
    /// Numerical-health incidents recorded while computing the point.
    pub health: Vec<String>,
    /// Failure message (`Failed` only).
    pub error: Option<String>,
}

impl PointRecord {
    /// Serialises to the journal's JSON format (deterministic; `f64` via
    /// shortest-round-trip tokens).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"key\": {},", quote(&self.key));
        let _ = writeln!(out, "  \"x\": {:?},", self.x);
        let _ = writeln!(out, "  \"compression\": {},", quote(&self.compression));
        let status = match self.status {
            PointStatus::Ok => "ok",
            PointStatus::Failed => "failed",
        };
        let _ = writeln!(out, "  \"status\": {},", quote(status));
        let _ = writeln!(out, "  \"attempts\": {},", self.attempts);
        let _ = writeln!(out, "  \"base_accuracy\": {:?},", self.base_accuracy);
        out.push_str("  \"scenarios\": [");
        for (i, (s1, s2, s3)) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{s1:?}, {s2:?}, {s3:?}]");
        }
        out.push_str("],\n  \"health\": [");
        for (i, h) in self.health.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&quote(h));
        }
        out.push_str("],\n  \"error\": ");
        match &self.error {
            Some(e) => out.push_str(&quote(e)),
            None => out.push_str("null"),
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a journal entry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Journal`] on malformed input — with atomic
    /// writes this means real corruption, which should be surfaced (and the
    /// file deleted by hand) rather than silently recomputed.
    pub fn from_json(text: &str) -> Result<PointRecord> {
        let doc = mini::parse(text).map_err(CoreError::Journal)?;
        let field = |k: &str| {
            doc.get(k)
                .ok_or_else(|| CoreError::Journal(format!("missing field '{k}'")))
        };
        let bad = |k: &str| CoreError::Journal(format!("malformed field '{k}'"));
        let version = field("version")?.as_u64().ok_or_else(|| bad("version"))?;
        if version != 1 {
            return Err(CoreError::Journal(format!(
                "unsupported journal version {version}"
            )));
        }
        let status = match field("status")?.as_str().ok_or_else(|| bad("status"))? {
            "ok" => PointStatus::Ok,
            "failed" => PointStatus::Failed,
            other => {
                return Err(CoreError::Journal(format!("unknown status '{other}'")));
            }
        };
        let scenarios = field("scenarios")?
            .as_arr()
            .ok_or_else(|| bad("scenarios"))?
            .iter()
            .map(|row| {
                let t = row.as_arr()?;
                match t {
                    [a, b, c] => Some((a.as_f64()?, b.as_f64()?, c.as_f64()?)),
                    _ => None,
                }
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| bad("scenarios"))?;
        let health = field("health")?
            .as_arr()
            .ok_or_else(|| bad("health"))?
            .iter()
            .map(|h| h.as_str().map(String::from))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| bad("health"))?;
        let error = match field("error")? {
            mini::Value::Null => None,
            v => Some(v.as_str().ok_or_else(|| bad("error"))?.to_string()),
        };
        Ok(PointRecord {
            key: field("key")?
                .as_str()
                .ok_or_else(|| bad("key"))?
                .to_string(),
            x: field("x")?.as_f64().ok_or_else(|| bad("x"))?,
            compression: field("compression")?
                .as_str()
                .ok_or_else(|| bad("compression"))?
                .to_string(),
            status,
            attempts: field("attempts")?
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| bad("attempts"))?,
            base_accuracy: field("base_accuracy")?
                .as_f64()
                .ok_or_else(|| bad("base_accuracy"))?,
            scenarios,
            health,
            error,
        })
    }
}

/// An on-disk journal: one file per completed sweep point under
/// `<run_dir>/points/<key>.json`.
#[derive(Debug, Clone)]
pub struct Journal {
    points: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal under `run_dir`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] if the directory cannot be created.
    pub fn open(run_dir: &Path) -> Result<Journal> {
        let points = run_dir.join("points");
        fs::create_dir_all(&points)?;
        Ok(Journal { points })
    }

    /// The file path an entry with `key` lives at.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.points.join(format!("{key}.json"))
    }

    /// Loads the entry for `key`, or `None` if it has not been written.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Journal`] on a corrupt entry and
    /// [`CoreError::Io`] on read failures other than not-found.
    pub fn load(&self, key: &str) -> Result<Option<PointRecord>> {
        let path = self.path_for(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CoreError::Io(e)),
        };
        let record = PointRecord::from_json(&text)
            .map_err(|e| CoreError::Journal(format!("{}: {e}", path.display())))?;
        if record.key != key {
            return Err(CoreError::Journal(format!(
                "{}: entry key '{}' does not match file name",
                path.display(),
                record.key
            )));
        }
        Ok(Some(record))
    }

    /// Persists `record` crash-safely: full write to a `.tmp` sibling, then
    /// an atomic rename over the final path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on write failure (including one injected
    /// at the `journal_write` fault site).
    pub fn store(&self, record: &PointRecord) -> Result<()> {
        if let Some(e) = advcomp_nn::faults::io_error("journal_write") {
            return Err(CoreError::Io(e));
        }
        let path = self.path_for(&record.key);
        let tmp = self.points.join(format!("{}.json.tmp", record.key));
        fs::write(&tmp, record.to_json())?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }
}

/// One entry in a run's append-only event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic sequence number (restart-safe: continues from the last
    /// persisted record).
    pub seq: u64,
    /// Event kind, e.g. `lease_expired`, `redispatch`, `worker_lost`.
    pub kind: String,
    /// Sweep-point key the event concerns (empty for run-level events).
    pub key: String,
    /// Free-form detail.
    pub detail: String,
}

impl EventRecord {
    fn to_line(&self) -> String {
        format!(
            "{{\"seq\": {}, \"kind\": {}, \"key\": {}, \"detail\": {}}}\n",
            self.seq,
            quote(&self.kind),
            quote(&self.key),
            quote(&self.detail)
        )
    }

    fn from_line(line: &str) -> std::result::Result<EventRecord, String> {
        let doc = mini::parse(line)?;
        let s = |k: &str| {
            doc.get(k)
                .and_then(mini::Value::as_str)
                .map(String::from)
                .ok_or_else(|| format!("missing/malformed field '{k}'"))
        };
        Ok(EventRecord {
            seq: doc
                .get("seq")
                .and_then(mini::Value::as_u64)
                .ok_or("missing/malformed field 'seq'")?,
            kind: s("kind")?,
            key: s("key")?,
            detail: s("detail")?,
        })
    }
}

/// Append-only JSONL event log at `<run_dir>/events.log`.
///
/// Appends are a single `write_all` + flush, **not** atomic-rename — an
/// event log is written far too often for a tmp+rename per record, and
/// unlike point records a lost event only costs counter accuracy, never
/// result correctness. The recovery contract is therefore asymmetric:
///
/// * a **torn final line** (crash mid-append) is expected damage — it is
///   skipped with a warning and truncated away so the next append starts at
///   a clean line boundary;
/// * a **malformed line followed by more data** cannot be produced by a
///   crashed appender and is treated as real corruption
///   ([`CoreError::Journal`]).
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    next_seq: u64,
}

impl EventLog {
    /// Opens (creating if needed) `<run_dir>/events.log`, replaying what
    /// survives. Returns the log handle, the intact records in file order,
    /// and human-readable warnings for anything skipped.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failures and
    /// [`CoreError::Journal`] on mid-file corruption (see type docs).
    pub fn open(run_dir: &Path) -> Result<(EventLog, Vec<EventRecord>, Vec<String>)> {
        fs::create_dir_all(run_dir)?;
        let path = run_dir.join("events.log");
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(CoreError::Io(e)),
        };
        let mut records = Vec::new();
        let mut warnings = Vec::new();
        let mut good_len = 0usize; // bytes covered by intact, newline-terminated lines
        let mut offset = 0usize;
        while offset < bytes.len() {
            let nl = bytes[offset..].iter().position(|&b| b == b'\n');
            let (line_end, terminated) = match nl {
                Some(i) => (offset + i, true),
                None => (bytes.len(), false),
            };
            let raw = &bytes[offset..line_end];
            let parsed = std::str::from_utf8(raw)
                .map_err(|e| e.to_string())
                .and_then(|text| EventRecord::from_line(text.trim_end_matches('\r')));
            match parsed {
                Ok(rec) if terminated => {
                    records.push(rec);
                    good_len = line_end + 1;
                }
                _ if !terminated => {
                    // Crash mid-append: the final line is missing its
                    // newline (and usually malformed too). Expected damage.
                    warnings.push(format!(
                        "{}: dropped torn final record ({} bytes) left by an \
                         interrupted append",
                        path.display(),
                        raw.len()
                    ));
                }
                Err(e) => {
                    return Err(CoreError::Journal(format!(
                        "{}: corrupt event record at byte {offset}: {e}",
                        path.display()
                    )));
                }
                Ok(_) => {
                    // A parseable but unterminated line is still torn — the
                    // newline is part of the commit. Handled above; this arm
                    // is unreachable because `!terminated` matched first.
                    unreachable!("unterminated lines are handled before parse inspection")
                }
            }
            offset = line_end + 1;
        }
        if good_len < bytes.len() {
            // Truncate the torn tail so the next append starts on a clean
            // line boundary instead of gluing onto the fragment.
            let file = fs::OpenOptions::new().write(true).open(&path)?;
            file.set_len(good_len as u64)?;
        }
        let next_seq = records.last().map_or(0, |r| r.seq + 1);
        Ok((EventLog { path, next_seq }, records, warnings))
    }

    /// Appends one event and returns its sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on write failure.
    pub fn append(&mut self, kind: &str, key: &str, detail: &str) -> Result<u64> {
        let rec = EventRecord {
            seq: self.next_seq,
            kind: kind.to_string(),
            key: key.to_string(),
            detail: detail.to_string(),
        };
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(rec.to_line().as_bytes())?;
        file.flush()?;
        self.next_seq += 1;
        Ok(rec.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::faults::{install, FaultKind, FaultSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "advcomp-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_ok() -> PointRecord {
        PointRecord {
            key: "00c0ffee00c0ffee".into(),
            x: 0.30000000000000004, // deliberately not shortest-decimal-friendly
            compression: "dns_prune(0.3)".into(),
            status: PointStatus::Ok,
            attempts: 1,
            base_accuracy: 0.937_499_999_999_999_9,
            scenarios: vec![(0.1, 0.2, 0.3), (1.0 / 3.0, 2.0 / 3.0, 0.0)],
            health: vec!["epoch 1: rolled back, lr scaled to 0.5".into()],
            error: None,
        }
    }

    #[test]
    fn record_round_trip_is_bit_exact() {
        let rec = sample_ok();
        let back = PointRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back.x.to_bits(), rec.x.to_bits());
        assert_eq!(back.base_accuracy.to_bits(), rec.base_accuracy.to_bits());
        for (a, b) in back.scenarios.iter().zip(&rec.scenarios) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
        assert_eq!(back, rec);
        // Deterministic writer: re-serialising the parsed record reproduces
        // the bytes exactly.
        assert_eq!(back.to_json(), rec.to_json());
    }

    #[test]
    fn failed_record_round_trips() {
        let rec = PointRecord {
            key: "deadbeefdeadbeef".into(),
            x: 4.0,
            compression: "quant(w+a,4b)".into(),
            status: PointStatus::Failed,
            attempts: 3,
            base_accuracy: 0.0,
            scenarios: vec![],
            health: vec![],
            error: Some("injected fault: panic at site 'sweep_point'".into()),
        };
        assert_eq!(PointRecord::from_json(&rec.to_json()).unwrap(), rec);
    }

    #[test]
    fn journal_store_load_and_miss() {
        let dir = tmp_dir("store");
        let journal = Journal::open(&dir).unwrap();
        let rec = sample_ok();
        assert_eq!(journal.load(&rec.key).unwrap(), None);
        journal.store(&rec).unwrap();
        assert_eq!(journal.load(&rec.key).unwrap(), Some(rec.clone()));
        // No temp residue after a clean store.
        let residue: Vec<_> = fs::read_dir(dir.join("points"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(residue.is_empty(), "{residue:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_an_error_not_a_silent_miss() {
        let dir = tmp_dir("corrupt");
        let journal = Journal::open(&dir).unwrap();
        fs::write(journal.path_for("0123456789abcdef"), "{\"version\": 1,").unwrap();
        let err = journal.load("0123456789abcdef").unwrap_err();
        assert!(matches!(err, CoreError::Journal(_)), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_key_rejected() {
        let dir = tmp_dir("mismatch");
        let journal = Journal::open(&dir).unwrap();
        let rec = sample_ok();
        fs::write(journal.path_for("1111111111111111"), rec.to_json()).unwrap();
        assert!(journal.load("1111111111111111").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_fault_fails_the_store() {
        let dir = tmp_dir("iofault");
        let journal = Journal::open(&dir).unwrap();
        let _g = install(vec![FaultSpec::once(FaultKind::Io, "journal_write", 0)]);
        let err = journal.store(&sample_ok()).unwrap_err();
        assert!(matches!(err, CoreError::Io(_)), "{err:?}");
        // The entry was never (partially) written.
        assert_eq!(journal.load(&sample_ok().key).unwrap(), None);
        // Next attempt succeeds (fault was one-shot) — the retry story.
        journal.store(&sample_ok()).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn event_log_round_trips_and_numbers_sequences() {
        let dir = tmp_dir("events");
        let (mut log, initial, warnings) = EventLog::open(&dir).unwrap();
        assert!(initial.is_empty() && warnings.is_empty());
        assert_eq!(log.append("lease_granted", "k1", "worker w0").unwrap(), 0);
        assert_eq!(log.append("redispatch", "k1", "lease expired").unwrap(), 1);
        drop(log);
        let (mut log, records, warnings) = EventLog::open(&dir).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, "lease_granted");
        assert_eq!(records[1].seq, 1);
        // Sequence numbering continues across reopen.
        assert_eq!(log.append("done", "", "").unwrap(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_event_line_is_skipped_at_every_truncation_offset() {
        // Crash-mid-append regression: whatever byte the append died at,
        // resume must (a) keep every fully committed record, (b) warn about
        // a fragment rather than fail, and (c) leave the file appendable.
        let dir = tmp_dir("torn");
        let (mut log, _, _) = EventLog::open(&dir).unwrap();
        for i in 0..3u64 {
            log.append("evt", &format!("k{i}"), "detail \"quoted\"")
                .unwrap();
        }
        drop(log);
        let path = dir.join("events.log");
        let full = fs::read(&path).unwrap();
        let line_ends: Vec<usize> = full
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(line_ends.len(), 3);
        for cut in 0..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (mut log, records, warnings) =
                EventLog::open(&dir).unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
            let committed = line_ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(records.len(), committed, "cut at byte {cut}");
            let has_fragment =
                line_ends.iter().rfind(|&&e| e <= cut).copied() != Some(cut) && cut > 0;
            assert_eq!(
                warnings.len(),
                usize::from(has_fragment),
                "cut at byte {cut}"
            );
            // The torn tail was truncated away; appending resumes cleanly
            // with the next sequence number.
            let seq = log.append("resumed", "", "").unwrap();
            assert_eq!(seq as usize, committed, "cut at byte {cut}");
            let (_, after, warnings) = EventLog::open(&dir).unwrap();
            assert!(warnings.is_empty(), "cut at byte {cut}: {warnings:?}");
            assert_eq!(after.len(), committed + 1, "cut at byte {cut}");
            assert_eq!(after.last().unwrap().kind, "resumed");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_event_corruption_is_an_error() {
        let dir = tmp_dir("midcorrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("events.log"),
            "{\"seq\": 0, \"kind\": \"a\", \"key\": \"\", \"detail\": \"\"}\n\
             garbage that is not a record\n\
             {\"seq\": 2, \"kind\": \"c\", \"key\": \"\", \"detail\": \"\"}\n",
        )
        .unwrap();
        let err = EventLog::open(&dir).unwrap_err();
        assert!(matches!(err, CoreError::Journal(_)), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_sensitive_to_every_input() {
        let scale = ExperimentScale::tiny();
        let base = point_key("lenet5", &["ifgsm", "ifgm"], 0.5, "dns(0.5)", 7, &scale);
        assert_eq!(base.len(), 16);
        assert_eq!(
            base,
            point_key("lenet5", &["ifgsm", "ifgm"], 0.5, "dns(0.5)", 7, &scale)
        );
        let mut other_scale = scale;
        other_scale.attack_eval += 1;
        for different in [
            point_key("cifarnet", &["ifgsm", "ifgm"], 0.5, "dns(0.5)", 7, &scale),
            point_key("lenet5", &["ifgsm"], 0.5, "dns(0.5)", 7, &scale),
            point_key("lenet5", &["ifgsm", "ifgm"], 0.25, "dns(0.5)", 7, &scale),
            point_key("lenet5", &["ifgsm", "ifgm"], 0.5, "dns(0.25)", 7, &scale),
            point_key("lenet5", &["ifgsm", "ifgm"], 0.5, "dns(0.5)", 8, &scale),
            point_key(
                "lenet5",
                &["ifgsm", "ifgm"],
                0.5,
                "dns(0.5)",
                7,
                &other_scale,
            ),
        ] {
            assert_ne!(base, different);
        }
    }
}
