//! Checkpoint/resume journal for sweep runs.
//!
//! A full Figure 2/5 grid at paper scale runs for hours; losing it to a
//! crash at point 17 of 20 used to mean recomputing all 20. The journal
//! persists each sweep point to its own file **as soon as it completes**,
//! keyed by a content hash of everything that determines the point's value
//! (network, attack list, compression recipe, sweep coordinate, seed and
//! the full [`ExperimentScale`]). A re-run with the same configuration
//! loads finished points instead of recomputing them; a re-run with *any*
//! config change hashes to different keys and recomputes honestly.
//!
//! Two properties carry the design:
//!
//! * **Bit-exact resume.** `f64` values are written with Rust's
//!   shortest-round-trip `{:?}` formatting and re-parsed with
//!   `str::parse::<f64>` directly from the raw token (the same policy as
//!   the golden-vector format), so a resumed sweep's final report is
//!   byte-identical to an uninterrupted one.
//! * **Crash-safe writes.** Entries are written to a `.tmp` sibling and
//!   atomically renamed into place; a crash mid-write leaves at worst a
//!   stale temp file, never a truncated entry that would poison resume.
//!
//! The workspace's `serde` is stubbed in offline containers (serialize
//! only), so the reader is a small hand-rolled JSON parser specialised to
//! this format.

use crate::scale::ExperimentScale;
use crate::{CoreError, Result};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Content-hash key for one sweep point: 16 hex digits of FNV-1a 64 over a
/// canonical description of everything that determines the point's value.
/// `attacks` must be in evaluation order — the scenario triples stored
/// under the key are indexed by that order.
pub fn point_key(
    net: &str,
    attacks: &[&str],
    x: f64,
    recipe: &str,
    seed: u64,
    scale: &ExperimentScale,
) -> String {
    let canonical = format!(
        "v1|net={net}|attacks={}|x={x:?}|recipe={recipe}|seed={seed}|scale={scale:?}",
        attacks.join(",")
    );
    format!("{:016x}", fnv1a64(&canonical))
}

fn fnv1a64(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Terminal state of a journalled point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStatus {
    /// The point computed successfully; its numbers are present.
    Ok,
    /// The point exhausted its retry budget; the error is recorded so the
    /// sweep can report it without recomputing on every resume.
    Failed,
}

/// One persisted sweep point: the result (or recorded failure) of a single
/// train→compress→attack pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Content-hash key (see [`point_key`]); also the file name.
    pub key: String,
    /// Sweep coordinate (density or bitwidth).
    pub x: f64,
    /// Compression recipe identifier.
    pub compression: String,
    /// Whether the point completed or failed permanently.
    pub status: PointStatus,
    /// Attempts consumed (1 on a clean first run).
    pub attempts: u32,
    /// Clean test accuracy of the compressed model (`Ok` only; 0 on failure).
    pub base_accuracy: f64,
    /// One `(comp→comp, full→comp, comp→full)` triple per attack, in key
    /// order (`Ok` only; empty on failure).
    pub scenarios: Vec<(f64, f64, f64)>,
    /// Numerical-health incidents recorded while computing the point.
    pub health: Vec<String>,
    /// Failure message (`Failed` only).
    pub error: Option<String>,
}

impl PointRecord {
    /// Serialises to the journal's JSON format (deterministic; `f64` via
    /// shortest-round-trip tokens).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"key\": {},", quote(&self.key));
        let _ = writeln!(out, "  \"x\": {:?},", self.x);
        let _ = writeln!(out, "  \"compression\": {},", quote(&self.compression));
        let status = match self.status {
            PointStatus::Ok => "ok",
            PointStatus::Failed => "failed",
        };
        let _ = writeln!(out, "  \"status\": {},", quote(status));
        let _ = writeln!(out, "  \"attempts\": {},", self.attempts);
        let _ = writeln!(out, "  \"base_accuracy\": {:?},", self.base_accuracy);
        out.push_str("  \"scenarios\": [");
        for (i, (s1, s2, s3)) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{s1:?}, {s2:?}, {s3:?}]");
        }
        out.push_str("],\n  \"health\": [");
        for (i, h) in self.health.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&quote(h));
        }
        out.push_str("],\n  \"error\": ");
        match &self.error {
            Some(e) => out.push_str(&quote(e)),
            None => out.push_str("null"),
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a journal entry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Journal`] on malformed input — with atomic
    /// writes this means real corruption, which should be surfaced (and the
    /// file deleted by hand) rather than silently recomputed.
    pub fn from_json(text: &str) -> Result<PointRecord> {
        let doc = mini::parse(text).map_err(CoreError::Journal)?;
        let field = |k: &str| {
            doc.get(k)
                .ok_or_else(|| CoreError::Journal(format!("missing field '{k}'")))
        };
        let bad = |k: &str| CoreError::Journal(format!("malformed field '{k}'"));
        let version = field("version")?.as_u64().ok_or_else(|| bad("version"))?;
        if version != 1 {
            return Err(CoreError::Journal(format!(
                "unsupported journal version {version}"
            )));
        }
        let status = match field("status")?.as_str().ok_or_else(|| bad("status"))? {
            "ok" => PointStatus::Ok,
            "failed" => PointStatus::Failed,
            other => {
                return Err(CoreError::Journal(format!("unknown status '{other}'")));
            }
        };
        let scenarios = field("scenarios")?
            .as_arr()
            .ok_or_else(|| bad("scenarios"))?
            .iter()
            .map(|row| {
                let t = row.as_arr()?;
                match t {
                    [a, b, c] => Some((a.as_f64()?, b.as_f64()?, c.as_f64()?)),
                    _ => None,
                }
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| bad("scenarios"))?;
        let health = field("health")?
            .as_arr()
            .ok_or_else(|| bad("health"))?
            .iter()
            .map(|h| h.as_str().map(String::from))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| bad("health"))?;
        let error = match field("error")? {
            mini::Value::Null => None,
            v => Some(v.as_str().ok_or_else(|| bad("error"))?.to_string()),
        };
        Ok(PointRecord {
            key: field("key")?
                .as_str()
                .ok_or_else(|| bad("key"))?
                .to_string(),
            x: field("x")?.as_f64().ok_or_else(|| bad("x"))?,
            compression: field("compression")?
                .as_str()
                .ok_or_else(|| bad("compression"))?
                .to_string(),
            status,
            attempts: field("attempts")?
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| bad("attempts"))?,
            base_accuracy: field("base_accuracy")?
                .as_f64()
                .ok_or_else(|| bad("base_accuracy"))?,
            scenarios,
            health,
            error,
        })
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An on-disk journal: one file per completed sweep point under
/// `<run_dir>/points/<key>.json`.
#[derive(Debug, Clone)]
pub struct Journal {
    points: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) the journal under `run_dir`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] if the directory cannot be created.
    pub fn open(run_dir: &Path) -> Result<Journal> {
        let points = run_dir.join("points");
        fs::create_dir_all(&points)?;
        Ok(Journal { points })
    }

    /// The file path an entry with `key` lives at.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.points.join(format!("{key}.json"))
    }

    /// Loads the entry for `key`, or `None` if it has not been written.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Journal`] on a corrupt entry and
    /// [`CoreError::Io`] on read failures other than not-found.
    pub fn load(&self, key: &str) -> Result<Option<PointRecord>> {
        let path = self.path_for(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CoreError::Io(e)),
        };
        let record = PointRecord::from_json(&text)
            .map_err(|e| CoreError::Journal(format!("{}: {e}", path.display())))?;
        if record.key != key {
            return Err(CoreError::Journal(format!(
                "{}: entry key '{}' does not match file name",
                path.display(),
                record.key
            )));
        }
        Ok(Some(record))
    }

    /// Persists `record` crash-safely: full write to a `.tmp` sibling, then
    /// an atomic rename over the final path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on write failure (including one injected
    /// at the `journal_write` fault site).
    pub fn store(&self, record: &PointRecord) -> Result<()> {
        if let Some(e) = advcomp_nn::faults::io_error("journal_write") {
            return Err(CoreError::Io(e));
        }
        let path = self.path_for(&record.key);
        let tmp = self.points.join(format!("{}.json.tmp", record.key));
        fs::write(&tmp, record.to_json())?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }
}

/// Trimmed JSON reader for journal entries (see module docs for why this is
/// hand-rolled): numbers are kept as raw tokens so `f64` decoding re-parses
/// the exact text the writer produced.
mod mini {
    /// A parsed JSON value; numbers stay raw tokens.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(String),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(tok) => tok.parse().ok(),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(tok) => tok.parse().ok(),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items.as_slice()),
                _ => None,
            }
        }
    }

    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => keyword(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => keyword(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => keyword(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            *pos += 1;
        }
        let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_string())?;
        token
            .parse::<f64>()
            .map_err(|_| format!("malformed number at byte {start}"))?;
        Ok(Value::Num(token.to_string()))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                            *pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    let rest =
                        std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf8".to_string())?;
                    let c = rest.chars().next().expect("non-empty by construction");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut pairs = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            pairs.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::faults::{install, FaultKind, FaultSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "advcomp-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_ok() -> PointRecord {
        PointRecord {
            key: "00c0ffee00c0ffee".into(),
            x: 0.30000000000000004, // deliberately not shortest-decimal-friendly
            compression: "dns_prune(0.3)".into(),
            status: PointStatus::Ok,
            attempts: 1,
            base_accuracy: 0.937_499_999_999_999_9,
            scenarios: vec![(0.1, 0.2, 0.3), (1.0 / 3.0, 2.0 / 3.0, 0.0)],
            health: vec!["epoch 1: rolled back, lr scaled to 0.5".into()],
            error: None,
        }
    }

    #[test]
    fn record_round_trip_is_bit_exact() {
        let rec = sample_ok();
        let back = PointRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back.x.to_bits(), rec.x.to_bits());
        assert_eq!(back.base_accuracy.to_bits(), rec.base_accuracy.to_bits());
        for (a, b) in back.scenarios.iter().zip(&rec.scenarios) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
        assert_eq!(back, rec);
        // Deterministic writer: re-serialising the parsed record reproduces
        // the bytes exactly.
        assert_eq!(back.to_json(), rec.to_json());
    }

    #[test]
    fn failed_record_round_trips() {
        let rec = PointRecord {
            key: "deadbeefdeadbeef".into(),
            x: 4.0,
            compression: "quant(w+a,4b)".into(),
            status: PointStatus::Failed,
            attempts: 3,
            base_accuracy: 0.0,
            scenarios: vec![],
            health: vec![],
            error: Some("injected fault: panic at site 'sweep_point'".into()),
        };
        assert_eq!(PointRecord::from_json(&rec.to_json()).unwrap(), rec);
    }

    #[test]
    fn journal_store_load_and_miss() {
        let dir = tmp_dir("store");
        let journal = Journal::open(&dir).unwrap();
        let rec = sample_ok();
        assert_eq!(journal.load(&rec.key).unwrap(), None);
        journal.store(&rec).unwrap();
        assert_eq!(journal.load(&rec.key).unwrap(), Some(rec.clone()));
        // No temp residue after a clean store.
        let residue: Vec<_> = fs::read_dir(dir.join("points"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(residue.is_empty(), "{residue:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_an_error_not_a_silent_miss() {
        let dir = tmp_dir("corrupt");
        let journal = Journal::open(&dir).unwrap();
        fs::write(journal.path_for("0123456789abcdef"), "{\"version\": 1,").unwrap();
        let err = journal.load("0123456789abcdef").unwrap_err();
        assert!(matches!(err, CoreError::Journal(_)), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_key_rejected() {
        let dir = tmp_dir("mismatch");
        let journal = Journal::open(&dir).unwrap();
        let rec = sample_ok();
        fs::write(journal.path_for("1111111111111111"), rec.to_json()).unwrap();
        assert!(journal.load("1111111111111111").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_fault_fails_the_store() {
        let dir = tmp_dir("iofault");
        let journal = Journal::open(&dir).unwrap();
        let _g = install(vec![FaultSpec::once(FaultKind::Io, "journal_write", 0)]);
        let err = journal.store(&sample_ok()).unwrap_err();
        assert!(matches!(err, CoreError::Io(_)), "{err:?}");
        // The entry was never (partially) written.
        assert_eq!(journal.load(&sample_ok().key).unwrap(), None);
        // Next attempt succeeds (fault was one-shot) — the retry story.
        journal.store(&sample_ok()).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_sensitive_to_every_input() {
        let scale = ExperimentScale::tiny();
        let base = point_key("lenet5", &["ifgsm", "ifgm"], 0.5, "dns(0.5)", 7, &scale);
        assert_eq!(base.len(), 16);
        assert_eq!(
            base,
            point_key("lenet5", &["ifgsm", "ifgm"], 0.5, "dns(0.5)", 7, &scale)
        );
        let mut other_scale = scale;
        other_scale.attack_eval += 1;
        for different in [
            point_key("cifarnet", &["ifgsm", "ifgm"], 0.5, "dns(0.5)", 7, &scale),
            point_key("lenet5", &["ifgsm"], 0.5, "dns(0.5)", 7, &scale),
            point_key("lenet5", &["ifgsm", "ifgm"], 0.25, "dns(0.5)", 7, &scale),
            point_key("lenet5", &["ifgsm", "ifgm"], 0.5, "dns(0.25)", 7, &scale),
            point_key("lenet5", &["ifgsm", "ifgm"], 0.5, "dns(0.5)", 8, &scale),
            point_key(
                "lenet5",
                &["ifgsm", "ifgm"],
                0.5,
                "dns(0.5)",
                7,
                &other_scale,
            ),
        ] {
            assert_ne!(base, different);
        }
    }
}
