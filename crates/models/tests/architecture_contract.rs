//! Architecture contracts the rest of the workspace relies on: stable
//! parameter names, checkpoint compatibility across instances, and the
//! quantisation-point layout of the reference models.

use advcomp_models::{cifarnet, lenet5, mlp, Checkpoint, ModelKind};
use advcomp_nn::Mode;
use advcomp_qformat::QFormat;
use advcomp_tensor::Tensor;

#[test]
fn lenet5_parameter_names_are_stable() {
    // Compression masks and checkpoints key on these names; changing them
    // silently breaks saved artefacts.
    let names: Vec<String> = lenet5(1.0, 0)
        .params()
        .iter()
        .map(|p| p.name.clone())
        .collect();
    assert_eq!(
        names,
        vec![
            "conv1.weight",
            "conv1.bias",
            "conv2.weight",
            "conv2.bias",
            "fc1.weight",
            "fc1.bias",
            "fc2.weight",
            "fc2.bias",
            "fc3.weight",
            "fc3.bias",
        ]
    );
}

#[test]
fn cifarnet_parameter_names_are_stable() {
    let names: Vec<String> = cifarnet(1.0, 0)
        .params()
        .iter()
        .map(|p| p.name.clone())
        .collect();
    assert_eq!(
        names,
        vec![
            "conv1.weight",
            "conv1.bias",
            "conv2.weight",
            "conv2.bias",
            "conv3.weight",
            "conv3.bias",
            "conv4.weight",
            "conv4.bias",
            "fc1.weight",
            "fc1.bias",
            "fc2.weight",
            "fc2.bias",
        ]
    );
}

#[test]
fn checkpoints_transfer_between_same_width_instances() {
    let a = lenet5(0.5, 1);
    let mut b = lenet5(0.5, 2);
    Checkpoint::capture(&a).restore(&mut b).unwrap();
    for (pa, pb) in a.params().iter().zip(b.params().iter()) {
        assert_eq!(pa.value.data(), pb.value.data());
    }
}

#[test]
fn checkpoints_reject_width_mismatch() {
    let a = lenet5(0.5, 1);
    let mut b = lenet5(1.0, 1);
    assert!(Checkpoint::capture(&a).restore(&mut b).is_err());
}

#[test]
fn quantisation_points_cover_input_and_every_activation() {
    // The §3.2 scheme quantises *all* activations; model builders must put
    // a FakeQuant at the input and after each nonlinearity.
    let fmt = QFormat::for_bitwidth(4).unwrap();
    for (mut model, expected_points) in [(lenet5(1.0, 0), 5usize), (cifarnet(1.0, 0), 6)] {
        assert_eq!(model.set_activation_format(Some(fmt)), expected_points);
        // With a Q1.3 format installed everywhere, every retained
        // activation must respect the format's range.
        let input_shape = if expected_points == 5 {
            [1usize, 1, 28, 28]
        } else {
            [1usize, 3, 32, 32]
        };
        model
            .forward(&Tensor::full(&input_shape, 0.4), Mode::Eval)
            .unwrap();
        for layer in model.layers() {
            if layer.kind() == "fakequant" {
                let out = layer.last_output().expect("fakequant ran");
                assert!(out.max().unwrap() <= fmt.max_value());
                assert!(out.min().unwrap() >= fmt.min_value());
            }
        }
    }
}

#[test]
fn model_kind_shapes_match_builders() {
    let mut l = lenet5(0.5, 0);
    let mut shape = vec![2usize];
    shape.extend_from_slice(ModelKind::LeNet5.input_shape());
    assert!(l.forward(&Tensor::zeros(&shape), Mode::Eval).is_ok());

    let mut c = cifarnet(0.25, 0);
    let mut shape = vec![2usize];
    shape.extend_from_slice(ModelKind::CifarNet.input_shape());
    assert!(c.forward(&Tensor::zeros(&shape), Mode::Eval).is_ok());
}

#[test]
fn mlp_and_lenet_share_input_contract() {
    // The test MLP must accept the same input as LeNet5 so tests can swap
    // them freely.
    let mut m = mlp(8, 0);
    let mut l = lenet5(0.5, 0);
    let x = Tensor::zeros(&[3, 1, 28, 28]);
    assert_eq!(m.forward(&x, Mode::Eval).unwrap().shape(), &[3, 10]);
    assert_eq!(l.forward(&x, Mode::Eval).unwrap().shape(), &[3, 10]);
}
