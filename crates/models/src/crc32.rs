//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Checkpoint format v2 appends this checksum as a footer so the serving
//! registry can reject torn or bit-flipped model files at load time instead
//! of serving garbage predictions. Implemented locally — the build
//! container has no crates.io access — with the standard table-driven
//! byte-at-a-time algorithm.

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (IEEE, as used by gzip/zlib/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib crc32() implementation.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = b"checkpoint payload bytes".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
