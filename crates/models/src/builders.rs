//! Network topology builders.

use advcomp_nn::{AvgPool2d, Conv2d, Dense, FakeQuant, Flatten, MaxPool2d, Relu, Sequential, Tanh};
use rand::SeedableRng;

/// Which reference model a [`Sequential`] was built as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// [`lenet5`] on 28×28×1 input.
    LeNet5,
    /// [`cifarnet`] on 32×32×3 input.
    CifarNet,
    /// A small test MLP.
    Mlp,
}

impl ModelKind {
    /// NCHW shape of one input sample.
    pub fn input_shape(&self) -> &'static [usize] {
        match self {
            ModelKind::LeNet5 => &[1, 28, 28],
            ModelKind::CifarNet => &[3, 32, 32],
            ModelKind::Mlp => &[1, 28, 28],
        }
    }
}

fn scaled(base: usize, width: f32) -> usize {
    ((base as f32 * width).round() as usize).max(1)
}

/// Builds a LeNet5 for 28×28 greyscale input.
///
/// Topology (width 1.0): `conv1` 1→6 5×5 pad 2 → ReLU → maxpool 2 →
/// `conv2` 6→16 5×5 → ReLU → maxpool 2 → `fc1` 400→120 → ReLU →
/// `fc2` 120→84 → ReLU → `fc3` 84→10. `FakeQuant` points sit on the input
/// and after every ReLU so fixed-point quantisation covers all activations.
///
/// # Panics
///
/// Panics if `width <= 0`.
pub fn lenet5(width: f32, seed: u64) -> Sequential {
    assert!(width > 0.0, "width must be positive, got {width}");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let c1 = scaled(6, width);
    let c2 = scaled(16, width);
    let f1 = scaled(120, width);
    let f2 = scaled(84, width);
    Sequential::new(vec![
        Box::new(FakeQuant::new()),
        Box::new(Conv2d::with_name("conv1", 1, c1, 5, 1, 2, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Conv2d::with_name("conv2", c1, c2, 5, 1, 0, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Dense::with_name("fc1", c2 * 5 * 5, f1, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc2", f1, f2, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc3", f2, 10, &mut rng)),
    ])
}

/// Builds a CifarNet-style VGG stack for 32×32 RGB input.
///
/// Topology (width 1.0): two 3×3 conv blocks of 32 channels → pool → one of
/// 64 → pool → one of 64 → pool → `fc1` 1024→256 → `fc2` 256→10, ReLU and a
/// `FakeQuant` point after every convolution/dense activation.
///
/// # Panics
///
/// Panics if `width <= 0`.
pub fn cifarnet(width: f32, seed: u64) -> Sequential {
    assert!(width > 0.0, "width must be positive, got {width}");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let c1 = scaled(32, width);
    let c2 = scaled(32, width);
    let c3 = scaled(64, width);
    let c4 = scaled(64, width);
    let f1 = scaled(256, width);
    Sequential::new(vec![
        Box::new(FakeQuant::new()),
        Box::new(Conv2d::with_name("conv1", 3, c1, 3, 1, 1, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(Conv2d::with_name("conv2", c1, c2, 3, 1, 1, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(MaxPool2d::new(2, 2)), // 32 -> 16
        Box::new(Conv2d::with_name("conv3", c2, c3, 3, 1, 1, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(MaxPool2d::new(2, 2)), // 16 -> 8
        Box::new(Conv2d::with_name("conv4", c3, c4, 3, 1, 1, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(MaxPool2d::new(2, 2)), // 8 -> 4
        Box::new(Flatten::new()),
        Box::new(Dense::with_name("fc1", c4 * 4 * 4, f1, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc2", f1, 10, &mut rng)),
    ])
}

/// Builds the *historical* LeNet-5 (LeCun 1998): tanh activations and
/// average (sub-sampling) pooling instead of ReLU + max pooling. Provided
/// for architecture ablations; the paper's experiments use [`lenet5`].
///
/// # Panics
///
/// Panics if `width <= 0`.
pub fn lenet5_classic(width: f32, seed: u64) -> Sequential {
    assert!(width > 0.0, "width must be positive, got {width}");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let c1 = scaled(6, width);
    let c2 = scaled(16, width);
    let f1 = scaled(120, width);
    let f2 = scaled(84, width);
    Sequential::new(vec![
        Box::new(FakeQuant::new()),
        Box::new(Conv2d::with_name("conv1", 1, c1, 5, 1, 2, &mut rng)),
        Box::new(Tanh::new()),
        Box::new(FakeQuant::new()),
        Box::new(AvgPool2d::new(2, 2)),
        Box::new(Conv2d::with_name("conv2", c1, c2, 5, 1, 0, &mut rng)),
        Box::new(Tanh::new()),
        Box::new(FakeQuant::new()),
        Box::new(AvgPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Dense::with_name("fc1", c2 * 5 * 5, f1, &mut rng)),
        Box::new(Tanh::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc2", f1, f2, &mut rng)),
        Box::new(Tanh::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc3", f2, 10, &mut rng)),
    ])
}

/// Builds a small MLP on 28×28 input — a fast stand-in for unit and
/// integration tests that don't need convolutions.
pub fn mlp(hidden: usize, seed: u64) -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Box::new(Flatten::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc1", 28 * 28, hidden, &mut rng)),
        Box::new(Relu::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name("fc2", hidden, 10, &mut rng)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::Mode;
    use advcomp_tensor::Tensor;

    #[test]
    fn lenet5_forward_shape() {
        let mut m = lenet5(1.0, 0);
        let x = Tensor::zeros(&[2, 1, 28, 28]);
        let y = m.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn lenet5_param_count_full_width() {
        let m = lenet5(1.0, 0);
        // conv1: 6·1·25+6, conv2: 16·6·25+16, fc1: 120·400+120,
        // fc2: 84·120+84, fc3: 10·84+10 = 61,706.
        assert_eq!(m.num_params(), 61_706);
    }

    #[test]
    fn cifarnet_forward_shape_and_size() {
        let mut m = cifarnet(0.5, 0);
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        let y = m.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[1, 10]);
        let full = cifarnet(1.0, 0);
        assert!(full.num_params() > m.num_params());
        // Full-width CifarNet is in the hundreds of thousands of params.
        assert!(full.num_params() > 300_000, "{}", full.num_params());
    }

    #[test]
    fn width_scales_parameters() {
        let half = lenet5(0.5, 0);
        let full = lenet5(1.0, 0);
        assert!(half.num_params() < full.num_params());
        let mut m = lenet5(0.5, 0);
        let y = m
            .forward(&Tensor::zeros(&[1, 1, 28, 28]), Mode::Eval)
            .unwrap();
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn quantisation_points_present() {
        let mut m = lenet5(1.0, 0);
        let fmt = advcomp_qformat::QFormat::for_bitwidth(8).unwrap();
        let count = m.set_activation_format(Some(fmt));
        assert_eq!(count, 5);
        let mut c = cifarnet(1.0, 0);
        assert_eq!(c.set_activation_format(Some(fmt)), 6);
    }

    #[test]
    fn same_seed_same_weights() {
        let a = lenet5(1.0, 42);
        let b = lenet5(1.0, 42);
        let c = lenet5(1.0, 43);
        assert_eq!(
            a.param("conv1.weight").unwrap().value.data(),
            b.param("conv1.weight").unwrap().value.data()
        );
        assert_ne!(
            a.param("conv1.weight").unwrap().value.data(),
            c.param("conv1.weight").unwrap().value.data()
        );
    }

    #[test]
    fn classic_lenet5_forward_and_size() {
        let mut m = lenet5_classic(1.0, 0);
        let y = m
            .forward(&Tensor::zeros(&[2, 1, 28, 28]), Mode::Eval)
            .unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        // Identical parameter count to the modern variant: same topology.
        assert_eq!(m.num_params(), lenet5(1.0, 0).num_params());
    }

    #[test]
    fn mlp_works() {
        let mut m = mlp(32, 0);
        let y = m
            .forward(&Tensor::zeros(&[3, 1, 28, 28]), Mode::Eval)
            .unwrap();
        assert_eq!(y.shape(), &[3, 10]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        lenet5(0.0, 0);
    }

    #[test]
    fn input_shapes() {
        assert_eq!(ModelKind::LeNet5.input_shape(), &[1, 28, 28]);
        assert_eq!(ModelKind::CifarNet.input_shape(), &[3, 32, 32]);
    }
}
