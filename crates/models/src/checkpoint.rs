//! Versioned binary checkpoints for model parameters.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   b"ADVC"
//! version u32          (currently 2; v1 still readable)
//! count   u32          number of parameters
//! repeat count times:
//!   name_len u16, name utf-8 bytes
//!   ndim     u8,  dims  u32 × ndim
//!   data     f32 × prod(dims)
//! crc     u32          (v2 only) CRC-32 of every preceding byte
//! ```
//!
//! The v2 footer lets loaders — in particular the serving model registry —
//! reject torn or bit-flipped checkpoint files with
//! [`CheckpointError::Corrupt`] instead of silently restoring garbage
//! weights. Writers always emit v2; v1 files (no footer) remain readable
//! without integrity verification.

use advcomp_nn::Sequential;
use advcomp_tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::path::Path;

const MAGIC: &[u8; 4] = b"ADVC";
/// Version written by [`Checkpoint::to_bytes`].
const VERSION: u32 = 2;
/// Oldest version still readable (pre-CRC files).
const MIN_VERSION: u32 = 1;

/// Errors raised by checkpoint encoding/decoding.
#[derive(Debug)]
pub enum CheckpointError {
    /// File I/O failed.
    Io(std::io::Error),
    /// The byte stream is not a valid checkpoint.
    Corrupt(String),
    /// The checkpoint version is unsupported.
    UnsupportedVersion(u32),
    /// Loading into a model failed (unknown name / wrong shape).
    Incompatible(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Incompatible(msg) => write!(f, "incompatible checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A serialisable snapshot of named parameter tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    params: Vec<(String, Tensor)>,
}

impl Checkpoint {
    /// Snapshots a model's current parameter values.
    pub fn capture(model: &Sequential) -> Self {
        Checkpoint {
            params: model.export_params(),
        }
    }

    /// Builds a checkpoint from raw `(name, tensor)` pairs.
    pub fn from_params(params: Vec<(String, Tensor)>) -> Self {
        Checkpoint { params }
    }

    /// The stored parameters.
    pub fn params(&self) -> &[(String, Tensor)] {
        &self.params
    }

    /// Restores these values into `model` (names must match).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Incompatible`] on unknown names or shape
    /// mismatches.
    pub fn restore(&self, model: &mut Sequential) -> Result<(), CheckpointError> {
        model
            .import_params(&self.params)
            .map_err(|e| CheckpointError::Incompatible(e.to_string()))
    }

    /// Encodes to the binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.params.len() as u32);
        for (name, tensor) in &self.params {
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name.as_bytes());
            buf.put_u8(tensor.ndim() as u8);
            for &d in tensor.shape() {
                buf.put_u32_le(d as u32);
            }
            for &v in tensor.data() {
                buf.put_f32_le(v);
            }
        }
        let body = buf.freeze();
        let crc = crate::crc32::crc32(&body);
        let mut out = BytesMut::with_capacity(body.len() + 4);
        out.put_slice(&body);
        out.put_u32_le(crc);
        out.freeze()
    }

    /// Decodes from the binary format.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] on truncation or bad magic, and
    /// [`CheckpointError::UnsupportedVersion`] for future versions.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        fn need(buf: &[u8], n: usize, what: &str) -> Result<(), CheckpointError> {
            if buf.remaining() < n {
                return Err(CheckpointError::Corrupt(format!("truncated at {what}")));
            }
            Ok(())
        }
        need(bytes, 12, "header")?;
        if &bytes[..4] != MAGIC {
            return Err(CheckpointError::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        // v2 carries a CRC-32 footer over everything before it; verify the
        // whole file before trusting any field of the body.
        let mut bytes = if version >= 2 {
            need(bytes, 16, "crc footer")?;
            let (body, footer) = bytes.split_at(bytes.len() - 4);
            let stored = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
            let actual = crate::crc32::crc32(body);
            if stored != actual {
                return Err(CheckpointError::Corrupt(format!(
                    "crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
                )));
            }
            body
        } else {
            bytes
        };
        bytes.advance(8); // magic + version
        let count = bytes.get_u32_le() as usize;
        let mut params = Vec::with_capacity(count);
        for _ in 0..count {
            need(bytes, 2, "name length")?;
            let name_len = bytes.get_u16_le() as usize;
            need(bytes, name_len, "name")?;
            let name = String::from_utf8(bytes[..name_len].to_vec())
                .map_err(|_| CheckpointError::Corrupt("non-utf8 name".into()))?;
            bytes.advance(name_len);
            need(bytes, 1, "ndim")?;
            let ndim = bytes.get_u8() as usize;
            need(bytes, 4 * ndim, "dims")?;
            let mut dims = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                dims.push(bytes.get_u32_le() as usize);
            }
            let numel: usize = dims.iter().product();
            need(bytes, 4 * numel, "tensor data")?;
            let mut data = Vec::with_capacity(numel);
            for _ in 0..numel {
                data.push(bytes.get_f32_le());
            }
            let tensor = Tensor::new(&dims, data)
                .map_err(|e| CheckpointError::Corrupt(format!("bad tensor: {e}")))?;
            params.push((name, tensor));
        }
        Ok(Checkpoint { params })
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// Returns I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and decode errors.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::mlp;

    #[test]
    fn roundtrip_bytes() {
        let model = mlp(8, 1);
        let ckpt = Checkpoint::capture(&model);
        let bytes = ckpt.to_bytes();
        let decoded = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt, decoded);
    }

    #[test]
    fn restore_into_fresh_model() {
        let trained = mlp(8, 1);
        let ckpt = Checkpoint::capture(&trained);
        let mut fresh = mlp(8, 2);
        assert_ne!(
            fresh.param("fc1.weight").unwrap().value.data(),
            trained.param("fc1.weight").unwrap().value.data()
        );
        ckpt.restore(&mut fresh).unwrap();
        assert_eq!(
            fresh.param("fc1.weight").unwrap().value.data(),
            trained.param("fc1.weight").unwrap().value.data()
        );
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(matches!(
            Checkpoint::from_bytes(b"nope"),
            Err(CheckpointError::Corrupt(_))
        ));
        let model = mlp(4, 0);
        let mut bytes = Checkpoint::capture(&model).to_bytes().to_vec();
        bytes[0] = b'X';
        assert!(Checkpoint::from_bytes(&bytes).is_err());
        let good = Checkpoint::capture(&model).to_bytes();
        assert!(Checkpoint::from_bytes(&good[..good.len() - 3]).is_err());
    }

    #[test]
    fn version_check() {
        let model = mlp(4, 0);
        let mut bytes = Checkpoint::capture(&model).to_bytes().to_vec();
        bytes[4] = 99;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn any_single_flipped_byte_is_rejected() {
        // The integrity contract behind `CheckpointError::Corrupt`: no
        // single corrupted byte may load successfully. (A flip in the
        // version field maps to UnsupportedVersion; both are rejections.)
        let model = mlp(4, 3);
        let good = Checkpoint::capture(&model).to_bytes().to_vec();
        let stride = (good.len() / 97).max(1); // sample positions, keep the test fast
        for pos in (0..good.len()).step_by(stride) {
            let mut bad = good.clone();
            bad[pos] ^= 0x20;
            assert!(
                Checkpoint::from_bytes(&bad).is_err(),
                "flipped byte at {pos} loaded successfully"
            );
        }
    }

    #[test]
    fn v1_without_footer_still_loads() {
        let model = mlp(4, 5);
        let ckpt = Checkpoint::capture(&model);
        let v2 = ckpt.to_bytes().to_vec();
        // A v1 file is the v2 body with the old version number and no CRC.
        let mut v1 = v2[..v2.len() - 4].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let decoded = Checkpoint::from_bytes(&v1).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn torn_write_is_rejected() {
        // A checkpoint cut off mid-tensor (simulating a torn write) must
        // fail the CRC, not decode a prefix.
        let model = mlp(8, 6);
        let bytes = Checkpoint::capture(&model).to_bytes();
        let torn = &bytes[..bytes.len() / 2];
        assert!(matches!(
            Checkpoint::from_bytes(torn),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("advcomp_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.advc");
        let model = mlp(8, 7);
        let ckpt = Checkpoint::capture(&model);
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(ckpt, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incompatible_restore_errors() {
        let ckpt = Checkpoint::from_params(vec![("ghost".into(), Tensor::zeros(&[2]))]);
        let mut model = mlp(4, 0);
        assert!(matches!(
            ckpt.restore(&mut model),
            Err(CheckpointError::Incompatible(_))
        ));
    }

    #[test]
    fn missing_file_errors() {
        assert!(matches!(
            Checkpoint::load(Path::new("/nonexistent/advcomp.ckpt")),
            Err(CheckpointError::Io(_))
        ));
    }
}
