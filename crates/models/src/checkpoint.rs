//! Versioned binary checkpoints for model parameters.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic   b"ADVC"
//! version u32          (2 for all-f32 snapshots, 3 when packed weights
//!                       are present; v1 still readable)
//! count   u32          number of entries
//! repeat count times:
//!   name_len u16, name utf-8 bytes
//!   tag      u8        (v3 only: 0 = f32 tensor, 1 = packed blocks)
//!   tag 0 (and every v1/v2 entry, which has no tag byte):
//!     ndim   u8,  dims  u32 × ndim
//!     data   f32 × prod(dims)
//!   tag 1 (packed block-quantised weights, see `tensor::quant`):
//!     kind_bits u8     (4 = Q4_0, 8 = Q8_0 code width)
//!     wf        u8×2   weight QFormat (int bits, frac bits)
//!     af        u8×2   activation QFormat (int bits, frac bits)
//!     ndim      u8,  dims u32 × ndim    logical (unpacked) shape
//!     n_scales  u32, scales f32 × n_scales   per-block scales
//!     n_codes   u32, codes  u8 × n_codes     packed block codes
//! crc     u32          (v2+) CRC-32 of every preceding byte
//! ```
//!
//! The CRC footer lets loaders — in particular the serving model registry —
//! reject torn or bit-flipped checkpoint files with
//! [`CheckpointError::Corrupt`] instead of silently restoring garbage
//! weights. Writers emit v2 for all-f32 snapshots (byte-identical to
//! pre-v3 output) and v3 only when frozen packed weights are present, so a
//! packed LeNet5 checkpoint stores block codes + scales instead of f32
//! weights — the size win the sparse size report and `BENCH_quant.json`
//! measure. v1 files (no footer) remain readable without verification.

use advcomp_nn::{QuantizedWeights, Sequential};
use advcomp_qformat::QFormat;
use advcomp_tensor::{QTensor, QuantKind, Tensor};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::path::Path;

const MAGIC: &[u8; 4] = b"ADVC";
/// Version written for all-f32 checkpoints.
const VERSION_F32: u32 = 2;
/// Version written when packed quantised entries are present.
const VERSION_PACKED: u32 = 3;
/// Oldest version still readable (pre-CRC files).
const MIN_VERSION: u32 = 1;

/// Entry tag in v3 files: a plain f32 tensor.
const TAG_F32: u8 = 0;
/// Entry tag in v3 files: packed block-quantised weights.
const TAG_PACKED: u8 = 1;

/// Errors raised by checkpoint encoding/decoding.
#[derive(Debug)]
pub enum CheckpointError {
    /// File I/O failed.
    Io(std::io::Error),
    /// The byte stream is not a valid checkpoint.
    Corrupt(String),
    /// The checkpoint version is unsupported.
    UnsupportedVersion(u32),
    /// Loading into a model failed (unknown name / wrong shape).
    Incompatible(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Incompatible(msg) => write!(f, "incompatible checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A serialisable snapshot of named parameter tensors, plus any frozen
/// packed weights the model carries (see [`Sequential::export_quantized`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    params: Vec<(String, Tensor)>,
    packed: Vec<(String, QuantizedWeights)>,
}

impl Checkpoint {
    /// Snapshots a model's current parameter values. Frozen layers
    /// contribute their packed blocks instead of f32 weights.
    pub fn capture(model: &Sequential) -> Self {
        Checkpoint {
            params: model.export_params(),
            packed: model.export_quantized(),
        }
    }

    /// Builds a checkpoint from raw `(name, tensor)` pairs.
    pub fn from_params(params: Vec<(String, Tensor)>) -> Self {
        Checkpoint {
            params,
            packed: Vec::new(),
        }
    }

    /// The stored f32 parameters.
    pub fn params(&self) -> &[(String, Tensor)] {
        &self.params
    }

    /// The stored packed weight entries (empty for v1/v2 snapshots).
    pub fn packed(&self) -> &[(String, QuantizedWeights)] {
        &self.packed
    }

    /// Restores these values into `model` (names must match). Packed
    /// entries are installed onto the owning layers, freezing them if the
    /// model still holds f32 weights — this is how the serving registry
    /// loads quantised variants straight into integer execution.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Incompatible`] on unknown names or shape
    /// mismatches.
    pub fn restore(&self, model: &mut Sequential) -> Result<(), CheckpointError> {
        model
            .import_params(&self.params)
            .map_err(|e| CheckpointError::Incompatible(e.to_string()))?;
        for (name, weights) in &self.packed {
            let installed = model
                .install_quantized(name, weights)
                .map_err(|e| CheckpointError::Incompatible(e.to_string()))?;
            if !installed {
                return Err(CheckpointError::Incompatible(format!(
                    "no layer owns packed weight {name}"
                )));
            }
        }
        Ok(())
    }

    /// Encodes to the binary format: v2 (byte-identical to pre-packed
    /// writers) when every entry is f32, v3 when packed entries exist.
    pub fn to_bytes(&self) -> Bytes {
        let version = if self.packed.is_empty() {
            VERSION_F32
        } else {
            VERSION_PACKED
        };
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(version);
        buf.put_u32_le((self.params.len() + self.packed.len()) as u32);
        for (name, tensor) in &self.params {
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name.as_bytes());
            if version >= VERSION_PACKED {
                buf.put_u8(TAG_F32);
            }
            buf.put_u8(tensor.ndim() as u8);
            for &d in tensor.shape() {
                buf.put_u32_le(d as u32);
            }
            for &v in tensor.data() {
                buf.put_f32_le(v);
            }
        }
        for (name, weights) in &self.packed {
            let qt = weights.tensor();
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name.as_bytes());
            buf.put_u8(TAG_PACKED);
            buf.put_u8(qt.kind().bits() as u8);
            buf.put_u8(qt.format().int_bits() as u8);
            buf.put_u8(qt.format().frac_bits() as u8);
            buf.put_u8(weights.act_format().int_bits() as u8);
            buf.put_u8(weights.act_format().frac_bits() as u8);
            buf.put_u8(qt.shape().len() as u8);
            for &d in qt.shape() {
                buf.put_u32_le(d as u32);
            }
            buf.put_u32_le(qt.scales().len() as u32);
            for &s in qt.scales() {
                buf.put_f32_le(s);
            }
            buf.put_u32_le(qt.codes().len() as u32);
            buf.put_slice(qt.codes());
        }
        let body = buf.freeze();
        let crc = crate::crc32::crc32(&body);
        let mut out = BytesMut::with_capacity(body.len() + 4);
        out.put_slice(&body);
        out.put_u32_le(crc);
        out.freeze()
    }

    /// Decodes from the binary format.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] on truncation or bad magic, and
    /// [`CheckpointError::UnsupportedVersion`] for future versions.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        need(bytes, 12, "header")?;
        if &bytes[..4] != MAGIC {
            return Err(CheckpointError::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if !(MIN_VERSION..=VERSION_PACKED).contains(&version) {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        // v2 carries a CRC-32 footer over everything before it; verify the
        // whole file before trusting any field of the body.
        let mut bytes = if version >= 2 {
            need(bytes, 16, "crc footer")?;
            let (body, footer) = bytes.split_at(bytes.len() - 4);
            let stored = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
            let actual = crate::crc32::crc32(body);
            if stored != actual {
                return Err(CheckpointError::Corrupt(format!(
                    "crc mismatch: stored {stored:#010x}, computed {actual:#010x}"
                )));
            }
            body
        } else {
            bytes
        };
        bytes.advance(8); // magic + version
        let count = bytes.get_u32_le() as usize;
        let mut params = Vec::with_capacity(count);
        let mut packed = Vec::new();
        for _ in 0..count {
            need(bytes, 2, "name length")?;
            let name_len = bytes.get_u16_le() as usize;
            need(bytes, name_len, "name")?;
            let name = String::from_utf8(bytes[..name_len].to_vec())
                .map_err(|_| CheckpointError::Corrupt("non-utf8 name".into()))?;
            bytes.advance(name_len);
            let tag = if version >= VERSION_PACKED {
                need(bytes, 1, "entry tag")?;
                bytes.get_u8()
            } else {
                TAG_F32
            };
            match tag {
                TAG_F32 => {
                    let tensor = decode_f32_entry(&mut bytes)?;
                    params.push((name, tensor));
                }
                TAG_PACKED => {
                    let weights = decode_packed_entry(&mut bytes)?;
                    packed.push((name, weights));
                }
                other => {
                    return Err(CheckpointError::Corrupt(format!(
                        "unknown entry tag {other}"
                    )))
                }
            }
        }
        Ok(Checkpoint { params, packed })
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// Returns I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns I/O errors and decode errors.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

fn need(buf: &[u8], n: usize, what: &str) -> Result<(), CheckpointError> {
    if buf.remaining() < n {
        return Err(CheckpointError::Corrupt(format!("truncated at {what}")));
    }
    Ok(())
}

/// Decodes the body of an f32 tensor entry (every v1/v2 entry; v3 tag 0).
fn decode_f32_entry(bytes: &mut &[u8]) -> Result<Tensor, CheckpointError> {
    need(bytes, 1, "ndim")?;
    let ndim = bytes.get_u8() as usize;
    need(bytes, 4 * ndim, "dims")?;
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        dims.push(bytes.get_u32_le() as usize);
    }
    let numel: usize = dims.iter().product();
    need(bytes, 4 * numel, "tensor data")?;
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(bytes.get_f32_le());
    }
    Tensor::new(&dims, data).map_err(|e| CheckpointError::Corrupt(format!("bad tensor: {e}")))
}

/// Decodes the body of a packed block-quantised entry (v3 tag 1).
fn decode_packed_entry(bytes: &mut &[u8]) -> Result<QuantizedWeights, CheckpointError> {
    need(bytes, 6, "packed header")?;
    let kind = match bytes.get_u8() {
        4 => QuantKind::Q4,
        8 => QuantKind::Q8,
        other => {
            return Err(CheckpointError::Corrupt(format!(
                "unknown packed code width {other}"
            )))
        }
    };
    let (wi, wf) = (bytes.get_u8() as u32, bytes.get_u8() as u32);
    let (ai, af) = (bytes.get_u8() as u32, bytes.get_u8() as u32);
    let weight_format = QFormat::new(wi, wf)
        .map_err(|e| CheckpointError::Corrupt(format!("bad weight format: {e}")))?;
    let act_format = QFormat::new(ai, af)
        .map_err(|e| CheckpointError::Corrupt(format!("bad activation format: {e}")))?;
    let ndim = bytes.get_u8() as usize;
    need(bytes, 4 * ndim + 4, "packed dims")?;
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        dims.push(bytes.get_u32_le() as usize);
    }
    let n_scales = bytes.get_u32_le() as usize;
    need(bytes, 4 * n_scales + 4, "block scales")?;
    let mut scales = Vec::with_capacity(n_scales);
    for _ in 0..n_scales {
        scales.push(bytes.get_f32_le());
    }
    let n_codes = bytes.get_u32_le() as usize;
    need(bytes, n_codes, "block codes")?;
    let codes = bytes[..n_codes].to_vec();
    bytes.advance(n_codes);
    let qt = QTensor::from_parts(kind, dims, weight_format, scales, codes)
        .map_err(|e| CheckpointError::Corrupt(format!("bad packed tensor: {e}")))?;
    Ok(QuantizedWeights::new(qt, act_format))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::mlp;

    #[test]
    fn roundtrip_bytes() {
        let model = mlp(8, 1);
        let ckpt = Checkpoint::capture(&model);
        let bytes = ckpt.to_bytes();
        let decoded = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt, decoded);
    }

    #[test]
    fn restore_into_fresh_model() {
        let trained = mlp(8, 1);
        let ckpt = Checkpoint::capture(&trained);
        let mut fresh = mlp(8, 2);
        assert_ne!(
            fresh.param("fc1.weight").unwrap().value.data(),
            trained.param("fc1.weight").unwrap().value.data()
        );
        ckpt.restore(&mut fresh).unwrap();
        assert_eq!(
            fresh.param("fc1.weight").unwrap().value.data(),
            trained.param("fc1.weight").unwrap().value.data()
        );
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(matches!(
            Checkpoint::from_bytes(b"nope"),
            Err(CheckpointError::Corrupt(_))
        ));
        let model = mlp(4, 0);
        let mut bytes = Checkpoint::capture(&model).to_bytes().to_vec();
        bytes[0] = b'X';
        assert!(Checkpoint::from_bytes(&bytes).is_err());
        let good = Checkpoint::capture(&model).to_bytes();
        assert!(Checkpoint::from_bytes(&good[..good.len() - 3]).is_err());
    }

    #[test]
    fn version_check() {
        let model = mlp(4, 0);
        let mut bytes = Checkpoint::capture(&model).to_bytes().to_vec();
        bytes[4] = 99;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn any_single_flipped_byte_is_rejected() {
        // The integrity contract behind `CheckpointError::Corrupt`: no
        // single corrupted byte may load successfully. (A flip in the
        // version field maps to UnsupportedVersion; both are rejections.)
        let model = mlp(4, 3);
        let good = Checkpoint::capture(&model).to_bytes().to_vec();
        let stride = (good.len() / 97).max(1); // sample positions, keep the test fast
        for pos in (0..good.len()).step_by(stride) {
            let mut bad = good.clone();
            bad[pos] ^= 0x20;
            assert!(
                Checkpoint::from_bytes(&bad).is_err(),
                "flipped byte at {pos} loaded successfully"
            );
        }
    }

    #[test]
    fn v1_without_footer_still_loads() {
        let model = mlp(4, 5);
        let ckpt = Checkpoint::capture(&model);
        let v2 = ckpt.to_bytes().to_vec();
        // A v1 file is the v2 body with the old version number and no CRC.
        let mut v1 = v2[..v2.len() - 4].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let decoded = Checkpoint::from_bytes(&v1).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn torn_write_is_rejected() {
        // A checkpoint cut off mid-tensor (simulating a torn write) must
        // fail the CRC, not decode a prefix.
        let model = mlp(8, 6);
        let bytes = Checkpoint::capture(&model).to_bytes();
        let torn = &bytes[..bytes.len() / 2];
        assert!(matches!(
            Checkpoint::from_bytes(torn),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("advcomp_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.advc");
        let model = mlp(8, 7);
        let ckpt = Checkpoint::capture(&model);
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(ckpt, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incompatible_restore_errors() {
        let ckpt = Checkpoint::from_params(vec![("ghost".into(), Tensor::zeros(&[2]))]);
        let mut model = mlp(4, 0);
        assert!(matches!(
            ckpt.restore(&mut model),
            Err(CheckpointError::Incompatible(_))
        ));
    }

    #[test]
    fn missing_file_errors() {
        assert!(matches!(
            Checkpoint::load(Path::new("/nonexistent/advcomp.ckpt")),
            Err(CheckpointError::Io(_))
        ));
    }

    fn frozen_lenet(bits: u32) -> Sequential {
        let mut model = crate::builders::lenet5(1.0, 11);
        let fmt = QFormat::for_bitwidth(bits).unwrap();
        let frozen = model.freeze_quantized(fmt, fmt).unwrap();
        assert!(frozen > 0, "lenet5 has packable layers");
        model
    }

    #[test]
    fn packed_roundtrip_is_v3_with_crc() {
        let model = frozen_lenet(8);
        let ckpt = Checkpoint::capture(&model);
        assert!(!ckpt.packed().is_empty());
        let bytes = ckpt.to_bytes();
        assert_eq!(
            u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            3
        );
        let decoded = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, ckpt);
        // The CRC footer still guards v3 files.
        let mut torn = bytes.to_vec();
        torn.truncate(torn.len() / 2);
        assert!(Checkpoint::from_bytes(&torn).is_err());
        let mut flipped = bytes.to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(Checkpoint::from_bytes(&flipped).is_err());
    }

    #[test]
    fn packed_restore_freezes_fresh_model() {
        let frozen = frozen_lenet(8);
        let ckpt = Checkpoint::capture(&frozen);
        // Restoring into a dense f32 model installs the packed weights and
        // freezes the owning layers (the serve registry load path).
        let mut fresh = crate::builders::lenet5(1.0, 99);
        ckpt.restore(&mut fresh).unwrap();
        assert_eq!(Checkpoint::capture(&fresh), ckpt);
        // Frozen layers are inference-only after restore.
        assert!(fresh
            .backward(&advcomp_tensor::Tensor::zeros(&[1, 10]))
            .is_err());
    }

    #[test]
    fn packed_restore_rejects_unknown_owner() {
        let ckpt = Checkpoint::capture(&frozen_lenet(8));
        let mut mlp = crate::builders::mlp(8, 1);
        assert!(matches!(
            ckpt.restore(&mut mlp),
            Err(CheckpointError::Incompatible(_))
        ));
    }

    /// Acceptance pin: a packed LeNet5 checkpoint is at most a third of the
    /// f32 v2 bytes at 8-bit, and Q4 shrinks further still.
    #[test]
    fn packed_checkpoint_is_at_most_a_third_of_f32() {
        let dense_bytes = Checkpoint::capture(&crate::builders::lenet5(1.0, 11))
            .to_bytes()
            .len();
        let q8_bytes = Checkpoint::capture(&frozen_lenet(8)).to_bytes().len();
        let q4_bytes = Checkpoint::capture(&frozen_lenet(4)).to_bytes().len();
        assert!(
            q8_bytes * 3 <= dense_bytes,
            "packed q8 checkpoint {q8_bytes} B vs f32 {dense_bytes} B"
        );
        assert!(
            q4_bytes < q8_bytes,
            "packed q4 {q4_bytes} B should undercut q8 {q8_bytes} B"
        );
    }
}
