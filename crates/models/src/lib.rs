//! Reference models: LeNet5 and CifarNet (§3.2 of the paper).
//!
//! Both builders produce [`advcomp_nn::Sequential`] networks with
//! `FakeQuant` activation-quantisation points already in place (disabled by
//! default — they are identities until a compression pass installs a
//! format), and a `width` multiplier so experiments can scale compute
//! without changing topology.
//!
//! * [`lenet5`] — the classic conv-pool ×2 + three dense layers on 28×28×1
//!   input. The paper's LeNet5 has 431K parameters and hits 99.36% on
//!   MNIST; [`lenet5`] at width 1.0 reproduces the topology (parameter
//!   count depends on width).
//! * [`cifarnet`] — a VGG-style conv stack on 32×32×3 input standing in for
//!   Zhao et al. 2018's 1.3M-parameter CifarNet (85.93% on CIFAR-10).
//!
//! [`Checkpoint`] provides a compact, versioned binary format for model
//! parameters so trained baselines can be reused across experiments.

mod builders;
mod checkpoint;
mod crc32;

pub use builders::{cifarnet, lenet5, lenet5_classic, mlp, ModelKind};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use crc32::crc32;
