//! Attack smoke tests on a fixed-weight linear toy model.
//!
//! A single dense layer makes the decision geometry exact: the minimum L2
//! perturbation that flips class 0 to class 1 is `margin / ‖w₁ − w₀‖₂`.
//! That turns "the attack works" into checkable conformance — DeepFool must
//! land within its overshoot of the analytic optimum, and IFGSM must flip
//! the label while respecting its ε·iterations L∞ budget.
//!
//! No rand, no fixtures: weights are hand-written constants, so this test
//! is identical in every environment.

use advcomp_attacks::{Attack, DeepFool, Ifgsm};
use advcomp_nn::{Dense, Layer, Mode, Sequential};
use advcomp_tensor::Tensor;
use rand::SeedableRng;

/// `y = W x + b` with `W = [[1,0,0],[0,1,0]]`, `b = [0.3, 0]`.
///
/// At `x = [0.5, 0.4, 0.5]`: logits `[0.8, 0.4]` → class 0 with margin
/// 0.4; `w₁ − w₀ = [-1, 1, 0]` has L2 norm √2, so the nearest point of the
/// decision boundary is at distance `0.4 / √2 ≈ 0.2828`.
fn toy() -> (Sequential, Tensor, Vec<usize>) {
    let mut throwaway = rand::rngs::StdRng::seed_from_u64(0);
    let mut dense = Dense::with_name("lin", 3, 2, &mut throwaway);
    for p in dense.params_mut() {
        if p.name == "lin.weight" {
            p.value = Tensor::new(&[2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]).unwrap();
        } else {
            p.value = Tensor::new(&[2], vec![0.3, 0.0]).unwrap();
        }
    }
    let model = Sequential::new(vec![Box::new(dense)]);
    let x = Tensor::new(&[1, 3], vec![0.5, 0.4, 0.5]).unwrap();
    (model, x, vec![0usize])
}

fn predicted_class(model: &mut Sequential, x: &Tensor) -> usize {
    let logits = model.forward(x, Mode::Eval).unwrap();
    let d = logits.data();
    if d[0] >= d[1] {
        0
    } else {
        1
    }
}

const MIN_L2: f32 = 0.282_842_7; // margin 0.4 / sqrt(2)

#[test]
fn clean_prediction_is_class_zero() {
    let (mut model, x, _) = toy();
    assert_eq!(predicted_class(&mut model, &x), 0);
}

#[test]
fn deepfool_flips_label_near_the_analytic_optimum() {
    let (mut model, x, labels) = toy();
    let overshoot = 0.02;
    let attack = DeepFool::new(overshoot, 20).unwrap();
    let adv = attack.generate(&mut model, &x, &labels).unwrap();

    assert_eq!(predicted_class(&mut model, &adv), 1, "label must flip");

    let delta = adv.sub(&x).unwrap();
    let l2 = delta.l2_norm();
    // Lower bound: no attack can flip with less than the boundary distance.
    assert!(
        l2 >= MIN_L2 * 0.99,
        "perturbation {l2} below the geometric minimum {MIN_L2}"
    );
    // Upper bound: on a linear model DeepFool converges in one step, so the
    // perturbation is the minimum scaled by (1 + overshoot), plus f32 slack.
    let budget = MIN_L2 * (1.0 + overshoot) * 1.05;
    assert!(
        l2 <= budget,
        "perturbation {l2} exceeds DeepFool budget {budget}"
    );
}

#[test]
fn ifgsm_flips_label_within_linf_budget() {
    let (mut model, x, labels) = toy();
    let (eps, iters) = (0.1f32, 5usize);
    let attack = Ifgsm::new(eps, iters).unwrap();
    let adv = attack.generate(&mut model, &x, &labels).unwrap();

    assert_eq!(predicted_class(&mut model, &adv), 1, "label must flip");

    // Per Algorithm 1 each iteration steps at most ε per pixel, so the
    // total L∞ budget is ε · iterations.
    let delta = adv.sub(&x).unwrap();
    assert!(
        delta.linf_norm() <= eps * iters as f32 + 1e-6,
        "L∞ {} exceeds {}",
        delta.linf_norm(),
        eps * iters as f32
    );
    // And the result stays in the pixel box.
    assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
}

#[test]
fn ifgsm_under_budget_cannot_flip() {
    // Sanity check on the geometry itself: a budget strictly below the
    // margin must leave the label unchanged. (Flipping needs L∞ ≥ 0.2:
    // each unit of L∞ moves the logit gap by at most ‖w₁ − w₀‖₁ = 2.)
    let (mut model, x, labels) = toy();
    let attack = Ifgsm::new(0.04, 4).unwrap(); // total L∞ ≤ 0.16 < 0.2
    let adv = attack.generate(&mut model, &x, &labels).unwrap();
    assert_eq!(predicted_class(&mut model, &adv), 0);
}
