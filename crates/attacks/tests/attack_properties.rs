//! Property-based tests for attack invariants, on randomly-initialised
//! networks and random inputs — the guarantees the transfer harness relies
//! on regardless of training state.

use advcomp_attacks::{Attack, DeepFool, Fgm, Fgsm, Ifgm, Ifgsm, PerturbationStats, Pgd};
use advcomp_nn::{Dense, Relu, Sequential};
use advcomp_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

fn net(seed: u64, inputs: usize, classes: usize) -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Box::new(Dense::new(inputs, 10, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(10, classes, &mut rng)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every attack keeps outputs in the valid pixel box and never returns
    /// NaN, for arbitrary inputs and random model weights.
    #[test]
    fn all_attacks_respect_pixel_box(
        seed in 0u64..500,
        pixels in proptest::collection::vec(0.0f32..1.0, 3 * 6),
    ) {
        let mut model = net(seed, 6, 4);
        let x = Tensor::new(&[3, 6], pixels).unwrap();
        let labels = vec![0usize, 1, 3];
        let attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(Fgm::new(1.0).unwrap()),
            Box::new(Fgsm::new(0.1).unwrap()),
            Box::new(Ifgsm::new(0.05, 4).unwrap()),
            Box::new(Ifgm::new(2.0, 4).unwrap()),
            Box::new(DeepFool::new(0.02, 4).unwrap()),
            Box::new(Pgd::new(0.1, 0.03, 4).unwrap()),
        ];
        for attack in attacks {
            let adv = attack.generate(&mut model, &x, &labels).unwrap();
            prop_assert_eq!(adv.shape(), x.shape(), "{} changed shape", attack.name());
            prop_assert!(
                adv.data().iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)),
                "{} escaped the pixel box", attack.name()
            );
        }
    }

    /// Attacks never mutate model parameters.
    #[test]
    fn attacks_read_only(seed in 0u64..500) {
        let mut model = net(seed, 5, 3);
        let before: Vec<Vec<f32>> = model.params().iter().map(|p| p.value.data().to_vec()).collect();
        let x = Tensor::full(&[2, 5], 0.5);
        let labels = vec![0usize, 2];
        for attack in [
            Box::new(Ifgsm::new(0.05, 3).unwrap()) as Box<dyn Attack>,
            Box::new(DeepFool::new(0.02, 3).unwrap()),
            Box::new(Pgd::new(0.1, 0.05, 3).unwrap()),
        ] {
            attack.generate(&mut model, &x, &labels).unwrap();
        }
        let after: Vec<Vec<f32>> = model.params().iter().map(|p| p.value.data().to_vec()).collect();
        prop_assert_eq!(before, after);
    }

    /// PerturbationStats are consistent with attack budgets.
    #[test]
    fn stats_track_budget(
        seed in 0u64..200,
        eps in 0.01f32..0.2,
        iters in 1usize..5,
    ) {
        let mut model = net(seed, 8, 3);
        let x = Tensor::full(&[2, 8], 0.5);
        let labels = vec![1usize, 2];
        let attack = Ifgsm::new(eps, iters).unwrap();
        let adv = attack.generate(&mut model, &x, &labels).unwrap();
        let stats = PerturbationStats::between(&x, &adv).unwrap();
        prop_assert!(stats.linf <= (eps * iters as f32) as f64 + 1e-5);
        prop_assert!(stats.l0_fraction <= 1.0);
        // L2 of a single sample is bounded by sqrt(dim) * linf.
        prop_assert!(stats.l2 <= (8f64).sqrt() * stats.linf + 1e-6);
    }

    /// Attack determinism: the same (model, input, labels) produce the same
    /// samples — required for the paired scenario comparisons.
    #[test]
    fn attacks_are_deterministic(seed in 0u64..200) {
        let mut model = net(seed, 5, 3);
        let x = Tensor::full(&[2, 5], 0.4);
        let labels = vec![0usize, 1];
        for attack in [
            Box::new(Ifgsm::new(0.03, 3).unwrap()) as Box<dyn Attack>,
            Box::new(Ifgm::new(1.0, 3).unwrap()),
            Box::new(DeepFool::new(0.02, 3).unwrap()),
            Box::new(Pgd::new(0.05, 0.02, 3).unwrap()), // seeded random start
        ] {
            let a = attack.generate(&mut model, &x, &labels).unwrap();
            let b = attack.generate(&mut model, &x, &labels).unwrap();
            prop_assert_eq!(a.data(), b.data(), "{} is nondeterministic", attack.name());
        }
    }
}
