//! Single-step fast gradient attacks (Goodfellow et al. 2015).

use crate::grad::loss_input_grad;
use crate::{step, Attack, AttackError, Result};
use advcomp_nn::Sequential;
use advcomp_tensor::Tensor;

fn check_epsilon(epsilon: f32) -> Result<()> {
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(AttackError::InvalidConfig(format!(
            "epsilon {epsilon} must be positive and finite"
        )));
    }
    Ok(())
}

/// Fast gradient method: `X' = clip(X + ε · ∇X J(θ, X, y))` (Equation 4).
///
/// The perturbation scales with the raw gradient amplitude, which is why
/// high-accuracy, low-loss networks (the paper's LeNet5) need very large
/// `ε` for FGM-family attacks to bite (§4.1).
#[derive(Debug, Clone, Copy)]
pub struct Fgm {
    epsilon: f32,
}

impl Fgm {
    /// Creates the attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for non-positive `epsilon`.
    pub fn new(epsilon: f32) -> Result<Self> {
        check_epsilon(epsilon)?;
        Ok(Fgm { epsilon })
    }

    /// The step size ε.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }
}

impl Attack for Fgm {
    fn name(&self) -> &'static str {
        "fgm"
    }

    fn generate(&self, model: &mut Sequential, x: &Tensor, labels: &[usize]) -> Result<Tensor> {
        let g = loss_input_grad(model, x, labels)?;
        let mut adv = x.clone();
        // Single step: no per-iterate ball to clip to.
        step::grad_step(&mut adv, &g, self.epsilon, f32::INFINITY)?;
        Ok(adv)
    }
}

/// Fast gradient sign method: `X' = clip(X + ε · sign(∇X J))` (Equation 5).
#[derive(Debug, Clone, Copy)]
pub struct Fgsm {
    epsilon: f32,
}

impl Fgsm {
    /// Creates the attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for non-positive `epsilon`.
    pub fn new(epsilon: f32) -> Result<Self> {
        check_epsilon(epsilon)?;
        Ok(Fgsm { epsilon })
    }

    /// The step size ε (also the L∞ bound of the perturbation).
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }
}

impl Attack for Fgsm {
    fn name(&self) -> &'static str {
        "fgsm"
    }

    fn generate(&self, model: &mut Sequential, x: &Tensor, labels: &[usize]) -> Result<Tensor> {
        let g = loss_input_grad(model, x, labels)?;
        let mut adv = x.clone();
        step::sign_step(&mut adv, &g, self.epsilon)?;
        Ok(adv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::Dense;
    use rand::SeedableRng;

    fn net() -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        Sequential::new(vec![Box::new(Dense::new(4, 2, &mut rng))])
    }

    #[test]
    fn construction_validates_epsilon() {
        assert!(Fgm::new(0.0).is_err());
        assert!(Fgm::new(-1.0).is_err());
        assert!(Fgm::new(f32::NAN).is_err());
        assert!(Fgsm::new(0.0).is_err());
        assert!(Fgsm::new(0.1).is_ok());
    }

    #[test]
    fn fgsm_perturbation_within_linf_ball() {
        let mut model = net();
        let x = Tensor::full(&[3, 4], 0.5);
        let attack = Fgsm::new(0.1).unwrap();
        let adv = attack.generate(&mut model, &x, &[0, 1, 0]).unwrap();
        let delta = adv.sub(&x).unwrap();
        assert!(delta.linf_norm() <= 0.1 + 1e-6);
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn fgsm_increases_loss() {
        use advcomp_nn::{softmax_cross_entropy, Mode};
        let mut model = net();
        let x = Tensor::full(&[4, 4], 0.5);
        let labels = vec![0, 1, 0, 1];
        let before = {
            let l = model.forward(&x, Mode::Eval).unwrap();
            softmax_cross_entropy(&l, &labels).unwrap().loss
        };
        let adv = Fgsm::new(0.2)
            .unwrap()
            .generate(&mut model, &x, &labels)
            .unwrap();
        let after = {
            let l = model.forward(&adv, Mode::Eval).unwrap();
            softmax_cross_entropy(&l, &labels).unwrap().loss
        };
        assert!(after > before, "loss {before} -> {after}");
    }

    #[test]
    fn fgm_scales_with_gradient() {
        let mut model = net();
        let x = Tensor::full(&[1, 4], 0.5);
        let small = Fgm::new(0.01)
            .unwrap()
            .generate(&mut model, &x, &[0])
            .unwrap();
        let large = Fgm::new(10.0)
            .unwrap()
            .generate(&mut model, &x, &[0])
            .unwrap();
        let d_small = small.sub(&x).unwrap().l2_norm();
        let d_large = large.sub(&x).unwrap().l2_norm();
        assert!(d_large > d_small);
    }

    #[test]
    fn attacks_leave_params_untouched() {
        let mut model = net();
        let before = model.export_params();
        let x = Tensor::full(&[2, 4], 0.5);
        Fgsm::new(0.1)
            .unwrap()
            .generate(&mut model, &x, &[0, 1])
            .unwrap();
        Fgm::new(0.1)
            .unwrap()
            .generate(&mut model, &x, &[0, 1])
            .unwrap();
        for ((_, a), (_, b)) in before.iter().zip(model.export_params().iter()) {
            assert_eq!(a.data(), b.data());
        }
    }
}
