//! White-box adversarial attacks (§2.3, §3.3 of the paper).
//!
//! All five attacks the paper defines are implemented against
//! [`advcomp_nn::Sequential`] networks:
//!
//! * [`Fgm`] — fast gradient method, `η = ε · ∇X J(θ, X, y)` (Equation 4);
//! * [`Fgsm`] — fast gradient *sign* method, `η = ε · sign(∇X J)`
//!   (Equation 5);
//! * [`Ifgsm`] — iterative FGSM (Algorithm 1): per-iteration sign step,
//!   clipped to stay within `ε` of the previous iterate and inside the valid
//!   pixel range `[0, 1]`;
//! * [`Ifgm`] — iterative FGM: identical loop but the step uses raw gradient
//!   amplitudes, `N = ∇X J`;
//! * [`DeepFool`] — Moosavi-Dezfooli et al.'s L2 multi-class boundary
//!   attack, iteratively projecting onto the nearest linearised decision
//!   boundary;
//! * [`Pgd`] — projected gradient descent with random start (extension:
//!   the stronger first-order adversary a follow-up study would use).
//!
//! [`PaperParams`] carries the exact Table 1 hyper-parameters. Every attack
//! implements the [`Attack`] trait so the transfer harness in
//! `advcomp-core` treats them uniformly.
//!
//! Attack *evaluation* (transfer accuracy, black-box oracle queries) runs
//! eval-only forwards through a compiled [`PlannedEval`] plan; gradient
//! crafting stays on the `Sequential` forward/backward path.
//!
//! # Example
//!
//! ```no_run
//! use advcomp_attacks::{Attack, Ifgsm};
//! # fn demo(model: &mut advcomp_nn::Sequential,
//! #         x: &advcomp_tensor::Tensor, y: &[usize])
//! #         -> Result<(), advcomp_attacks::AttackError> {
//! let attack = Ifgsm::new(0.02, 12)?;
//! let x_adv = attack.generate(model, x, y)?;
//! # Ok(())
//! # }
//! ```

mod deepfool;
mod error;
mod fgm;
mod grad;
mod iterative;
mod params;
mod pgd;
mod planned;
mod stats;
pub mod step;
mod universal;

pub use deepfool::DeepFool;
pub use error::AttackError;
pub use fgm::{Fgm, Fgsm};
pub use grad::loss_input_grad;
pub use iterative::{Ifgm, Ifgsm};
pub use params::{AttackKind, AttackParams, NetKind, PaperParams};
pub use pgd::Pgd;
pub use planned::PlannedEval;
pub use stats::PerturbationStats;
pub use universal::{craft_uap, Uap, UapConfig};

use advcomp_nn::Sequential;
use advcomp_tensor::Tensor;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, AttackError>;

/// A white-box adversarial attack.
///
/// Implementations consume a batch of clean inputs in `[0, 1]` with their
/// true labels and return adversarial inputs of the same shape, also in
/// `[0, 1]`. The model is taken mutably because computing input gradients
/// requires running its forward/backward machinery; attacks must leave
/// parameter *values* untouched.
pub trait Attack: Send + Sync {
    /// Short identifier, e.g. `"ifgsm"`.
    fn name(&self) -> &'static str;

    /// Crafts adversarial examples for `(x, labels)` against `model`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] on shape/label mismatches or network errors.
    fn generate(&self, model: &mut Sequential, x: &Tensor, labels: &[usize]) -> Result<Tensor>;
}
