//! Compiled evaluation forwards for attack loops.
//!
//! Crafting adversarial samples needs the `Sequential` forward/backward
//! machinery (input gradients), but *measuring* an attack does not: the
//! transfer harness and black-box oracle only run eval-mode forwards, over
//! and over, on the same victim. [`PlannedEval`] compiles the victim once
//! with the graph compiler (`advcomp-graph`) and reuses the plan — and its
//! activation arena — for every subsequent evaluation batch. The plan's
//! forward is bit-identical to `Sequential::forward(Mode::Eval)` (the
//! `graph_parity` suite enforces this), so accuracies and predictions are
//! unchanged; only the cost per query drops.
//!
//! A model the compiler cannot lower falls back to the layer-at-a-time
//! forward transparently.

use crate::Result;
use advcomp_graph::ExecPlan;
use advcomp_nn::{accuracy, Mode, Sequential};
use advcomp_tensor::Tensor;

/// A reusable, compiled eval-forward for one victim model.
///
/// Holds only the plan (arena, packed weights, schedule); the model itself
/// stays with the caller and is used as a fallback when compilation or a
/// later forward is rejected.
#[derive(Debug)]
pub struct PlannedEval {
    plan: Option<ExecPlan>,
}

impl PlannedEval {
    /// Compiles `model` for per-sample inputs of `sample_shape` (no batch
    /// axis). Never fails: an uncompilable model yields a fallback-only
    /// evaluator.
    pub fn compile(model: &Sequential, sample_shape: &[usize]) -> Self {
        PlannedEval {
            plan: ExecPlan::compile(model, sample_shape).ok(),
        }
    }

    /// Whether a compiled plan backs this evaluator (false = every call
    /// goes through `Sequential`).
    pub fn is_compiled(&self) -> bool {
        self.plan.is_some()
    }

    /// Eval-mode logits for `x`, through the plan when possible.
    ///
    /// # Errors
    ///
    /// Propagates network errors from the fallback forward.
    pub fn logits(&mut self, model: &mut Sequential, x: &Tensor) -> Result<Tensor> {
        if let Some(plan) = &mut self.plan {
            if let Ok(out) = plan.forward(x) {
                return Ok(out);
            }
            // The plan rejected this input (e.g. a differently-shaped
            // probe); drop it rather than paying a failed attempt per call.
            self.plan = None;
        }
        model.forward(x, Mode::Eval).map_err(Into::into)
    }

    /// Top-1 predictions for `x`.
    ///
    /// # Errors
    ///
    /// As [`PlannedEval::logits`].
    pub fn predictions(&mut self, model: &mut Sequential, x: &Tensor) -> Result<Vec<usize>> {
        let logits = self.logits(model, x)?;
        logits
            .argmax_rows()
            .map_err(advcomp_nn::NnError::from)
            .map_err(Into::into)
    }

    /// Top-1 accuracy of `model` on `(x, labels)`.
    ///
    /// # Errors
    ///
    /// As [`PlannedEval::logits`], plus label/batch mismatches.
    pub fn accuracy(
        &mut self,
        model: &mut Sequential,
        x: &Tensor,
        labels: &[usize],
    ) -> Result<f64> {
        let logits = self.logits(model, x)?;
        accuracy(&logits, labels).map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::{Dense, Relu};
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(6, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 4, &mut rng)),
        ])
    }

    fn batch(seed: u64, n: usize) -> Tensor {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        advcomp_tensor::Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[n, 6], &mut rng)
    }

    #[test]
    fn planned_eval_matches_sequential() {
        let mut model = net(3);
        let mut eval = PlannedEval::compile(&model, &[6]);
        assert!(eval.is_compiled());
        let x = batch(4, 5);
        let want = model.forward(&x, Mode::Eval).unwrap();
        let got = eval.logits(&mut model, &x).unwrap();
        assert_eq!(want.data(), got.data());
        let labels = vec![0usize; 5];
        let a = eval.accuracy(&mut model, &x, &labels).unwrap();
        let b = accuracy(&want, &labels).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            eval.predictions(&mut model, &x).unwrap(),
            want.argmax_rows().unwrap()
        );
    }

    #[test]
    fn shape_mismatch_falls_back_to_sequential() {
        let mut model = net(5);
        // Compiled for the wrong sample shape: the first call drops the
        // plan and the fallback (which flattens nothing here) answers.
        let mut eval = PlannedEval::compile(&model, &[3]);
        let x = batch(6, 2);
        let out = eval.logits(&mut model, &x).unwrap();
        assert_eq!(out.shape(), &[2, 4]);
        assert!(!eval.is_compiled(), "stale plan must be dropped");
    }
}
