//! Iterative fast-gradient attacks (Kurakin et al. 2016; the paper's
//! Algorithm 1).

use crate::grad::loss_input_grad;
use crate::{step, Attack, AttackError, Result};
use advcomp_nn::Sequential;
use advcomp_tensor::Tensor;

fn check(epsilon: f32, iterations: usize) -> Result<()> {
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(AttackError::InvalidConfig(format!(
            "epsilon {epsilon} must be positive and finite"
        )));
    }
    if iterations == 0 {
        return Err(AttackError::InvalidConfig("iterations must be >= 1".into()));
    }
    Ok(())
}

/// Numerical-health guard shared by the iterative attacks. Hosts the
/// `attack_iter` fault-injection site, then reports whether the gradient is
/// unusable (NaN/Inf anywhere). A `true` return means the caller must stop
/// iterating and keep the last good iterate — one poisoned step would
/// otherwise spread NaN through every later iterate and surface as a
/// nonsense accuracy number instead of a recorded incident.
pub(crate) fn gradient_unusable(attack: &'static str, iteration: usize, g: &mut Tensor) -> bool {
    advcomp_nn::faults::corrupt("attack_iter", g.data_mut());
    if g.has_non_finite() {
        advcomp_nn::health::record(
            attack,
            format!("non-finite gradient at iteration {iteration}; keeping last good iterate"),
        );
        true
    } else {
        false
    }
}

/// Iterative FGSM (Algorithm 1): `X_{n+1} = Clip_{X,ε}(X_n + ε·sign(∇X J))`.
#[derive(Debug, Clone, Copy)]
pub struct Ifgsm {
    epsilon: f32,
    iterations: usize,
}

impl Ifgsm {
    /// Creates the attack with per-iteration step `epsilon` and `iterations`
    /// rounds (Table 1: ε=0.02, i=12 for both networks).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for a bad ε or zero iterations.
    pub fn new(epsilon: f32, iterations: usize) -> Result<Self> {
        check(epsilon, iterations)?;
        Ok(Ifgsm {
            epsilon,
            iterations,
        })
    }

    /// Per-iteration step size.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Number of iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl Attack for Ifgsm {
    fn name(&self) -> &'static str {
        "ifgsm"
    }

    fn generate(&self, model: &mut Sequential, x: &Tensor, labels: &[usize]) -> Result<Tensor> {
        let mut adv = x.clone();
        for i in 0..self.iterations {
            let mut g = loss_input_grad(model, &adv, labels)?;
            if gradient_unusable("ifgsm", i, &mut g) {
                break;
            }
            step::sign_step(&mut adv, &g, self.epsilon)?;
        }
        Ok(adv)
    }
}

/// Iterative FGM: identical to [`Ifgsm`] except the step uses the raw
/// gradient, `N = ∇X J(θ, X_n, y)` — amplitudes contribute to the update,
/// which is why Table 1 needs ε=10 to attack the low-loss LeNet5.
#[derive(Debug, Clone, Copy)]
pub struct Ifgm {
    epsilon: f32,
    iterations: usize,
}

impl Ifgm {
    /// Creates the attack (Table 1: LeNet5 ε=10.0 i=5, CifarNet ε=0.02 i=12).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for a bad ε or zero iterations.
    pub fn new(epsilon: f32, iterations: usize) -> Result<Self> {
        check(epsilon, iterations)?;
        Ok(Ifgm {
            epsilon,
            iterations,
        })
    }

    /// Gradient scale factor ε.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Number of iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl Attack for Ifgm {
    fn name(&self) -> &'static str {
        "ifgm"
    }

    fn generate(&self, model: &mut Sequential, x: &Tensor, labels: &[usize]) -> Result<Tensor> {
        let mut adv = x.clone();
        for i in 0..self.iterations {
            let mut g = loss_input_grad(model, &adv, labels)?;
            if gradient_unusable("ifgm", i, &mut g) {
                break;
            }
            // The epsilon ball doubles as the per-iterate clip of
            // Algorithm 1.
            step::grad_step(&mut adv, &g, self.epsilon, self.epsilon)?;
        }
        Ok(adv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::{accuracy, Dense, Mode, Relu};
    use rand::SeedableRng;

    fn net() -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        Sequential::new(vec![
            Box::new(Dense::new(6, 12, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(12, 3, &mut rng)),
        ])
    }

    #[test]
    fn construction_validation() {
        assert!(Ifgsm::new(0.1, 0).is_err());
        assert!(Ifgsm::new(0.0, 5).is_err());
        assert!(Ifgm::new(-1.0, 5).is_err());
        assert!(Ifgm::new(10.0, 5).is_ok());
    }

    #[test]
    fn total_perturbation_bounded_by_iterations_times_epsilon() {
        let mut model = net();
        let x = Tensor::full(&[2, 6], 0.5);
        let attack = Ifgsm::new(0.01, 7).unwrap();
        let adv = attack.generate(&mut model, &x, &[0, 1]).unwrap();
        let delta = adv.sub(&x).unwrap();
        assert!(delta.linf_norm() <= 7.0 * 0.01 + 1e-5);
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn ifgm_each_step_within_epsilon() {
        // With huge epsilon * gradient, the per-step clip keeps components
        // within epsilon of the previous iterate.
        let mut model = net();
        let x = Tensor::full(&[1, 6], 0.5);
        let attack = Ifgm::new(0.05, 1).unwrap();
        let adv = attack.generate(&mut model, &x, &[0]).unwrap();
        assert!(adv.sub(&x).unwrap().linf_norm() <= 0.05 + 1e-6);
    }

    #[test]
    fn iterative_beats_single_step() {
        use advcomp_nn::softmax_cross_entropy;
        let mut model = net();
        let x = Tensor::full(&[4, 6], 0.5);
        let labels = vec![0, 1, 2, 0];
        let loss_of = |m: &mut Sequential, inp: &Tensor| {
            let l = m.forward(inp, Mode::Eval).unwrap();
            softmax_cross_entropy(&l, &labels).unwrap().loss
        };
        let one = Ifgsm::new(0.02, 1)
            .unwrap()
            .generate(&mut model, &x, &labels)
            .unwrap();
        let many = Ifgsm::new(0.02, 10)
            .unwrap()
            .generate(&mut model, &x, &labels)
            .unwrap();
        assert!(loss_of(&mut model, &many) >= loss_of(&mut model, &one));
    }

    #[test]
    fn injected_nan_gradient_stops_at_last_good_iterate() {
        use advcomp_nn::{faults, health};
        let x = Tensor::full(&[2, 6], 0.5);
        let labels = [0usize, 1];
        // Reference: the first three (healthy) iterations.
        let clean = Ifgsm::new(0.01, 3)
            .unwrap()
            .generate(&mut net(), &x, &labels)
            .unwrap();
        // Poison the gradient of iteration 3 of an 8-iteration run: the
        // guard must keep the iterate from iteration 2 and record why.
        let _g = faults::install(vec![faults::FaultSpec::once(
            faults::FaultKind::Nan,
            "attack_iter",
            3,
        )]);
        let (guarded, events) = health::scope(|| {
            Ifgsm::new(0.01, 8)
                .unwrap()
                .generate(&mut net(), &x, &labels)
                .unwrap()
        });
        assert!(!guarded.has_non_finite());
        assert_eq!(guarded.data(), clean.data());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].site, "ifgsm");
        assert!(events[0].detail.contains("iteration 3"), "{events:?}");
    }

    #[test]
    fn accuracy_drops_under_ifgsm() {
        // Train a trivially-separable 2-feature task, then attack it.
        use advcomp_nn::{softmax_cross_entropy, Sgd};
        let mut model = net();
        let mut opt = Sgd::new(0.1, 0.9, 0.0).unwrap();
        // Class = which of the first two features is larger.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        use rand::Rng;
        for _ in 0..64 {
            let a: f32 = rng.gen_range(0.0..1.0);
            let b: f32 = rng.gen_range(0.0..1.0);
            xs.extend([a, b, 0.5, 0.5, 0.5, 0.5]);
            ys.push(if a > b { 0usize } else { 1 });
        }
        let x = Tensor::new(&[64, 6], xs).unwrap();
        for _ in 0..150 {
            let logits = model.forward(&x, Mode::Train).unwrap();
            let loss = softmax_cross_entropy(&logits, &ys).unwrap();
            model.zero_grad();
            model.backward(&loss.grad).unwrap();
            opt.step(model.params_mut()).unwrap();
        }
        let clean_logits = model.forward(&x, Mode::Eval).unwrap();
        let clean_acc = accuracy(&clean_logits, &ys).unwrap();
        assert!(clean_acc > 0.9, "failed to train: {clean_acc}");

        let adv = Ifgsm::new(0.05, 8)
            .unwrap()
            .generate(&mut model, &x, &ys)
            .unwrap();
        let adv_logits = model.forward(&adv, Mode::Eval).unwrap();
        let adv_acc = accuracy(&adv_logits, &ys).unwrap();
        assert!(
            adv_acc < clean_acc - 0.3,
            "attack ineffective: {clean_acc} -> {adv_acc}"
        );
    }
}
