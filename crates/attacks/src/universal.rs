//! Universal adversarial perturbations (UAP).
//!
//! A *universal* perturbation is a single input-shaped delta `v`, bounded
//! in L∞, that fools the victim on a large fraction of **all** inputs —
//! not one crafted per sample (Moosavi-Dezfooli et al.; Matachana et al.,
//! arXiv:2012.06024, study them against compressed networks). UAPs are
//! the natural online threat model for a serving guard: the attacker
//! pre-computes `v` offline against a surrogate and adds it to every
//! request, so per-sample crafting cost at attack time is zero.
//!
//! [`craft_uap`] runs the iterative sign-ascent variant: epochs over a
//! crafting set in a seeded-shuffle order, each minibatch ascending the
//! summed per-sample loss gradient at `clip(x + v)` and projecting `v`
//! back onto the `ε` L∞-ball. Every step is a deterministic function of
//! (model, crafting set, config) — the shuffle uses a self-contained
//! SplitMix64 stream, not the workspace RNG — so crafting is bit-exact
//! reproducible and golden-pinnable under a pinned kernel backend.

use crate::grad::loss_input_grad;
use crate::{AttackError, Result};
use advcomp_nn::{Mode, Sequential};
use advcomp_tensor::Tensor;

/// Configuration for [`craft_uap`].
#[derive(Debug, Clone)]
pub struct UapConfig {
    /// L∞ budget of the universal delta: every component of `v` stays in
    /// `[-epsilon, epsilon]`.
    pub epsilon: f32,
    /// Per-iteration sign-step size (typically `epsilon / epochs`-ish).
    pub step: f32,
    /// Passes over the crafting set.
    pub epochs: usize,
    /// Crafting minibatch size.
    pub batch: usize,
    /// Seed for the crafting-set shuffle order.
    pub seed: u64,
}

impl Default for UapConfig {
    fn default() -> Self {
        UapConfig {
            epsilon: 0.1,
            step: 0.02,
            epochs: 4,
            batch: 32,
            seed: 0,
        }
    }
}

impl UapConfig {
    fn validate(&self) -> Result<()> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(AttackError::InvalidConfig(format!(
                "uap epsilon {} must be finite and > 0",
                self.epsilon
            )));
        }
        if !(self.step > 0.0 && self.step.is_finite()) {
            return Err(AttackError::InvalidConfig(format!(
                "uap step {} must be finite and > 0",
                self.step
            )));
        }
        if self.epochs == 0 {
            return Err(AttackError::InvalidConfig("uap epochs must be >= 1".into()));
        }
        if self.batch == 0 {
            return Err(AttackError::InvalidConfig("uap batch must be >= 1".into()));
        }
        Ok(())
    }
}

/// A crafted universal perturbation: one input-shaped delta plus the
/// budget it was crafted under.
#[derive(Debug, Clone)]
pub struct Uap {
    delta: Tensor,
    epsilon: f32,
}

impl Uap {
    /// Wraps an existing delta (e.g. one loaded from disk). The delta is
    /// clamped into the stated budget so the invariant
    /// `‖delta‖∞ <= epsilon` always holds.
    ///
    /// # Errors
    ///
    /// [`AttackError::InvalidConfig`] for a non-positive budget.
    pub fn from_delta(delta: Tensor, epsilon: f32) -> Result<Uap> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(AttackError::InvalidConfig(format!(
                "uap epsilon {epsilon} must be finite and > 0"
            )));
        }
        Ok(Uap {
            delta: delta.clamp(-epsilon, epsilon),
            epsilon,
        })
    }

    /// The universal delta (sample shape, no batch axis).
    pub fn delta(&self) -> &Tensor {
        &self.delta
    }

    /// The L∞ budget the delta respects.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Adds the delta to every sample of `x` (batch-first) and clips back
    /// into the valid pixel range `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`AttackError::InvalidConfig`] when a row of `x` does not match the
    /// delta's element count.
    pub fn apply(&self, x: &Tensor) -> Result<Tensor> {
        let d = self.delta.len();
        let rows = x.shape().first().copied().unwrap_or(0);
        if d == 0 || rows == 0 || x.len() != rows * d {
            return Err(AttackError::InvalidConfig(format!(
                "uap delta of {} values cannot broadcast over input shape {:?}",
                d,
                x.shape()
            )));
        }
        let mut out = x.clone();
        let dv = self.delta.data();
        for row in out.data_mut().chunks_mut(d) {
            for (o, &v) in row.iter_mut().zip(dv) {
                *o = (*o + v).clamp(0.0, 1.0);
            }
        }
        Ok(out)
    }

    /// Fraction of samples whose top-1 prediction the delta flips —
    /// the standard UAP "fooling rate", measured against the model's own
    /// clean predictions (no labels needed).
    ///
    /// # Errors
    ///
    /// As [`Uap::apply`], plus network errors.
    pub fn fool_rate(&self, model: &mut Sequential, x: &Tensor) -> Result<f64> {
        let clean = model
            .forward(x, Mode::Eval)?
            .argmax_rows()
            .map_err(advcomp_nn::NnError::from)?;
        let adv = model
            .forward(&self.apply(x)?, Mode::Eval)?
            .argmax_rows()
            .map_err(advcomp_nn::NnError::from)?;
        let flipped = clean.iter().zip(&adv).filter(|(c, a)| c != a).count();
        Ok(flipped as f64 / clean.len().max(1) as f64)
    }
}

/// Self-contained SplitMix64 stream for the crafting-set shuffle.
///
/// Deliberately *not* the workspace `rand` crate: UAP crafting order must
/// stay bit-stable across RNG-stub revisions for the checked-in goldens.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn shuffle(&mut self, idx: &mut [usize]) {
        for i in (1..idx.len()).rev() {
            idx.swap(i, self.below(i + 1));
        }
    }
}

/// Crafts a universal perturbation against `model` from the crafting set
/// `(x, labels)` (`x` batch-first, values in `[0, 1]`).
///
/// Iterative sign ascent on the universal delta `v`:
///
/// ```text
/// for epoch in 0..epochs:
///   for minibatch (xb, yb) in seeded-shuffle order:
///     g  = Σ_samples ∇X J(θ, clip(xb + v), yb)      // shared v ⇒ sum
///     v ← clamp(v + step · sign(g), -ε, +ε)
/// ```
///
/// The summed gradient is the exact gradient of the minibatch loss with
/// respect to the *shared* delta; the projection keeps `v` inside the L∞
/// budget after every step. The model's parameters are left untouched.
///
/// # Errors
///
/// [`AttackError::InvalidConfig`] on bad hyper-parameters or an empty
/// crafting set, [`AttackError::BatchMismatch`] when labels don't match
/// `x`, plus any network error.
pub fn craft_uap(
    model: &mut Sequential,
    x: &Tensor,
    labels: &[usize],
    cfg: &UapConfig,
) -> Result<Uap> {
    cfg.validate()?;
    let n = x.shape().first().copied().unwrap_or(0);
    if n == 0 {
        return Err(AttackError::InvalidConfig(
            "uap crafting set is empty".into(),
        ));
    }
    if labels.len() != n {
        return Err(AttackError::BatchMismatch {
            inputs: n,
            labels: labels.len(),
        });
    }
    let sample: Vec<usize> = x.shape()[1..].to_vec();
    let d: usize = sample.iter().product();
    let mut delta = Tensor::zeros(&sample);
    let mut rng = SplitMix64(cfg.seed ^ 0xa076_1d64_78bd_642f);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..cfg.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(cfg.batch) {
            // Assemble the minibatch at clip(x + v).
            let mut shape = vec![chunk.len()];
            shape.extend_from_slice(&sample);
            let mut data = Vec::with_capacity(chunk.len() * d);
            let mut yb = Vec::with_capacity(chunk.len());
            let dv = delta.data();
            for &i in chunk {
                let row = &x.data()[i * d..(i + 1) * d];
                data.extend(row.iter().zip(dv).map(|(&a, &v)| (a + v).clamp(0.0, 1.0)));
                yb.push(labels[i]);
            }
            let xb = Tensor::new(&shape, data).map_err(advcomp_nn::NnError::from)?;
            let g = loss_input_grad(model, &xb, &yb)?;
            // Sum per-sample gradients: the exact gradient w.r.t. the
            // shared delta. Then one projected sign step on v.
            let mut gsum = vec![0.0f32; d];
            for row in g.data().chunks(d) {
                for (s, &v) in gsum.iter_mut().zip(row) {
                    *s += v;
                }
            }
            for (v, s) in delta.data_mut().iter_mut().zip(&gsum) {
                let sign = if *s > 0.0 {
                    1.0
                } else if *s < 0.0 {
                    -1.0
                } else {
                    0.0
                };
                *v = (*v + cfg.step * sign).clamp(-cfg.epsilon, cfg.epsilon);
            }
        }
    }
    Ok(Uap {
        delta,
        epsilon: cfg.epsilon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::Dense;
    use advcomp_nn::Relu;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(8, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 3, &mut rng)),
        ])
    }

    fn set(seed: u64, n: usize) -> (Tensor, Vec<usize>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = advcomp_tensor::Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[n, 8], &mut rng);
        let labels = (0..n).map(|i| i % 3).collect();
        (x, labels)
    }

    fn cfg() -> UapConfig {
        UapConfig {
            epsilon: 0.15,
            step: 0.04,
            epochs: 3,
            batch: 8,
            seed: 11,
        }
    }

    #[test]
    fn crafting_is_deterministic_and_budgeted() {
        let (x, y) = set(1, 24);
        let a = craft_uap(&mut net(2), &x, &y, &cfg()).unwrap();
        let b = craft_uap(&mut net(2), &x, &y, &cfg()).unwrap();
        assert_eq!(a.delta().data(), b.delta().data(), "bit-exact replay");
        assert!(a.delta().linf_norm() <= cfg().epsilon + 1e-7);
        assert!(a.delta().linf_norm() > 0.0, "delta moved");
        // A different seed shuffles differently and lands elsewhere.
        let c = craft_uap(&mut net(2), &x, &y, &UapConfig { seed: 12, ..cfg() }).unwrap();
        assert_ne!(a.delta().data(), c.delta().data());
    }

    #[test]
    fn apply_stays_in_pixel_box_and_fools_some() {
        let (x, _) = set(3, 32);
        let mut model = net(4);
        // Craft against the model's own predictions: loss ascent then
        // pushes every sample away from its current class, so a large
        // enough budget must flip some — even on an untrained net.
        let y = model
            .forward(&x, Mode::Eval)
            .unwrap()
            .argmax_rows()
            .unwrap();
        let strong = UapConfig {
            epsilon: 0.5,
            step: 0.1,
            epochs: 6,
            ..cfg()
        };
        let uap = craft_uap(&mut model, &x, &y, &strong).unwrap();
        let adv = uap.apply(&x).unwrap();
        assert_eq!(adv.shape(), x.shape());
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // The perturbation ascends the crafting loss, so it should flip at
        // least one crafting-set prediction at this budget.
        let rate = uap.fool_rate(&mut model, &x).unwrap();
        assert!(rate > 0.0, "fool rate {rate}");
    }

    #[test]
    fn rejects_bad_configs_and_shapes() {
        let (x, y) = set(5, 8);
        for bad in [
            UapConfig {
                epsilon: 0.0,
                ..cfg()
            },
            UapConfig {
                step: -1.0,
                ..cfg()
            },
            UapConfig { epochs: 0, ..cfg() },
            UapConfig { batch: 0, ..cfg() },
        ] {
            assert!(craft_uap(&mut net(6), &x, &y, &bad).is_err());
        }
        assert!(matches!(
            craft_uap(&mut net(6), &x, &y[..4], &cfg()),
            Err(AttackError::BatchMismatch { .. })
        ));
        let uap = craft_uap(&mut net(6), &x, &y, &cfg()).unwrap();
        assert!(uap.apply(&Tensor::ones(&[2, 5])).is_err());
        assert!(Uap::from_delta(Tensor::zeros(&[8]), -0.5).is_err());
        // from_delta clamps into the budget.
        let wrapped = Uap::from_delta(Tensor::full(&[8], 9.0), 0.25).unwrap();
        assert!(wrapped.delta().linf_norm() <= 0.25);
    }
}
