//! Fused attack-step kernels shared by the gradient attacks.
//!
//! Every attack in this crate spends its inner loop on a variant of
//! "perturb along (the sign of) the gradient, then clip". The historical
//! implementation materialised that as a chain of whole-tensor ops —
//! `sign` → `scale` → `clamp` → `add` → `clamp` — allocating three to four
//! intermediate tensors per IFGSM/PGD iteration. The helpers here update
//! the iterate **in place** through the single-pass fused kernels in
//! [`advcomp_tensor`], so an attack iteration allocates nothing beyond the
//! gradient the backward pass hands it.
//!
//! The `*_unfused` functions keep the historical op chain alive for the
//! fused-vs-unfused bench ablation and for the equivalence tests below.
//! The fused kernels apply per-element float operations in exactly the
//! same order as the chain, so within a backend the results are bitwise
//! identical — which is what keeps the checked-in goldens and the
//! fault-injection tests (which compare iterates bit-for-bit) valid.

use crate::Result;
use advcomp_tensor::Tensor;

/// In-place FGSM/IFGSM step: `x ← clip_{[0,1]}(x + ε · sign(g))`
/// (Equation 5 / Algorithm 1 of the paper).
///
/// The per-iterate `ε`-clip of Algorithm 1 is implicit: a sign step moves
/// every component by exactly `±ε` or `0`, which already lies inside the
/// `ε`-ball around the previous iterate.
///
/// # Errors
///
/// Propagates the tensor shape-mismatch error.
pub fn sign_step(adv: &mut Tensor, g: &Tensor, epsilon: f32) -> Result<()> {
    adv.fused_sign_step_clamp(g, epsilon, 0.0, 1.0)?;
    Ok(())
}

/// In-place FGM/IFGM step:
/// `x ← clip_{[0,1]}(x + clamp(ε · g, -ball, +ball))` (Equation 4).
///
/// `ball` is the per-iteration L∞ clip of Algorithm 1 ("the intermediate
/// results get clipped to ensure that the resulting adversarial images lie
/// within ε of the previous iteration"); pass [`f32::INFINITY`] for the
/// unclipped single-step FGM.
///
/// # Errors
///
/// Propagates the tensor shape-mismatch error.
pub fn grad_step(adv: &mut Tensor, g: &Tensor, epsilon: f32, ball: f32) -> Result<()> {
    adv.fused_grad_step_clamp(g, epsilon, ball, 0.0, 1.0)?;
    Ok(())
}

/// In-place PGD step: a sign step of size `step` followed by projection
/// onto the `epsilon`-ball around `origin` and the pixel box:
/// `x ← clip_{[0,1]}(clamp(x + step · sign(g), origin ± ε))`.
///
/// # Errors
///
/// Propagates the tensor shape-mismatch error.
pub fn projected_sign_step(
    adv: &mut Tensor,
    g: &Tensor,
    origin: &Tensor,
    step: f32,
    epsilon: f32,
) -> Result<()> {
    adv.fused_project_step_clamp(g, origin, step, epsilon, 0.0, 1.0)?;
    Ok(())
}

/// The historical allocating IFGSM step (reference for tests/benches).
///
/// # Errors
///
/// Propagates the tensor shape-mismatch error.
pub fn sign_step_unfused(adv: &Tensor, g: &Tensor, epsilon: f32) -> Result<Tensor> {
    let step = g.sign().scale(epsilon);
    let bounded = step.clamp(-epsilon, epsilon);
    Ok(adv.add(&bounded)?.clamp(0.0, 1.0))
}

/// The historical allocating FGM/IFGM step (reference for tests/benches).
///
/// # Errors
///
/// Propagates the tensor shape-mismatch error.
pub fn grad_step_unfused(adv: &Tensor, g: &Tensor, epsilon: f32, ball: f32) -> Result<Tensor> {
    let step = g.scale(epsilon);
    let bounded = step.clamp(-ball, ball);
    Ok(adv.add(&bounded)?.clamp(0.0, 1.0))
}

/// The historical allocating PGD step (reference for tests/benches).
///
/// # Errors
///
/// Propagates the tensor shape-mismatch error.
pub fn projected_sign_step_unfused(
    adv: &Tensor,
    g: &Tensor,
    origin: &Tensor,
    step: f32,
    epsilon: f32,
) -> Result<Tensor> {
    let mut next = adv.clone();
    next.add_scaled(&g.sign(), step)?;
    Ok(next
        .zip_map(origin, |a, o| a.clamp(o - epsilon, o + epsilon))?
        .clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill spanning negatives, zeros and
    /// magnitudes well past the clip bounds.
    fn fill(n: usize, salt: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let h = (i as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add(salt)
                    .wrapping_mul(0x9e3779b9);
                ((h >> 8) as f32 / (1u32 << 24) as f32 - 0.5) * 4.0
            })
            .collect()
    }

    fn pair(n: usize) -> (Tensor, Tensor) {
        let x = Tensor::from_vec(fill(n, 1).iter().map(|v| (v / 4.0 + 0.5).abs()).collect());
        let g = Tensor::from_vec(fill(n, 2));
        (x, g)
    }

    #[test]
    fn fused_sign_step_matches_unfused_bitwise() {
        for n in [1usize, 7, 64, 1023] {
            let (x, g) = pair(n);
            let reference = sign_step_unfused(&x, &g, 0.07).unwrap();
            let mut fused = x.clone();
            sign_step(&mut fused, &g, 0.07).unwrap();
            assert_eq!(fused.data(), reference.data(), "n={n}");
        }
    }

    #[test]
    fn fused_grad_step_matches_unfused_bitwise() {
        for ball in [0.05f32, f32::INFINITY] {
            let (x, g) = pair(257);
            let reference = grad_step_unfused(&x, &g, 1.3, ball).unwrap();
            let mut fused = x.clone();
            grad_step(&mut fused, &g, 1.3, ball).unwrap();
            assert_eq!(fused.data(), reference.data(), "ball={ball}");
        }
    }

    #[test]
    fn fused_projected_step_matches_unfused_bitwise() {
        let (origin, g) = pair(200);
        // Start two sign steps away from the origin so the ball projection
        // actually binds on some components.
        let adv = sign_step_unfused(&origin, &g, 0.04).unwrap();
        let reference = projected_sign_step_unfused(&adv, &g, &origin, 0.04, 0.05).unwrap();
        let mut fused = adv.clone();
        projected_sign_step(&mut fused, &g, &origin, 0.04, 0.05).unwrap();
        assert_eq!(fused.data(), reference.data());
        // And the projection held.
        let delta = fused.sub(&origin).unwrap();
        assert!(delta.linf_norm() <= 0.05 + 1e-6);
    }

    #[test]
    fn nan_gradient_components_contribute_no_sign_perturbation() {
        let x = Tensor::from_vec(vec![0.5, 0.5, 0.5]);
        let g = Tensor::from_vec(vec![f32::NAN, 2.0, -2.0]);
        let mut fused = x.clone();
        sign_step(&mut fused, &g, 0.1).unwrap();
        assert_eq!(fused.data(), &[0.5, 0.6, 0.4]);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut x = Tensor::zeros(&[4]);
        let g = Tensor::zeros(&[5]);
        assert!(sign_step(&mut x, &g, 0.1).is_err());
        assert!(grad_step(&mut x, &g, 0.1, 0.1).is_err());
        let origin = Tensor::zeros(&[4]);
        assert!(projected_sign_step(&mut x, &g, &origin, 0.1, 0.1).is_err());
    }
}
