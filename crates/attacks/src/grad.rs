//! Input-gradient plumbing shared by all attacks.

use crate::{AttackError, Result};
use advcomp_nn::{softmax_cross_entropy, Mode, Sequential};
use advcomp_tensor::Tensor;

/// Computes `∇X J(θ, X, y)` — the gradient of the **per-sample**
/// cross-entropy loss with respect to each input in the batch. This is the
/// quantity Equations 4 and 5 of the paper build perturbations from.
///
/// Samples in a batch do not interact, so the per-sample gradient is the
/// batch-mean gradient rescaled by the batch size. The rescaling matters:
/// magnitude-based attacks (FGM/IFGM) would otherwise see their effective ε
/// silently divided by the batch size, while sign-based attacks would hide
/// the bug entirely.
///
/// Parameter gradients accumulated as a side effect are zeroed before
/// returning, leaving the model clean for subsequent training.
///
/// # Errors
///
/// Returns [`AttackError::BatchMismatch`] when label count differs from the
/// batch, plus any network error.
pub fn loss_input_grad(model: &mut Sequential, x: &Tensor, labels: &[usize]) -> Result<Tensor> {
    if x.shape().first().copied().unwrap_or(0) != labels.len() {
        return Err(AttackError::BatchMismatch {
            inputs: x.shape().first().copied().unwrap_or(0),
            labels: labels.len(),
        });
    }
    let logits = model.forward(x, Mode::Eval)?;
    let loss = softmax_cross_entropy(&logits, labels)?;
    // Undo the 1/batch scaling of the mean loss: per-sample gradients.
    // Rescale the seed in place rather than allocating a copy.
    let mut seed = loss.grad;
    seed.scale_inplace(labels.len().max(1) as f32);
    let gx = model.backward(&seed)?;
    model.zero_grad();
    Ok(gx)
}

/// Computes per-class logit gradients `∇X f_k(X)` for a **single** sample
/// (`x` of shape `[1, ...]`), returning `(logits, gradients)` where
/// `gradients[k]` is the input gradient of logit `k`.
///
/// DeepFool linearises the classifier around the current iterate with these.
///
/// # Errors
///
/// Returns [`AttackError::InvalidConfig`] unless the batch size is 1.
pub fn logit_input_grads(model: &mut Sequential, x: &Tensor) -> Result<(Vec<f32>, Vec<Tensor>)> {
    if x.shape().first() != Some(&1) {
        return Err(AttackError::InvalidConfig(format!(
            "logit_input_grads expects a single sample, got batch {:?}",
            x.shape().first()
        )));
    }
    let logits = model.forward(x, Mode::Eval)?;
    let classes = logits.shape()[1];
    let mut grads = Vec::with_capacity(classes);
    for k in 0..classes {
        let mut seed = Tensor::zeros(&[1, classes]);
        seed.data_mut()[k] = 1.0;
        grads.push(model.backward(&seed)?);
    }
    model.zero_grad();
    Ok((logits.into_data(), grads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::{Dense, Relu};
    use rand::SeedableRng;

    fn net() -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        Sequential::new(vec![
            Box::new(Dense::new(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 3, &mut rng)),
        ])
    }

    #[test]
    fn loss_grad_shape_and_cleanliness() {
        let mut model = net();
        let x = Tensor::ones(&[2, 4]);
        let g = loss_input_grad(&mut model, &x, &[0, 1]).unwrap();
        assert_eq!(g.shape(), &[2, 4]);
        // Model param grads were zeroed.
        assert!(model.params().iter().all(|p| p.grad.l0_norm() == 0));
    }

    #[test]
    fn loss_grad_batch_mismatch() {
        let mut model = net();
        let x = Tensor::ones(&[2, 4]);
        assert!(matches!(
            loss_input_grad(&mut model, &x, &[0]),
            Err(AttackError::BatchMismatch {
                inputs: 2,
                labels: 1
            })
        ));
    }

    #[test]
    fn logit_grads_one_per_class() {
        let mut model = net();
        let x = Tensor::ones(&[1, 4]);
        let (logits, grads) = logit_input_grads(&mut model, &x).unwrap();
        assert_eq!(logits.len(), 3);
        assert_eq!(grads.len(), 3);
        assert!(grads.iter().all(|g| g.shape() == [1, 4]));
    }

    #[test]
    fn logit_grads_reject_batches() {
        let mut model = net();
        assert!(logit_input_grads(&mut model, &Tensor::ones(&[2, 4])).is_err());
    }

    #[test]
    fn logit_grads_sum_property() {
        // Gradient of sum of logits == sum of per-logit gradients: check
        // against a single backward with an all-ones seed.
        let mut model = net();
        let x = Tensor::from_vec(vec![0.1, -0.4, 0.7, 0.2])
            .reshape(&[1, 4])
            .unwrap();
        let (_, grads) = logit_input_grads(&mut model, &x).unwrap();
        model.forward(&x, Mode::Eval).unwrap();
        let total = model.backward(&Tensor::ones(&[1, 3])).unwrap();
        let mut acc = Tensor::zeros(&[1, 4]);
        for g in &grads {
            acc.add_assign(g).unwrap();
        }
        assert!(acc.allclose(&total, 1e-5));
    }
}
