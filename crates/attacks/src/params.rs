//! The paper's Table 1 attack hyper-parameters.

use serde::{Deserialize, Serialize};

/// Which network a parameter set targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// LeNet5 on the MNIST-like task.
    LeNet5,
    /// CifarNet on the CIFAR-like task.
    CifarNet,
}

impl NetKind {
    /// Short lowercase identifier used in CSV output.
    pub fn id(&self) -> &'static str {
        match self {
            NetKind::LeNet5 => "lenet5",
            NetKind::CifarNet => "cifarnet",
        }
    }
}

/// Which attack a parameter set configures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Iterative fast gradient sign method.
    Ifgsm,
    /// Iterative fast gradient method.
    Ifgm,
    /// DeepFool (L2).
    DeepFool,
}

impl AttackKind {
    /// All three attacks, in the paper's presentation order.
    pub const ALL: [AttackKind; 3] = [AttackKind::Ifgsm, AttackKind::Ifgm, AttackKind::DeepFool];

    /// Short lowercase identifier used in CSV output.
    pub fn id(&self) -> &'static str {
        match self {
            AttackKind::Ifgsm => "ifgsm",
            AttackKind::Ifgm => "ifgm",
            AttackKind::DeepFool => "deepfool",
        }
    }
}

/// An (ε, iterations) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackParams {
    /// Step size / overshoot ε.
    pub epsilon: f32,
    /// Iteration count.
    pub iterations: usize,
}

/// Table 1 of the paper, verbatim.
///
/// | Network  | IFGSM        | IFGM        | DeepFool    |
/// |----------|--------------|-------------|-------------|
/// | LeNet5   | ε=0.02, i=12 | ε=10.0, i=5 | ε=0.01, i=5 |
/// | CifarNet | ε=0.02, i=12 | ε=0.02, i=12| ε=0.01, i=3 |
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperParams;

impl PaperParams {
    /// Looks up the Table 1 parameters for a (network, attack) pair.
    pub fn lookup(net: NetKind, attack: AttackKind) -> AttackParams {
        match (net, attack) {
            (NetKind::LeNet5, AttackKind::Ifgsm) => AttackParams {
                epsilon: 0.02,
                iterations: 12,
            },
            (NetKind::LeNet5, AttackKind::Ifgm) => AttackParams {
                epsilon: 10.0,
                iterations: 5,
            },
            (NetKind::LeNet5, AttackKind::DeepFool) => AttackParams {
                epsilon: 0.01,
                iterations: 5,
            },
            (NetKind::CifarNet, AttackKind::Ifgsm) => AttackParams {
                epsilon: 0.02,
                iterations: 12,
            },
            (NetKind::CifarNet, AttackKind::Ifgm) => AttackParams {
                epsilon: 0.02,
                iterations: 12,
            },
            (NetKind::CifarNet, AttackKind::DeepFool) => AttackParams {
                epsilon: 0.01,
                iterations: 3,
            },
        }
    }

    /// Table 1 parameters adapted to this reproduction's CPU-scale
    /// substitute models: identical for IFGSM/IFGM, but DeepFool runs 4×
    /// the iterations.
    ///
    /// The paper tuned Table 1 against full-width models trained for
    /// 300–350 GPU epochs; on the narrower CPU-scale substitutes DeepFool's
    /// minimal boundary steps need a few more rounds to converge (measured:
    /// LeNet5 83%→17% adversarial accuracy going from 5 to 20 iterations,
    /// CifarNet 71%→13% from 3 to 12). The attack itself is unchanged; see
    /// EXPERIMENTS.md for the calibration data.
    pub fn adapted(net: NetKind, attack: AttackKind) -> AttackParams {
        let mut p = Self::lookup(net, attack);
        if attack == AttackKind::DeepFool {
            p.iterations *= 4;
        }
        p
    }

    /// Builds the boxed attack for a (network, attack) pair at its Table 1
    /// parameters.
    pub fn build(net: NetKind, attack: AttackKind) -> Box<dyn crate::Attack> {
        Self::build_params(Self::lookup(net, attack), attack)
    }

    /// Builds the boxed attack at the [`PaperParams::adapted`] parameters.
    pub fn build_adapted(net: NetKind, attack: AttackKind) -> Box<dyn crate::Attack> {
        Self::build_params(Self::adapted(net, attack), attack)
    }

    fn build_params(p: AttackParams, attack: AttackKind) -> Box<dyn crate::Attack> {
        match attack {
            AttackKind::Ifgsm => {
                Box::new(crate::Ifgsm::new(p.epsilon, p.iterations).expect("table values valid"))
            }
            AttackKind::Ifgm => {
                Box::new(crate::Ifgm::new(p.epsilon, p.iterations).expect("table values valid"))
            }
            AttackKind::DeepFool => {
                Box::new(crate::DeepFool::new(p.epsilon, p.iterations).expect("table values valid"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let p = PaperParams::lookup(NetKind::LeNet5, AttackKind::Ifgm);
        assert_eq!(p.epsilon, 10.0);
        assert_eq!(p.iterations, 5);
        let p = PaperParams::lookup(NetKind::CifarNet, AttackKind::DeepFool);
        assert_eq!(p.epsilon, 0.01);
        assert_eq!(p.iterations, 3);
        let p = PaperParams::lookup(NetKind::CifarNet, AttackKind::Ifgsm);
        assert_eq!(p.epsilon, 0.02);
        assert_eq!(p.iterations, 12);
    }

    #[test]
    fn builders_produce_named_attacks() {
        for net in [NetKind::LeNet5, NetKind::CifarNet] {
            for kind in AttackKind::ALL {
                let attack = PaperParams::build(net, kind);
                assert_eq!(attack.name(), kind.id());
            }
        }
    }

    #[test]
    fn adapted_scales_only_deepfool() {
        let t = PaperParams::lookup(NetKind::LeNet5, AttackKind::DeepFool);
        let a = PaperParams::adapted(NetKind::LeNet5, AttackKind::DeepFool);
        assert_eq!(a.iterations, 4 * t.iterations);
        assert_eq!(a.epsilon, t.epsilon);
        let t = PaperParams::lookup(NetKind::CifarNet, AttackKind::Ifgsm);
        let a = PaperParams::adapted(NetKind::CifarNet, AttackKind::Ifgsm);
        assert_eq!(a, t);
        assert_eq!(
            PaperParams::build_adapted(NetKind::LeNet5, AttackKind::DeepFool).name(),
            "deepfool"
        );
    }

    #[test]
    fn ids_are_stable() {
        assert_eq!(NetKind::LeNet5.id(), "lenet5");
        assert_eq!(AttackKind::DeepFool.id(), "deepfool");
    }
}
