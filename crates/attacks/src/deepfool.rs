//! DeepFool (Moosavi-Dezfooli et al. 2016), L2 multi-class variant.

use crate::grad::logit_input_grads;
use crate::{Attack, AttackError, Result};
use advcomp_nn::Sequential;
use advcomp_tensor::Tensor;

/// The L2 DeepFool attack.
///
/// Per sample, iteratively linearises the classifier around the current
/// iterate, finds the closest linearised decision boundary
/// `argmin_k |f_k − f_{k0}| / ‖∇f_k − ∇f_{k0}‖₂`, and steps just across it
/// (scaled by `1 + overshoot`). Produces much smaller perturbations than
/// the FGSM family, which is also why the paper finds it struggles against
/// coarsely-quantised models: its sub-resolution nudges get rounded away.
#[derive(Debug, Clone, Copy)]
pub struct DeepFool {
    overshoot: f32,
    max_iterations: usize,
}

impl DeepFool {
    /// Creates the attack. `overshoot` is the paper's ε for DeepFool in
    /// Table 1 (0.01); `max_iterations` its `i` (5 for LeNet5, 3 for
    /// CifarNet).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for negative overshoot or zero
    /// iterations.
    pub fn new(overshoot: f32, max_iterations: usize) -> Result<Self> {
        if !(overshoot >= 0.0 && overshoot.is_finite()) {
            return Err(AttackError::InvalidConfig(format!(
                "overshoot {overshoot} must be non-negative and finite"
            )));
        }
        if max_iterations == 0 {
            return Err(AttackError::InvalidConfig(
                "max_iterations must be >= 1".into(),
            ));
        }
        Ok(DeepFool {
            overshoot,
            max_iterations,
        })
    }

    /// The overshoot factor.
    pub fn overshoot(&self) -> f32 {
        self.overshoot
    }

    /// The iteration cap.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    fn attack_one(&self, model: &mut Sequential, x0: &Tensor) -> Result<Tensor> {
        let (logits0, _) = {
            // Cheap forward to find the source class without grads.
            let l = model.forward(x0, advcomp_nn::Mode::Eval)?;
            (l.into_data(), ())
        };
        let k0 = argmax(&logits0);
        let mut x = x0.clone();

        for _ in 0..self.max_iterations {
            let (logits, grads) = logit_input_grads(model, &x)?;
            if argmax(&logits) != k0 {
                break; // already across the boundary
            }
            // Closest linearised boundary.
            let mut best: Option<(f32, usize)> = None;
            for k in 0..logits.len() {
                if k == k0 {
                    continue;
                }
                let w = grads[k].sub(&grads[k0])?;
                let wnorm = w.l2_norm();
                if wnorm < 1e-12 {
                    continue;
                }
                let dist = (logits[k] - logits[k0]).abs() / wnorm;
                if best.is_none_or(|(d, _)| dist < d) {
                    best = Some((dist, k));
                }
            }
            let Some((_, l)) = best else {
                break; // degenerate gradients everywhere; give up
            };
            let w = grads[l].sub(&grads[k0])?;
            let f = logits[l] - logits[k0];
            let wnorm2 = w.l2_norm().powi(2).max(1e-12);
            // Minimal step onto the boundary, plus a hair (1e-4) so the
            // linearised projection actually crosses it. Applied
            // incrementally from the current (clamped) iterate — the
            // standard formulation — so projection back into the valid
            // pixel box never stalls progress.
            let r = w.scale((f.abs() + 1e-4) * (1.0 + self.overshoot) / wnorm2);
            x = x.add(&r)?.clamp(0.0, 1.0);
        }
        Ok(x)
    }
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &val) in v.iter().enumerate() {
        if val > v[best] {
            best = i;
        }
    }
    best
}

impl Attack for DeepFool {
    fn name(&self) -> &'static str {
        "deepfool"
    }

    fn generate(&self, model: &mut Sequential, x: &Tensor, labels: &[usize]) -> Result<Tensor> {
        let n = *x.shape().first().unwrap_or(&0);
        if n != labels.len() {
            return Err(AttackError::BatchMismatch {
                inputs: n,
                labels: labels.len(),
            });
        }
        // DeepFool is untargeted and label-free (it moves away from the
        // model's own prediction); labels are accepted for interface
        // uniformity only.
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let xi = x.narrow(i, 1)?;
            out.push(self.attack_one(model, &xi)?);
        }
        Ok(Tensor::concat0(&out)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::{accuracy, Dense, Mode, Relu, Sgd};
    use rand::{Rng, SeedableRng};

    fn trained_toy() -> (Sequential, Tensor, Vec<usize>) {
        use advcomp_nn::softmax_cross_entropy;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(4, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 3, &mut rng)),
        ]);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..90 {
            let cls = rng.gen_range(0..3usize);
            // Three well-separated blobs on a simplex-ish layout.
            let centre = [[0.2, 0.2], [0.8, 0.2], [0.5, 0.8]][cls];
            xs.extend([
                centre[0] + rng.gen_range(-0.08..0.08),
                centre[1] + rng.gen_range(-0.08..0.08),
                0.5,
                0.5,
            ]);
            ys.push(cls);
        }
        let x = Tensor::new(&[90, 4], xs).unwrap();
        let mut opt = Sgd::new(0.2, 0.9, 0.0).unwrap();
        for _ in 0..200 {
            let logits = model.forward(&x, Mode::Train).unwrap();
            let loss = softmax_cross_entropy(&logits, &ys).unwrap();
            model.zero_grad();
            model.backward(&loss.grad).unwrap();
            opt.step(model.params_mut()).unwrap();
        }
        (model, x, ys)
    }

    #[test]
    fn construction_validation() {
        assert!(DeepFool::new(-0.1, 5).is_err());
        assert!(DeepFool::new(0.01, 0).is_err());
        assert!(DeepFool::new(f32::INFINITY, 3).is_err());
        assert!(DeepFool::new(0.02, 5).is_ok());
    }

    #[test]
    fn flips_most_predictions_with_small_perturbations() {
        let (mut model, x, ys) = trained_toy();
        let clean = model.forward(&x, Mode::Eval).unwrap();
        let clean_acc = accuracy(&clean, &ys).unwrap();
        assert!(clean_acc > 0.9, "toy model failed to train: {clean_acc}");

        let df = DeepFool::new(0.02, 10).unwrap();
        let adv = df.generate(&mut model, &x, &ys).unwrap();
        let adv_logits = model.forward(&adv, Mode::Eval).unwrap();
        let adv_acc = accuracy(&adv_logits, &ys).unwrap();
        assert!(adv_acc < 0.3, "DeepFool failed: accuracy still {adv_acc}");

        // Perturbations should be small relative to the data scale.
        let delta = adv.sub(&x).unwrap();
        let mean_l2 = delta.l2_norm() / (x.shape()[0] as f32).sqrt();
        assert!(mean_l2 < 0.6, "perturbation too large: {mean_l2}");
    }

    #[test]
    fn smaller_than_iterated_fgsm_perturbation() {
        // DeepFool takes minimal boundary-crossing steps; an iterated FGSM
        // run strong enough to flip the same samples spends far more
        // perturbation budget (the paper: DeepFool "produce[s] smaller
        // perturbations than the original IFGSM").
        use crate::{Attack as _, Ifgsm};
        let (mut model, x, ys) = trained_toy();
        let df_adv = DeepFool::new(0.02, 10)
            .unwrap()
            .generate(&mut model, &x, &ys)
            .unwrap();
        let fg_adv = Ifgsm::new(0.1, 8)
            .unwrap()
            .generate(&mut model, &x, &ys)
            .unwrap();
        let df_l2 = df_adv.sub(&x).unwrap().l2_norm();
        let fg_l2 = fg_adv.sub(&x).unwrap().l2_norm();
        assert!(
            df_l2 < fg_l2,
            "DeepFool ({df_l2}) should be finer than iterated FGSM ({fg_l2})"
        );
    }

    #[test]
    fn stays_in_pixel_range() {
        let (mut model, x, ys) = trained_toy();
        let adv = DeepFool::new(0.5, 10)
            .unwrap()
            .generate(&mut model, &x, &ys)
            .unwrap();
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn batch_mismatch_rejected() {
        let (mut model, x, _) = trained_toy();
        let df = DeepFool::new(0.02, 3).unwrap();
        assert!(matches!(
            df.generate(&mut model, &x, &[0, 1]),
            Err(AttackError::BatchMismatch { .. })
        ));
    }

    #[test]
    fn iteration_cap_respected_on_hopeless_input() {
        // A constant input far from any boundary may never flip within one
        // iteration; the attack must still terminate and return something
        // valid.
        let (mut model, _, _) = trained_toy();
        let x = Tensor::full(&[1, 4], 0.5);
        let adv = DeepFool::new(0.02, 1)
            .unwrap()
            .generate(&mut model, &x, &[0])
            .unwrap();
        assert_eq!(adv.shape(), x.shape());
    }
}
