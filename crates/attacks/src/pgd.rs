//! Projected gradient descent (extension).
//!
//! PGD (Madry et al. 2018) generalises the paper's Algorithm 1: start from
//! a random point inside the ε-ball, take sign-gradient steps of size `α`,
//! and after every step project back onto the L∞ ball of radius ε around
//! the original input (and the valid pixel range). With zero random starts
//! and `α = ε`, it degenerates to the paper's IFGSM.
//!
//! Included as the "future work" attack: the paper picks weakly
//! transferable attacks deliberately; PGD is the stronger first-order
//! adversary a follow-up study would reach for.

use crate::grad::loss_input_grad;
use crate::{step, Attack, AttackError, Result};
use advcomp_nn::Sequential;
use advcomp_tensor::Tensor;
use rand::{Rng, SeedableRng};

/// The PGD attack with L∞ budget.
#[derive(Debug, Clone, Copy)]
pub struct Pgd {
    epsilon: f32,
    step: f32,
    iterations: usize,
    random_start: bool,
    seed: u64,
}

impl Pgd {
    /// Creates a PGD attack with total budget `epsilon`, per-iteration step
    /// `step`, and a random start inside the ball.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for non-positive budgets or
    /// zero iterations.
    pub fn new(epsilon: f32, step: f32, iterations: usize) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(AttackError::InvalidConfig(format!(
                "epsilon {epsilon} must be positive and finite"
            )));
        }
        if !(step > 0.0 && step.is_finite()) {
            return Err(AttackError::InvalidConfig(format!(
                "step {step} must be positive and finite"
            )));
        }
        if iterations == 0 {
            return Err(AttackError::InvalidConfig("iterations must be >= 1".into()));
        }
        Ok(Pgd {
            epsilon,
            step,
            iterations,
            random_start: true,
            seed: 0,
        })
    }

    /// Disables the random start (deterministic PGD from the clean input).
    pub fn without_random_start(mut self) -> Self {
        self.random_start = false;
        self
    }

    /// Sets the random-start seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total L∞ budget.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Per-iteration step size.
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Iteration count.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl Attack for Pgd {
    fn name(&self) -> &'static str {
        "pgd"
    }

    fn generate(&self, model: &mut Sequential, x: &Tensor, labels: &[usize]) -> Result<Tensor> {
        let mut adv = if self.random_start {
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
            let noise: Vec<f32> = (0..x.len())
                .map(|_| rng.gen_range(-self.epsilon..=self.epsilon))
                .collect();
            x.add(&Tensor::new(x.shape(), noise)?)?.clamp(0.0, 1.0)
        } else {
            x.clone()
        };
        for i in 0..self.iterations {
            let mut g = loss_input_grad(model, &adv, labels)?;
            if crate::iterative::gradient_unusable("pgd", i, &mut g) {
                break;
            }
            // Sign step, then project onto the epsilon ball around the
            // clean input and the pixel box — one fused in-place pass.
            step::projected_sign_step(&mut adv, &g, x, self.step, self.epsilon)?;
        }
        Ok(adv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::{accuracy, Dense, Mode, Relu, Sgd};

    fn trained() -> (Sequential, Tensor, Vec<usize>) {
        use advcomp_nn::softmax_cross_entropy;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(4, 12, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(12, 2, &mut rng)),
        ]);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..64 {
            let a: f32 = rng.gen_range(0.0..1.0);
            let b: f32 = rng.gen_range(0.0..1.0);
            xs.extend([a, b, 0.5, 0.5]);
            ys.push(usize::from(a <= b));
        }
        let x = Tensor::new(&[64, 4], xs).unwrap();
        let mut opt = Sgd::new(0.2, 0.9, 0.0).unwrap();
        for _ in 0..150 {
            let logits = model.forward(&x, Mode::Train).unwrap();
            let loss = softmax_cross_entropy(&logits, &ys).unwrap();
            model.zero_grad();
            model.backward(&loss.grad).unwrap();
            opt.step(model.params_mut()).unwrap();
        }
        (model, x, ys)
    }

    #[test]
    fn construction_validation() {
        assert!(Pgd::new(0.0, 0.01, 5).is_err());
        assert!(Pgd::new(0.1, 0.0, 5).is_err());
        assert!(Pgd::new(0.1, 0.01, 0).is_err());
        assert!(Pgd::new(0.1, 0.01, 5).is_ok());
    }

    #[test]
    fn stays_in_epsilon_ball_despite_many_iterations() {
        let (mut model, x, y) = trained();
        let attack = Pgd::new(0.05, 0.02, 20).unwrap();
        let adv = attack.generate(&mut model, &x, &y).unwrap();
        let delta = adv.sub(&x).unwrap();
        assert!(delta.linf_norm() <= 0.05 + 1e-6);
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn beats_clean_accuracy() {
        let (mut model, x, y) = trained();
        let clean = {
            let logits = model.forward(&x, Mode::Eval).unwrap();
            accuracy(&logits, &y).unwrap()
        };
        assert!(clean > 0.9);
        // eps 0.15 / step 0.04 / 20 iters: the a<=b decision boundary needs
        // a slightly larger budget than 0.1 to flip >30% of the batch for
        // every init stream this fixture can be trained from (the margin
        // distribution depends on which rand backend seeds the weights).
        let attack = Pgd::new(0.15, 0.04, 20).unwrap();
        let adv = attack.generate(&mut model, &x, &y).unwrap();
        let logits = model.forward(&adv, Mode::Eval).unwrap();
        let adv_acc = accuracy(&logits, &y).unwrap();
        assert!(adv_acc < clean - 0.3, "{clean} -> {adv_acc}");
    }

    #[test]
    fn pgd_at_least_as_strong_as_ifgsm_at_equal_budget() {
        use crate::Ifgsm;
        let (mut model, x, y) = trained();
        let eps = 0.08;
        let ifgsm_adv = Ifgsm::new(eps / 8.0, 8)
            .unwrap()
            .generate(&mut model, &x, &y)
            .unwrap();
        let pgd_adv = Pgd::new(eps, eps / 4.0, 16)
            .unwrap()
            .generate(&mut model, &x, &y)
            .unwrap();
        let acc_of = |m: &mut Sequential, inp: &Tensor| {
            let logits = m.forward(inp, Mode::Eval).unwrap();
            accuracy(&logits, &y).unwrap()
        };
        let ifgsm_acc = acc_of(&mut model, &ifgsm_adv);
        let pgd_acc = acc_of(&mut model, &pgd_adv);
        assert!(
            pgd_acc <= ifgsm_acc + 0.1,
            "PGD ({pgd_acc}) much weaker than IFGSM ({ifgsm_acc})"
        );
    }

    #[test]
    fn random_start_is_seeded() {
        let (mut model, x, y) = trained();
        let a = Pgd::new(0.05, 0.02, 3)
            .unwrap()
            .with_seed(9)
            .generate(&mut model, &x, &y)
            .unwrap();
        let b = Pgd::new(0.05, 0.02, 3)
            .unwrap()
            .with_seed(9)
            .generate(&mut model, &x, &y)
            .unwrap();
        let c = Pgd::new(0.05, 0.02, 3)
            .unwrap()
            .with_seed(10)
            .generate(&mut model, &x, &y)
            .unwrap();
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn no_random_start_from_clean_input() {
        let (mut model, x, y) = trained();
        let det = Pgd::new(0.05, 0.05, 1).unwrap().without_random_start();
        let adv = det.generate(&mut model, &x, &y).unwrap();
        // One step of size epsilon without random start == FGSM-like move.
        let delta = adv.sub(&x).unwrap();
        assert!(delta.linf_norm() <= 0.05 + 1e-6);
        assert!(delta.linf_norm() > 0.0);
    }
}
