//! Perturbation-size reporting.

use crate::{AttackError, Result};
use advcomp_tensor::Tensor;

/// Norms of an adversarial perturbation `δ = x_adv − x`, averaged per
/// sample. §3.3 of the paper uses these to sanity-check that chosen
/// hyper-parameters "generated perturbations of a sensible l2 and l0".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbationStats {
    /// Mean fraction of changed pixels per sample.
    pub l0_fraction: f64,
    /// Mean L2 norm per sample.
    pub l2: f64,
    /// Maximum L∞ norm over the batch.
    pub linf: f64,
}

impl PerturbationStats {
    /// Computes statistics between a clean batch and its adversarial
    /// counterpart.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Tensor`] when shapes differ, and
    /// [`AttackError::InvalidConfig`] for an empty batch.
    pub fn between(clean: &Tensor, adversarial: &Tensor) -> Result<Self> {
        let delta = adversarial.sub(clean)?;
        let n = *delta.shape().first().unwrap_or(&0);
        if n == 0 {
            return Err(AttackError::InvalidConfig("empty batch".into()));
        }
        let per = delta.len() / n;
        let mut l0 = 0usize;
        let mut l2 = 0.0f64;
        let mut linf = 0.0f64;
        for i in 0..n {
            let row = &delta.data()[i * per..(i + 1) * per];
            l0 += row.iter().filter(|&&v| v != 0.0).count();
            l2 += row
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
                .sqrt();
            let m = row.iter().fold(0.0f64, |acc, &v| acc.max(v.abs() as f64));
            linf = linf.max(m);
        }
        Ok(PerturbationStats {
            l0_fraction: l0 as f64 / delta.len() as f64,
            l2: l2 / n as f64,
            linf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_batches_have_zero_stats() {
        let x = Tensor::ones(&[2, 4]);
        let s = PerturbationStats::between(&x, &x).unwrap();
        assert_eq!(s.l0_fraction, 0.0);
        assert_eq!(s.l2, 0.0);
        assert_eq!(s.linf, 0.0);
    }

    #[test]
    fn known_perturbation() {
        let x = Tensor::zeros(&[1, 4]);
        let adv = Tensor::new(&[1, 4], vec![0.0, 0.3, -0.4, 0.0]).unwrap();
        let s = PerturbationStats::between(&x, &adv).unwrap();
        assert!((s.l0_fraction - 0.5).abs() < 1e-9);
        assert!((s.l2 - 0.5).abs() < 1e-6);
        assert!((s.linf - 0.4).abs() < 1e-6);
    }

    #[test]
    fn shape_mismatch_and_empty() {
        let x = Tensor::zeros(&[1, 4]);
        assert!(PerturbationStats::between(&x, &Tensor::zeros(&[2, 4])).is_err());
        let e = Tensor::zeros(&[0, 4]);
        assert!(PerturbationStats::between(&e, &e).is_err());
    }
}
