use advcomp_nn::NnError;
use advcomp_tensor::TensorError;
use std::fmt;

/// Errors from adversarial-sample generation.
#[derive(Debug)]
pub enum AttackError {
    /// The attacked network failed (shape bug, non-finite logits...).
    Nn(NnError),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// Bad attack hyper-parameters.
    InvalidConfig(String),
    /// Labels don't match the input batch.
    BatchMismatch {
        /// Batch size of the inputs.
        inputs: usize,
        /// Number of labels supplied.
        labels: usize,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Nn(e) => write!(f, "network error: {e}"),
            AttackError::Tensor(e) => write!(f, "tensor error: {e}"),
            AttackError::InvalidConfig(msg) => write!(f, "invalid attack configuration: {msg}"),
            AttackError::BatchMismatch { inputs, labels } => {
                write!(f, "{inputs} inputs but {labels} labels")
            }
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Nn(e) => Some(e),
            AttackError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Nn(e)
    }
}

impl From<TensorError> for AttackError {
    fn from(e: TensorError) -> Self {
        AttackError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: AttackError = NnError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("network error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = AttackError::BatchMismatch {
            inputs: 3,
            labels: 2,
        };
        assert!(e.to_string().contains('3'));
    }
}
