//! Property-based tests for the tensor crate's core algebra.

use advcomp_tensor::{broadcast_shapes, col2im, im2col, Conv2dGeometry, Shape, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..5, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// offset() is a bijection between multi-indices and 0..numel.
    #[test]
    fn offsets_are_bijective(dims in small_dims()) {
        let shape = Shape::new(&dims);
        let mut seen = vec![false; shape.numel()];
        let mut index = vec![0usize; dims.len()];
        loop {
            let off = shape.offset(&index).unwrap();
            prop_assert!(!seen[off], "offset {off} hit twice");
            seen[off] = true;
            // Odometer increment.
            let mut axis = dims.len();
            loop {
                if axis == 0 {
                    break;
                }
                axis -= 1;
                index[axis] += 1;
                if index[axis] < dims[axis] {
                    break;
                }
                index[axis] = 0;
                if axis == 0 {
                    // wrapped completely
                    prop_assert!(seen.iter().all(|&s| s));
                    return Ok(());
                }
            }
        }
    }

    /// Reshape preserves data and is reversible.
    #[test]
    fn reshape_roundtrip(dims in small_dims()) {
        let n: usize = dims.iter().product();
        let t = Tensor::new(&dims, (0..n).map(|v| v as f32).collect()).unwrap();
        let flat = t.reshape(&[n]).unwrap();
        let back = flat.reshape(&dims).unwrap();
        prop_assert_eq!(back.data(), t.data());
        prop_assert_eq!(back.shape(), t.shape());
    }

    /// Double transpose is the identity.
    #[test]
    fn transpose_involution(m in 1usize..8, n in 1usize..8, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = advcomp_tensor::Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[m, n], &mut rng);
        let tt = t.t().unwrap().t().unwrap();
        prop_assert_eq!(tt.data(), t.data());
    }

    /// (AB)ᵀ == BᵀAᵀ for the fast kernel.
    #[test]
    fn matmul_transpose_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let init = advcomp_tensor::Init::Uniform { lo: -1.0, hi: 1.0 };
        let a = init.tensor(&[m, k], &mut rng);
        let b = init.tensor(&[k, n], &mut rng);
        let ab_t = a.matmul(&b).unwrap().t().unwrap();
        let bt_at = b.t().unwrap().matmul(&a.t().unwrap()).unwrap();
        prop_assert!(ab_t.allclose(&bt_at, 1e-4));
    }

    /// Fast matmul agrees with the naive reference on random shapes.
    #[test]
    fn matmul_matches_naive(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..50) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let init = advcomp_tensor::Init::Uniform { lo: -2.0, hi: 2.0 };
        let a = init.tensor(&[m, k], &mut rng);
        let b = init.tensor(&[k, n], &mut rng);
        // Local triple-loop reference; the library's `matmul_naive` is
        // feature-gated out of non-test builds.
        let mut naive = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                naive.data_mut()[i * n + j] = acc;
            }
        }
        prop_assert!(a.matmul(&b).unwrap().allclose(&naive, 1e-3));
    }

    /// Broadcasting is commutative and agrees with equal shapes.
    #[test]
    fn broadcast_symmetry(a in small_dims(), b in small_dims()) {
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "asymmetric broadcast: {x:?} vs {y:?}"),
        }
    }

    /// im2col/col2im adjointness on random geometries:
    /// <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn conv_lowering_adjoint(
        c in 1usize..3,
        hw in 3usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..50,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let geom = Conv2dGeometry::square(c, hw, k, stride, pad);
        let (oh, ow) = geom.output_hw().unwrap();
        let init = advcomp_tensor::Init::Uniform { lo: -1.0, hi: 1.0 };
        let x = init.tensor(&[2, c, hw, hw], &mut rng);
        let y = init.tensor(&[2 * oh * ow, geom.patch_len()], &mut rng);
        let ax = im2col(&x, &geom).unwrap();
        let aty = col2im(&y, &geom, 2).unwrap();
        let lhs: f64 = ax.data().iter().zip(y.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let rhs: f64 = x.data().iter().zip(aty.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Norm identities: ||x||∞ ≤ ||x||₂ ≤ ||x||₁ and density in [0,1].
    #[test]
    fn norm_ordering(values in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
        let t = Tensor::from_vec(values);
        prop_assert!(t.linf_norm() <= t.l2_norm() + 1e-4);
        prop_assert!(t.l2_norm() <= t.l1_norm() + 1e-3);
        prop_assert!((0.0..=1.0).contains(&t.density()));
    }

    /// stack then index_axis0 recovers the originals.
    #[test]
    fn stack_index_roundtrip(rows in proptest::collection::vec(proptest::collection::vec(-5.0f32..5.0, 4), 1..6)) {
        let tensors: Vec<Tensor> = rows.iter().map(|r| Tensor::from_vec(r.clone())).collect();
        let stacked = Tensor::stack(&tensors).unwrap();
        for (i, r) in rows.iter().enumerate() {
            let row = stacked.index_axis0(i).unwrap();
            prop_assert_eq!(row.data(), r.as_slice());
        }
    }
}
