//! Property tests for the pooled GEMM kernels and the parallelised
//! convolution lowering.
//!
//! The pool is sized once per process from `ADVCOMP_THREADS`, so a single
//! test binary cannot vary the environment variable between cases. Instead
//! these tests exercise the 1-, 2- and 8-way band splits through
//! `pool::with_thread_cap`, which caps the parallelism a caller uses
//! without touching the pool itself — the same code paths a process started
//! with `ADVCOMP_THREADS=1|2|8` would take.

use advcomp_tensor::{
    col2im, im2col, im2col_into, nchw_to_rows, pool, rows_to_nchw, Conv2dGeometry, Init,
    KernelBackend, MatmulKernel, Tensor,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn uniform(shape: &[usize], rng: &mut rand::rngs::StdRng) -> Tensor {
    Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(shape, rng)
}

/// Local triple-loop reference (the library's `matmul_naive` is gated
/// behind `cfg(test)` / the `bench-ablation` feature and integration tests
/// compile against the production surface).
fn naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.data()[i * k + kk] * b.data()[kk * n + j];
            }
            out.data_mut()[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pooled matmul (both kernels), the serial blocked kernel and the
    /// naive reference agree for every thread cap, including row counts
    /// that do not divide evenly into bands. Sizes straddle the parallel
    /// threshold so both the serial and the pooled dispatch run.
    #[test]
    fn kernels_agree_under_thread_caps(
        m in 1usize..70,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Force past the parallel threshold for a third of the cases by
        // widening k (m stays non-divisible-prone).
        let k = if seed % 3 == 0 { k + 64 } else { k };
        let a = uniform(&[m, k], &mut rng);
        let b = uniform(&[k, n], &mut rng);
        let reference = naive(&a, &b);
        // Both explicit backends must agree with the reference regardless
        // of which one ADVCOMP_KERNEL selected for this process.
        for be in [KernelBackend::Scalar, KernelBackend::Simd] {
            let dense = a.matmul_with(&b, MatmulKernel::Dense, be).unwrap();
            prop_assert!(dense.allclose(&reference, 1e-4), "dense/{} vs naive", be.name());
            let sparse = a.matmul_with(&b, MatmulKernel::Sparse, be).unwrap();
            prop_assert!(sparse.allclose(&reference, 1e-4), "sparse/{} vs naive", be.name());
        }
        for cap in [1usize, 2, 8] {
            let (pooled, dense, sparse) = pool::with_thread_cap(cap, || {
                (
                    a.matmul(&b).unwrap(),
                    a.matmul_with_kernel(&b, MatmulKernel::Dense).unwrap(),
                    a.matmul_with_kernel(&b, MatmulKernel::Sparse).unwrap(),
                )
            });
            prop_assert!(pooled.allclose(&reference, 1e-4), "pooled vs naive, cap {cap}");
            prop_assert!(dense.allclose(&reference, 1e-4), "dense vs naive, cap {cap}");
            prop_assert!(sparse.allclose(&reference, 1e-4), "sparse vs naive, cap {cap}");
        }
    }

    /// The parallelised im2col/col2im pair keeps the adjoint identity
    /// <im2col(x), y> == <x, col2im(y)> at every thread cap, and the
    /// scratch-reusing im2col_into matches the allocating im2col exactly.
    #[test]
    fn conv_lowering_adjoint_under_thread_caps(
        batch in 1usize..5,
        c in 1usize..3,
        hw in 3usize..8,
        kern in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw + 2 * pad >= kern);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let geom = Conv2dGeometry::square(c, hw, kern, stride, pad);
        let (oh, ow) = geom.output_hw().unwrap();
        let x = uniform(&[batch, c, hw, hw], &mut rng);
        let y = uniform(&[batch * oh * ow, geom.patch_len()], &mut rng);
        let mut scratch = Tensor::default();
        for cap in [1usize, 2, 8] {
            let (ax, aty) = pool::with_thread_cap(cap, || {
                im2col_into(&x, &geom, &mut scratch).unwrap();
                (im2col(&x, &geom).unwrap(), col2im(&y, &geom, batch).unwrap())
            });
            prop_assert_eq!(scratch.data(), ax.data(), "im2col_into vs im2col, cap {}", cap);
            let lhs: f64 = ax.data().iter().zip(y.data())
                .map(|(a, b)| (*a as f64) * (*b as f64)).sum();
            let rhs: f64 = x.data().iter().zip(aty.data())
                .map(|(a, b)| (*a as f64) * (*b as f64)).sum();
            prop_assert!(
                (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
                "adjoint broke at cap {cap}: {lhs} vs {rhs}"
            );
        }
    }

    /// The GEMM-row/NCHW reorders are mutually inverse at every thread cap.
    #[test]
    fn nchw_reorder_roundtrip_under_thread_caps(
        batch in 1usize..5,
        oc in 1usize..6,
        oh in 1usize..6,
        ow in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows = uniform(&[batch * oh * ow, oc], &mut rng);
        for cap in [1usize, 2, 8] {
            let back = pool::with_thread_cap(cap, || {
                let nchw = rows_to_nchw(&rows, batch, oc, oh, ow).unwrap();
                nchw_to_rows(&nchw, batch, oc, oh, ow).unwrap()
            });
            prop_assert_eq!(back.data(), rows.data(), "roundtrip broke at cap {}", cap);
        }
    }
}

/// Deterministic (non-property) check on the exact acceptance shapes: a
/// 128×128×128 product, the size the ablation bench measures, under both
/// explicit backends.
#[test]
fn acceptance_size_agrees_across_kernels() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let a = uniform(&[128, 128], &mut rng);
    let b = uniform(&[128, 128], &mut rng);
    let reference = naive(&a, &b);
    assert!(a.matmul(&b).unwrap().allclose(&reference, 1e-4));
    for be in [KernelBackend::Scalar, KernelBackend::Simd] {
        assert!(a
            .matmul_with(&b, MatmulKernel::Dense, be)
            .unwrap()
            .allclose(&reference, 1e-4));
    }
}
