//! Random tensor initialisers.
//!
//! Weight initialisation follows the conventions the paper's training setup
//! (TensorFlow/Mayo) relied on: truncated-Gaussian/Kaiming-style fan-scaled
//! draws for conv and dense kernels, zeros for biases.

use crate::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Which fan count scales a fan-aware initialiser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanMode {
    /// Scale by the number of inputs to each unit (forward-variance
    /// preserving; the usual choice for ReLU networks).
    FanIn,
    /// Scale by the number of outputs of each unit.
    FanOut,
}

/// A random initialisation scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// Independent uniform draws on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f32,
        /// Upper bound (exclusive).
        hi: f32,
    },
    /// Independent Gaussian draws.
    Normal {
        /// Mean.
        mean: f32,
        /// Standard deviation.
        std: f32,
    },
    /// Kaiming/He initialisation for ReLU stacks: `N(0, sqrt(2 / fan))`.
    Kaiming {
        /// Which fan to scale by.
        mode: FanMode,
    },
    /// Xavier/Glorot uniform: `U(±sqrt(6 / (fan_in + fan_out)))`.
    Xavier,
    /// All zeros (biases).
    Zeros,
}

impl Init {
    /// Draws a tensor of the given shape.
    ///
    /// For fan-aware schemes the fans are inferred from the shape: a 2-D
    /// `[out, in]` dense kernel uses those extents directly; a 4-D
    /// `[oc, ic, kh, kw]` conv kernel uses `ic·kh·kw` / `oc·kh·kw`.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniform` range is empty (`lo >= hi`) or a `Normal`
    /// standard deviation is negative.
    pub fn tensor<R: Rng + ?Sized>(&self, shape: &[usize], rng: &mut R) -> Tensor {
        let n = crate::shape::numel(shape);
        let data: Vec<f32> = match *self {
            Init::Uniform { lo, hi } => {
                assert!(lo < hi, "uniform init requires lo < hi");
                let d = Uniform::new(lo, hi);
                (0..n).map(|_| d.sample(rng)).collect()
            }
            Init::Normal { mean, std } => {
                let d = Normal::new(mean, std).expect("normal init requires std >= 0");
                (0..n).map(|_| d.sample(rng)).collect()
            }
            Init::Kaiming { mode } => {
                let (fan_in, fan_out) = fans(shape);
                let fan = match mode {
                    FanMode::FanIn => fan_in,
                    FanMode::FanOut => fan_out,
                };
                let std = (2.0 / fan.max(1) as f32).sqrt();
                let d = Normal::new(0.0, std).expect("std is non-negative");
                (0..n).map(|_| d.sample(rng)).collect()
            }
            Init::Xavier => {
                let (fan_in, fan_out) = fans(shape);
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                let d = Uniform::new_inclusive(-bound, bound);
                (0..n).map(|_| d.sample(rng)).collect()
            }
            Init::Zeros => vec![0.0; n],
        };
        Tensor::new(shape, data).expect("numel(shape) elements were generated")
    }
}

/// Infers `(fan_in, fan_out)` from a kernel shape.
fn fans(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        0 => (1, 1),
        1 => (shape[0], shape[0]),
        2 => (shape[1], shape[0]), // dense kernels are [out, in]
        _ => {
            let receptive: usize = shape[2..].iter().product();
            (shape[1] * receptive, shape[0] * receptive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn uniform_within_bounds() {
        let t = Init::Uniform { lo: -0.5, hi: 0.5 }.tensor(&[1000], &mut rng());
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let t = Init::Normal {
            mean: 1.0,
            std: 2.0,
        }
        .tensor(&[20000], &mut rng());
        assert!((t.mean() - 1.0).abs() < 0.1);
        assert!((t.std() - 2.0).abs() < 0.1);
    }

    #[test]
    fn kaiming_variance_scales_with_fan_in() {
        let t = Init::Kaiming {
            mode: FanMode::FanIn,
        }
        .tensor(&[64, 128], &mut rng());
        let expected_std = (2.0f32 / 128.0).sqrt();
        assert!((t.std() - expected_std).abs() < 0.02);
    }

    #[test]
    fn conv_fans() {
        assert_eq!(fans(&[32, 16, 3, 3]), (16 * 9, 32 * 9));
        assert_eq!(fans(&[10, 20]), (20, 10));
        assert_eq!(fans(&[7]), (7, 7));
    }

    #[test]
    fn xavier_within_bound() {
        let t = Init::Xavier.tensor(&[50, 50], &mut rng());
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= bound + 1e-6));
    }

    #[test]
    fn zeros_init() {
        let t = Init::Zeros.tensor(&[4, 4], &mut rng());
        assert_eq!(t.l0_norm(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::Normal {
            mean: 0.0,
            std: 1.0,
        }
        .tensor(&[16], &mut rng());
        let b = Init::Normal {
            mean: 0.0,
            std: 1.0,
        }
        .tensor(&[16], &mut rng());
        assert_eq!(a.data(), b.data());
    }
}
