//! Reductions, statistics and norms.
//!
//! The O(n) reductions (`sum`, extrema, norms) run through the
//! backend-dispatched slice kernels in [`crate::simd`]. Sum-type
//! reductions are reassociated under the SIMD backend (lane-parallel
//! accumulators) and so differ from scalar by a few ULPs; extrema and the
//! L∞ norm are order-insensitive and agree exactly on finite data.

use crate::simd;
use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        simd::sum_slice(simd::backend(), self.data())
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty tensor.
    pub fn max(&self) -> Result<f32> {
        if self.is_empty() {
            return Err(TensorError::Empty("max"));
        }
        Ok(simd::max_slice(simd::backend(), self.data()))
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty tensor.
    pub fn min(&self) -> Result<f32> {
        if self.is_empty() {
            return Err(TensorError::Empty("min"));
        }
        Ok(simd::min_slice(simd::backend(), self.data()))
    }

    /// Index of the first maximum element (linear, row-major).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.is_empty() {
            return Err(TensorError::Empty("argmax"));
        }
        let mut best = 0usize;
        for (i, &v) in self.data().iter().enumerate() {
            if v > self.data()[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Per-row argmax of a 2-D tensor — the predicted class per sample for a
    /// `[batch, classes]` logit matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless 2-D, or
    /// [`TensorError::Empty`] when the class axis is empty.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.ndim(),
                op: "argmax_rows",
            });
        }
        let (m, n) = (self.shape()[0], self.shape()[1]);
        if n == 0 {
            return Err(TensorError::Empty("argmax_rows"));
        }
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Column sums of a 2-D tensor: `[m, n] -> [n]`. This is exactly the
    /// bias-gradient reduction in dense/conv layers.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless 2-D.
    pub fn sum_axis0(&self) -> Result<Tensor> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.ndim(),
                op: "sum_axis0",
            });
        }
        let n = self.shape()[1];
        let mut out = Tensor::zeros(&[n]);
        let be = simd::backend();
        // Row-wise accumulation in the same i-outer / j-inner order as the
        // reference double loop, so the result is bit-exact across backends
        // (add_assign is in the bit-exact kernel class).
        for row in self.data().chunks(n.max(1)) {
            simd::add_assign_slices(be, out.data_mut(), row);
        }
        Ok(out)
    }

    /// Number of non-zero elements — the "L0 norm" used for sparsity and
    /// perturbation-size reporting.
    pub fn l0_norm(&self) -> usize {
        self.data().iter().filter(|&&v| v != 0.0).count()
    }

    /// Sum of absolute values.
    pub fn l1_norm(&self) -> f32 {
        simd::sum_abs_slice(simd::backend(), self.data())
    }

    /// Euclidean norm.
    pub fn l2_norm(&self) -> f32 {
        simd::sumsq_slice(simd::backend(), self.data()).sqrt()
    }

    /// Maximum absolute value (0 for an empty tensor).
    pub fn linf_norm(&self) -> f32 {
        simd::max_abs_slice(simd::backend(), self.data())
    }

    /// Fraction of non-zero elements in `[0, 1]` — the paper's "density"
    /// axis in Figure 2. Returns 0 for an empty tensor.
    pub fn density(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.l0_norm() as f64 / self.len() as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f32 {
        if self.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / self.len() as f32;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tensor {
        Tensor::new(&[2, 3], vec![1.0, -2.0, 3.0, 0.0, 5.0, -6.0]).unwrap()
    }

    #[test]
    fn basic_reductions() {
        let x = t();
        assert_eq!(x.sum(), 1.0);
        assert!((x.mean() - 1.0 / 6.0).abs() < 1e-6);
        assert_eq!(x.max().unwrap(), 5.0);
        assert_eq!(x.min().unwrap(), -6.0);
    }

    #[test]
    fn empty_reductions_error() {
        let e = Tensor::zeros(&[0]);
        assert!(e.max().is_err());
        assert!(e.min().is_err());
        assert!(e.argmax().is_err());
        assert_eq!(e.mean(), 0.0);
    }

    #[test]
    fn argmax_linear_and_rows() {
        let x = t();
        assert_eq!(x.argmax().unwrap(), 4);
        assert_eq!(x.argmax_rows().unwrap(), vec![2, 1]);
        assert!(Tensor::zeros(&[3]).argmax_rows().is_err());
    }

    #[test]
    fn argmax_first_on_ties() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 3.0]);
        assert_eq!(x.argmax().unwrap(), 1);
    }

    #[test]
    fn sum_axis0_columns() {
        let x = t();
        let s = x.sum_axis0().unwrap();
        assert_eq!(s.data(), &[1.0, 3.0, -3.0]);
    }

    #[test]
    fn norms() {
        let x = Tensor::from_vec(vec![3.0, -4.0, 0.0]);
        assert_eq!(x.l0_norm(), 2);
        assert_eq!(x.l1_norm(), 7.0);
        assert_eq!(x.l2_norm(), 5.0);
        assert_eq!(x.linf_norm(), 4.0);
        assert!((x.density() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn std_of_constant_is_zero() {
        assert_eq!(Tensor::full(&[10], 3.0).std(), 0.0);
        let x = Tensor::from_vec(vec![1.0, -1.0]);
        assert!((x.std() - 1.0).abs() < 1e-6);
    }
}
