use std::fmt;

/// Error type for tensor operations.
///
/// Every fallible operation in this crate reports one of these variants;
/// they are cheap to construct and carry enough context to diagnose shape
/// bugs without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by a shape does not match the data length.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Left operand shape.
        lhs: Vec<usize>,
        /// Right operand shape.
        rhs: Vec<usize>,
        /// Operation that was attempted, e.g. `"matmul"`.
        op: &'static str,
    },
    /// The operation requires a different dimensionality.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
        /// Operation that was attempted.
        op: &'static str,
    },
    /// An index or axis was out of bounds.
    IndexOutOfBounds {
        /// Offending index value.
        index: usize,
        /// Exclusive bound it must stay below.
        bound: usize,
    },
    /// Parameters of a convolution/pooling geometry are inconsistent.
    InvalidGeometry(String),
    /// A zero-sized dimension or empty tensor where one is not allowed.
    Empty(&'static str),
    /// The requested storage or execution format is not supported.
    Unsupported(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "{op} requires rank {expected}, got rank {actual}"),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(
                    f,
                    "index {index} out of bounds for dimension of size {bound}"
                )
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::Empty(op) => write!(f, "{op} requires a non-empty tensor"),
            TensorError::Unsupported(msg) => write!(f, "unsupported format: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4, 5],
            op: "matmul",
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4, 5]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn length_mismatch_message() {
        let err = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(err.to_string().contains('6'));
        assert!(err.to_string().contains('5'));
    }
}
