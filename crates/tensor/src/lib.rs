//! Dense `f32` tensor library underpinning the `advcomp` workspace.
//!
//! The paper's pipeline (train → compress → attack → transfer) was built on
//! TensorFlow; this crate is the from-scratch substitute. It provides a
//! row-major, contiguous, owned tensor type with:
//!
//! * shape bookkeeping and reshape/transpose/slice operations,
//! * elementwise arithmetic with scalar and same-shape operands,
//! * reductions (sums, means, extrema, `argmax`, vector norms),
//! * a density-adaptive matrix multiply (packed dense microkernel or
//!   zero-skipping sparse kernel) run on a persistent worker pool
//!   ([`pool`]),
//! * runtime-dispatched AVX2+FMA slice kernels with scalar fallbacks for
//!   the GEMM microkernel, elementwise ops and reductions ([`simd`],
//!   selected once per process by `ADVCOMP_KERNEL=scalar|simd|auto`),
//! * `im2col`/`col2im` lowering used by convolution layers, and
//! * random initialisers (uniform, Gaussian, Kaiming/Xavier fan-scaled).
//!
//! # Example
//!
//! ```
//! use advcomp_tensor::Tensor;
//!
//! # fn main() -> Result<(), advcomp_tensor::TensorError> {
//! let a = Tensor::new(&[2, 3], vec![1., 2., 3., 4., 5., 6.])?;
//! let b = Tensor::new(&[3, 2], vec![1., 0., 0., 1., 1., 1.])?;
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data(), &[4., 5., 10., 11.]);
//! # Ok(())
//! # }
//! ```

mod conv;
mod error;
mod init;
mod ops;
pub mod pool;
pub mod quant;
mod reduce;
mod shape;
pub mod simd;
mod tensor;

pub use conv::{
    col2im, im2col, im2col_into, im2col_slice, nchw_to_rows, rows_to_nchw, rows_to_nchw_slice,
    Conv2dGeometry,
};
pub use error::TensorError;
pub use init::{FanMode, Init};
pub use ops::{gemm_prepacked, gemm_sparse, probe_matmul_kernel, MatmulKernel, PackedGemmB};
pub use quant::{
    qmatmul, qmatmul_f32, quantize_activations, quantize_activations_into, QActivations, QTensor,
    QuantKind, QK,
};
pub use shape::{broadcast_shapes, numel, Shape};
pub use simd::KernelBackend;
pub use tensor::Tensor;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
