//! Shape algebra shared by all tensor operations.

use crate::{Result, TensorError};

/// A tensor shape: the extent of each axis, outermost first (row-major).
///
/// `Shape` is a thin, validated wrapper around `Vec<usize>`; most public
/// APIs accept `&[usize]` for ergonomics and convert internally.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Extents of each axis.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        numel(&self.0)
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// The stride of the last axis is 1; each earlier axis strides over the
    /// product of the later extents.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index to a linear offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `index` has the wrong rank and
    /// [`TensorError::IndexOutOfBounds`] if any coordinate exceeds its axis.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.0.len() {
            return Err(TensorError::RankMismatch {
                expected: self.0.len(),
                actual: index.len(),
                op: "offset",
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, &bound)) in index.iter().zip(self.0.iter()).enumerate() {
            if i >= bound {
                return Err(TensorError::IndexOutOfBounds { index: i, bound });
            }
            off += i * strides[axis];
        }
        Ok(off)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

/// Total element count of a shape (product of extents; 1 for a scalar shape).
pub fn numel(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// Computes the common shape two operands broadcast to, NumPy-style.
///
/// Axes are aligned from the trailing end; each pair must be equal or one of
/// them must be 1.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes are incompatible.
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let l = if i < rank - lhs.len() {
            1
        } else {
            lhs[i - (rank - lhs.len())]
        };
        let r = if i < rank - rhs.len() {
            1
        } else {
            rhs[i - (rank - rhs.len())]
        };
        out[i] = if l == r || r == 1 {
            l
        } else if l == 1 {
            r
        } else {
            return Err(TensorError::ShapeMismatch {
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
                op: "broadcast",
            });
        };
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn strides_scalar_and_vector() {
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn offset_checks_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { index: 2, bound: 2 })
        ));
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn numel_products() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[5, 0]), 0);
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_with_ones() {
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 3], &[1]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_incompatible() {
        assert!(broadcast_shapes(&[2, 3], &[2, 4]).is_err());
    }
}
