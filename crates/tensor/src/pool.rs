//! Process-wide persistent worker pool for data-parallel kernels.
//!
//! The original kernels spawned fresh scoped OS threads on **every**
//! `matmul` call. Training loops and iterative attacks issue thousands of
//! GEMMs per second, so thread creation became a fixed tax on the whole
//! pipeline. This module replaces per-call spawning with a lazily
//! initialised, channel-fed pool that lives for the life of the process:
//!
//! * Workers are started once, on first use, by [`global`].
//! * The pool is sized by the `ADVCOMP_THREADS` environment variable when
//!   set, otherwise by [`std::thread::available_parallelism`]. The value is
//!   read **once** and cached (see [`available_threads`]).
//! * [`WorkerPool::scope`] provides a scoped-task API: borrowed (non
//!   `'static`) tasks are accepted and the call blocks until every task has
//!   finished, so tasks may safely reference stack data of the caller.
//! * [`for_each_chunk`] builds on `scope` to hand out disjoint mutable
//!   bands of an output buffer — the access pattern of every kernel in this
//!   crate (row bands of a GEMM, batch samples of `im2col`, element ranges
//!   of a large `map`).
//!
//! # Composition with experiment-level parallelism
//!
//! `advcomp_core::runner::run_parallel` runs whole experiment pipelines on
//! its own scoped threads. Those threads all share this single pool, so
//! kernel-level parallelism never multiplies with experiment-level
//! parallelism: total kernel compute threads stay bounded by the pool size
//! regardless of how many runner jobs are in flight. A task submitted from
//! inside a pool worker (nested data parallelism) runs inline on that
//! worker, which makes nesting safe (no deadlock) and keeps the thread
//! count fixed.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of pool work with the caller's borrow lifetime erased. The
/// erasure is sound because [`WorkerPool::scope`] blocks until every task
/// submitted in the scope has completed.
type Task = Box<dyn FnOnce() + Send + 'static>;
type TaskQueue = Arc<Mutex<Receiver<(Arc<ScopeState>, Task)>>>;

/// Number of worker threads used for data-parallel kernels.
///
/// Respects `ADVCOMP_THREADS` when set (useful to pin benchmarks),
/// otherwise uses the machine's available parallelism. The environment is
/// consulted once per process; the result is cached in a `OnceLock` so hot
/// kernels never re-read or re-parse it.
pub fn available_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(s) = std::env::var("ADVCOMP_THREADS") {
            if let Ok(n) = s.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    /// Set while a pool worker is executing a task, so nested `scope` calls
    /// degrade to inline execution instead of deadlocking on a saturated
    /// queue.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };

    /// Per-thread cap on the parallelism a `scope`/`for_each_chunk` caller
    /// will use; `usize::MAX` means "whatever the pool has". Tests and
    /// ablation benches use [`with_thread_cap`] to exercise 1/2/8-way
    /// splits deterministically inside one process.
    static THREAD_CAP: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Runs `f` with kernel parallelism capped at `cap` on this thread.
///
/// The global pool keeps its workers; only the number of bands submitted by
/// kernels called from `f` changes. `cap = 1` forces fully serial kernels.
pub fn with_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_CAP.with(|c| c.replace(cap.max(1)));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Completion state shared between one `scope` call and its tasks.
struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeState {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(ScopeState {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn run_task(&self, task: Task) {
        let result = catch_unwind(AssertUnwindSafe(task));
        if let Err(payload) = result {
            let mut slot = self.panic.lock().unwrap_or_else(|p| p.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut remaining = self.remaining.lock().unwrap_or_else(|p| p.into_inner());
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|p| p.into_inner());
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// The persistent pool: a task channel plus the worker count it was built
/// with. Workers are detached; they live until process exit.
pub struct WorkerPool {
    sender: Sender<(Arc<ScopeState>, Task)>,
    threads: usize,
}

impl WorkerPool {
    fn new(threads: usize) -> Self {
        let (sender, receiver) = channel::<(Arc<ScopeState>, Task)>();
        let receiver = Arc::new(Mutex::new(receiver));
        // One worker fewer than the target parallelism: the thread calling
        // `scope` always executes the final task itself, so `threads`-way
        // splits use exactly `threads` runnable threads.
        for worker in 0..threads.saturating_sub(1) {
            let receiver: TaskQueue = Arc::clone(&receiver);
            std::thread::Builder::new()
                .name(format!("advcomp-pool-{worker}"))
                .spawn(move || {
                    IN_POOL_WORKER.with(|flag| flag.set(true));
                    loop {
                        let next = {
                            let guard = receiver.lock().unwrap_or_else(|p| p.into_inner());
                            guard.recv()
                        };
                        match next {
                            Ok((state, task)) => state.run_task(task),
                            Err(_) => break, // channel closed: process teardown
                        }
                    }
                })
                .expect("failed to spawn pool worker");
        }
        WorkerPool { sender, threads }
    }

    /// Parallelism this pool was sized for (callers should split work into
    /// at most [`effective_threads`](Self::effective_threads) bands).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallelism available to the current thread: the pool size clamped
    /// by [`with_thread_cap`], and 1 inside a pool worker (nested scopes
    /// run inline).
    pub fn effective_threads(&self) -> usize {
        if IN_POOL_WORKER.with(|flag| flag.get()) {
            return 1;
        }
        THREAD_CAP.with(|cap| cap.get()).min(self.threads)
    }

    /// Runs every task, blocking until all complete. Tasks may borrow from
    /// the caller's stack; disjointness of any mutable borrows is the
    /// caller's responsibility (use [`for_each_chunk`] for split buffers).
    ///
    /// The final task always runs on the calling thread; the rest are fed
    /// to the pool workers. If a task panics, the panic is re-raised here
    /// after all tasks have finished.
    pub fn scope<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let inline_only = tasks.len() == 1
            || self.effective_threads() < 2
            || IN_POOL_WORKER.with(|flag| flag.get());
        if inline_only {
            for task in tasks {
                task();
            }
            return;
        }
        let state = ScopeState::new(tasks.len());
        let mut tasks = tasks;
        let last = tasks.pop().expect("len checked above");
        for task in tasks {
            // SAFETY: `wait()` below does not return until the task has
            // run to completion, so the borrowed data outlives the task.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) };
            self.sender
                .send((Arc::clone(&state), task))
                .expect("pool workers never drop the receiver while senders live");
        }
        // SAFETY: as above; also runs before `wait()` returns.
        let last: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(last) };
        state.run_task(last);
        state.wait();
        let payload = {
            let mut slot = state.panic.lock().unwrap_or_else(|p| p.into_inner());
            slot.take()
        };
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// The process-wide pool, started on first use.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(available_threads()))
}

/// Splits `out` into contiguous chunks of `chunk_len` elements and runs
/// `f(chunk_index, chunk)` for each, in parallel on the global pool.
///
/// Chunks are disjoint `&mut` bands, so no synchronisation is needed in
/// `f`. Chunk `i` starts at element `i * chunk_len`; every chunk except
/// possibly the last has exactly `chunk_len` elements.
pub fn for_each_chunk<F>(out: &mut [f32], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let pool = global();
    if pool.effective_threads() < 2 || out.len() <= chunk_len {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, chunk)| Box::new(move || f(i, chunk)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    pool.scope(tasks);
}

/// Splits `out` into `bands` roughly equal contiguous bands aligned to
/// `row_len` elements (never splitting a row) and runs
/// `f(first_row, band)` for each in parallel. Used by the GEMM drivers.
pub fn for_each_row_band<F>(out: &mut [f32], row_len: usize, bands: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert!(row_len > 0 && out.len().is_multiple_of(row_len));
    let rows = out.len() / row_len;
    let band_rows = rows.div_ceil(bands.max(1)).max(1);
    for_each_chunk(out, band_rows * row_len, |band, chunk| {
        f(band * band_rows, chunk)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_disjointly() {
        let mut data = vec![0.0f32; 1000];
        for_each_chunk(&mut data, 130, |i, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 130 + j) as f32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn row_bands_align_to_rows() {
        // 7 rows of 3 split into 4 bands: band starts must be row-aligned.
        let mut data = vec![-1.0f32; 21];
        for_each_row_band(&mut data, 3, 4, |first_row, band| {
            assert_eq!(band.len() % 3, 0);
            for (j, v) in band.iter_mut().enumerate() {
                *v = (first_row * 3 + j) as f32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn scope_runs_all_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        global().scope(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    Box::new(move || {
                        if i == 2 {
                            panic!("boom");
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            global().scope(tasks);
        });
        assert!(result.is_err(), "worker panic must surface to the caller");
        // The pool must remain usable after a panic.
        let mut data = vec![0.0f32; 256];
        for_each_chunk(&mut data, 16, |_, chunk| {
            for v in chunk.iter_mut() {
                *v = 1.0;
            }
        });
        assert!(data.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn thread_cap_forces_serial() {
        with_thread_cap(1, || {
            assert_eq!(global().effective_threads(), 1);
        });
        assert!(global().effective_threads() >= 1);
    }

    #[test]
    fn nested_scopes_run_inline() {
        // A task that itself calls for_each_chunk must not deadlock.
        let mut outer = vec![0.0f32; 64];
        for_each_chunk(&mut outer, 8, |_, chunk| {
            let mut inner = vec![0.0f32; 32];
            for_each_chunk(&mut inner, 4, |_, c| {
                for v in c.iter_mut() {
                    *v = 1.0;
                }
            });
            chunk[0] = inner.iter().sum();
        });
        for band in outer.chunks(8) {
            assert_eq!(band[0], 32.0);
        }
    }

    #[test]
    fn available_threads_is_cached_and_positive() {
        let a = available_threads();
        let b = available_threads();
        assert_eq!(a, b);
        assert!(a >= 1);
    }
}
