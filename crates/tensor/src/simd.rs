//! Runtime-dispatched SIMD slice kernels (AVX2+FMA) with scalar fallbacks.
//!
//! Every hot elementwise loop, reduction and the dense GEMM microkernel in
//! this crate funnels through the free functions here, each of which takes
//! an explicit [`KernelBackend`]. Production tensor ops pass the cached
//! process-wide default from [`backend`] (selected once from the
//! `ADVCOMP_KERNEL` environment variable, mirroring `ADVCOMP_THREADS`);
//! parity tests and the ablation benchmarks pass both backends explicitly
//! so the two implementations can be compared inside one process.
//!
//! # Numerics policy
//!
//! The SIMD implementations fall into two classes:
//!
//! * **Bit-exact** — `add`, `sub`, `mul`, `axpy`, `scale`, `add_scalar`,
//!   `abs`, `sign`, `relu`, `clamp` and the fused attack-step kernels
//!   perform exactly the same IEEE-754 operations per element as the
//!   scalar code, in the same order, with no contraction (the SIMD `axpy`
//!   deliberately uses multiply-then-add rather than FMA). For finite
//!   inputs the results are bitwise identical across backends, so the
//!   golden-vector suite passes under either backend for these ops.
//! * **Tolerance-class** — the GEMM microkernel uses FMA contraction and
//!   the reductions (`sum`, `sumsq`, `sum_abs`) use lane-parallel
//!   accumulators, so results differ from scalar by reassociation /
//!   double-rounding at the level of a few ULPs (≤ 1e-5 relative L2 in the
//!   testkit parity suite). Golden vectors therefore pin
//!   `ADVCOMP_KERNEL=scalar`.
//!
//! NaN edge cases differ where the hardware min/max semantics differ from
//! `f32::clamp`/`f32::max`: `_mm256_max_ps(a, b)` returns `b` when `a` is
//! NaN, so a NaN input to the SIMD `clamp`/`relu`/`max` maps to a bound
//! where the scalar code would propagate the NaN (or, for `relu`, also
//! clamp it). Attack loops guard non-finite gradients *before* stepping
//! (see `advcomp_attacks`), so no production path feeds NaN to these
//! kernels; the divergence is documented rather than papered over with a
//! slow NaN-preserving blend.

use std::sync::OnceLock;

/// Which slice-kernel implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable scalar loops (the reference semantics; goldens pin this).
    Scalar,
    /// AVX2+FMA vector kernels; silently falls back to scalar at each call
    /// site when the CPU lacks the features.
    Simd,
}

impl KernelBackend {
    /// Stable lowercase name (matches the `ADVCOMP_KERNEL` values).
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Simd => "simd",
        }
    }
}

/// `true` when the CPU supports the AVX2+FMA kernels. Detected once and
/// cached; on non-x86_64 targets this is always `false` and every `Simd`
/// request degrades to the scalar implementation.
pub fn simd_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Process-wide default backend for production tensor ops.
///
/// Selected by `ADVCOMP_KERNEL` (read **once** and cached, exactly like
/// `ADVCOMP_THREADS`): `scalar` forces the portable loops, `simd` requests
/// the vector kernels, and `auto` (or unset / unrecognised) picks `simd`
/// when the CPU supports it. A `simd` request on unsupported hardware still
/// returns [`KernelBackend::Simd`]; each kernel then falls back to scalar,
/// so the setting is safe everywhere.
pub fn backend() -> KernelBackend {
    static BACKEND: OnceLock<KernelBackend> = OnceLock::new();
    *BACKEND.get_or_init(|| match std::env::var("ADVCOMP_KERNEL") {
        Ok(s) if s.eq_ignore_ascii_case("scalar") => KernelBackend::Scalar,
        Ok(s) if s.eq_ignore_ascii_case("simd") => KernelBackend::Simd,
        _ => {
            if simd_available() {
                KernelBackend::Simd
            } else {
                KernelBackend::Scalar
            }
        }
    })
}

/// `true` when this call should take the AVX2 path.
#[inline]
pub(crate) fn use_avx2(backend: KernelBackend) -> bool {
    backend == KernelBackend::Simd && simd_available()
}

// ---------------------------------------------------------------------------
// Elementwise kernels (bit-exact class)
// ---------------------------------------------------------------------------

/// `out[i] = a[i] + b[i]`.
pub fn add_slices(backend: KernelBackend, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert!(a.len() == out.len() && b.len() == out.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::add(a, b, out) };
    }
    let _ = backend;
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// `out[i] = a[i] - b[i]`.
pub fn sub_slices(backend: KernelBackend, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert!(a.len() == out.len() && b.len() == out.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::sub(a, b, out) };
    }
    let _ = backend;
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// `out[i] = a[i] * b[i]`.
pub fn mul_slices(backend: KernelBackend, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert!(a.len() == out.len() && b.len() == out.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::mul(a, b, out) };
    }
    let _ = backend;
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// `acc[i] += b[i]`.
pub fn add_assign_slices(backend: KernelBackend, acc: &mut [f32], b: &[f32]) {
    debug_assert_eq!(acc.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::add_assign(acc, b) };
    }
    let _ = backend;
    for (a, &y) in acc.iter_mut().zip(b) {
        *a += y;
    }
}

/// `acc[i] = acc[i] + s * x[i]` (axpy). Multiply-then-add in both backends
/// — no FMA — so the result is bit-exact across backends.
pub fn axpy_slices(backend: KernelBackend, acc: &mut [f32], x: &[f32], s: f32) {
    debug_assert_eq!(acc.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::axpy(acc, x, s) };
    }
    let _ = backend;
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += s * v;
    }
}

/// `out[i] = a[i] * s`.
pub fn scale_slices(backend: KernelBackend, a: &[f32], s: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::scale(a, s, out) };
    }
    let _ = backend;
    for (o, &x) in out.iter_mut().zip(a) {
        *o = x * s;
    }
}

/// `acc[i] *= s` in place.
pub fn scale_assign_slices(backend: KernelBackend, acc: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::scale_assign(acc, s) };
    }
    let _ = backend;
    for a in acc.iter_mut() {
        *a *= s;
    }
}

/// `out[i] = a[i] + s`.
pub fn add_scalar_slices(backend: KernelBackend, a: &[f32], s: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::add_scalar(a, s, out) };
    }
    let _ = backend;
    for (o, &x) in out.iter_mut().zip(a) {
        *o = x + s;
    }
}

/// `out[i] = |a[i]|`.
pub fn abs_slices(backend: KernelBackend, a: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::abs(a, out) };
    }
    let _ = backend;
    for (o, &x) in out.iter_mut().zip(a) {
        *o = x.abs();
    }
}

/// `out[i] = sign(a[i])` ∈ {-1, 0, +1}, with 0 for NaN (the paper's FGSM
/// convention; see [`crate::Tensor::sign`]). Bit-exact across backends.
pub fn sign_slices(backend: KernelBackend, a: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::sign(a, out) };
    }
    let _ = backend;
    for (o, &x) in out.iter_mut().zip(a) {
        *o = scalar_sign(x);
    }
}

/// `out[i] = max(a[i], 0)`.
pub fn relu_slices(backend: KernelBackend, a: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::relu(a, out) };
    }
    let _ = backend;
    for (o, &x) in out.iter_mut().zip(a) {
        *o = x.max(0.0);
    }
}

/// `out[i] = clamp(a[i], lo, hi)` (caller guarantees `lo <= hi`).
pub fn clamp_slices(backend: KernelBackend, a: &[f32], lo: f32, hi: f32, out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::clamp(a, lo, hi, out) };
    }
    let _ = backend;
    for (o, &x) in out.iter_mut().zip(a) {
        *o = x.clamp(lo, hi);
    }
}

#[inline]
fn scalar_sign(v: f32) -> f32 {
    if v > 0.0 {
        1.0
    } else if v < 0.0 {
        -1.0
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------------
// Fused attack-step kernels (bit-exact class)
// ---------------------------------------------------------------------------
//
// Each fused kernel performs, per element, exactly the float operations the
// historical unfused tensor-op chain performed (same order, no
// contraction), so switching an attack to the fused path changes neither
// goldens nor determinism — it only removes the intermediate traversals and
// allocations.

/// FGSM/IFGSM step: `x[i] = clamp(x[i] + step * sign(g[i]), lo, hi)`.
pub fn fused_sign_step_clamp(
    backend: KernelBackend,
    x: &mut [f32],
    g: &[f32],
    step: f32,
    lo: f32,
    hi: f32,
) {
    debug_assert_eq!(x.len(), g.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::fused_sign_step_clamp(x, g, step, lo, hi) };
    }
    let _ = backend;
    for (xv, &gv) in x.iter_mut().zip(g) {
        *xv = (*xv + step * scalar_sign(gv)).clamp(lo, hi);
    }
}

/// FGM/IFGM step:
/// `x[i] = clamp(x[i] + clamp(scale * g[i], -ball, ball), lo, hi)`.
/// Pass `ball = f32::INFINITY` for an unclipped gradient step.
pub fn fused_grad_step_clamp(
    backend: KernelBackend,
    x: &mut [f32],
    g: &[f32],
    scale: f32,
    ball: f32,
    lo: f32,
    hi: f32,
) {
    debug_assert_eq!(x.len(), g.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::fused_grad_step_clamp(x, g, scale, ball, lo, hi) };
    }
    let _ = backend;
    for (xv, &gv) in x.iter_mut().zip(g) {
        *xv = (*xv + (scale * gv).clamp(-ball, ball)).clamp(lo, hi);
    }
}

/// PGD step: sign step followed by projection onto the `eps`-ball around
/// `origin`, then the data range:
/// `x[i] = clamp(clamp(x[i] + step * sign(g[i]), origin[i] - eps, origin[i] + eps), lo, hi)`.
#[allow(clippy::too_many_arguments)]
pub fn fused_project_step_clamp(
    backend: KernelBackend,
    x: &mut [f32],
    g: &[f32],
    origin: &[f32],
    step: f32,
    eps: f32,
    lo: f32,
    hi: f32,
) {
    debug_assert!(x.len() == g.len() && x.len() == origin.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::fused_project_step_clamp(x, g, origin, step, eps, lo, hi) };
    }
    let _ = backend;
    for ((xv, &gv), &ov) in x.iter_mut().zip(g).zip(origin) {
        let stepped = *xv + step * scalar_sign(gv);
        *xv = stepped.clamp(ov - eps, ov + eps).clamp(lo, hi);
    }
}

// ---------------------------------------------------------------------------
// Reductions (tolerance class for sums; extrema are order-insensitive)
// ---------------------------------------------------------------------------

/// Sum of all elements. SIMD uses lane-parallel accumulators (reassociated).
pub fn sum_slice(backend: KernelBackend, a: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::sum(a) };
    }
    let _ = backend;
    a.iter().sum()
}

/// Sum of squares (the L2 norm before the square root). SIMD uses FMA.
pub fn sumsq_slice(backend: KernelBackend, a: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::sumsq(a) };
    }
    let _ = backend;
    a.iter().map(|v| v * v).sum()
}

/// Sum of absolute values (L1 norm).
pub fn sum_abs_slice(backend: KernelBackend, a: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::sum_abs(a) };
    }
    let _ = backend;
    a.iter().map(|v| v.abs()).sum()
}

/// Maximum element (`NEG_INFINITY` for an empty slice). Max is associative
/// and commutative over finite floats, so both backends agree exactly on
/// finite inputs.
pub fn max_slice(backend: KernelBackend, a: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::max(a) };
    }
    let _ = backend;
    a.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v))
}

/// Minimum element (`INFINITY` for an empty slice).
pub fn min_slice(backend: KernelBackend, a: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::min(a) };
    }
    let _ = backend;
    a.iter().fold(f32::INFINITY, |m, &v| m.min(v))
}

/// Maximum absolute value (0 for an empty slice) — the L∞ norm.
pub fn max_abs_slice(backend: KernelBackend, a: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        return unsafe { avx2::max_abs(a) };
    }
    let _ = backend;
    a.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

// ---------------------------------------------------------------------------
// Dense GEMM microkernel (tolerance class: FMA contraction)
// ---------------------------------------------------------------------------

/// AVX2 dense microkernel over one output row band of packed-panel GEMM.
///
/// Layout contract is identical to the scalar microkernel in `ops.rs`:
/// `packed_b` holds `k`-row column panels of width `panel` (last one
/// ragged), and `out_band` covers rows `[row_start, ...)` of the result,
/// zero-initialised. Returns `false` when the AVX2 path is unavailable (or
/// the backend is `Scalar`) so the caller can run its scalar kernel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_dense_rows(
    backend: KernelBackend,
    a: &[f32],
    packed_b: &[f32],
    out_band: &mut [f32],
    row_start: usize,
    k: usize,
    n: usize,
    panel: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if use_avx2(backend) {
        unsafe { avx2::gemm_dense_rows(a, packed_b, out_band, row_start, k, n, panel) };
        return true;
    }
    let _ = (backend, a, packed_b, out_band, row_start, k, n, panel);
    false
}

// ---------------------------------------------------------------------------
// AVX2 implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The vector bodies. Every function is `unsafe` because it must only
    //! run on a CPU with AVX2 (+FMA where used); the dispatchers above
    //! guarantee that via [`super::simd_available`].

    use core::arch::x86_64::*;

    const LANES: usize = 8;

    #[target_feature(enable = "avx2")]
    pub unsafe fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + LANES <= n {
            let v = _mm256_add_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
            _mm256_storeu_ps(op.add(i), v);
            i += LANES;
        }
        while i < n {
            *op.add(i) = *ap.add(i) + *bp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + LANES <= n {
            let v = _mm256_sub_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
            _mm256_storeu_ps(op.add(i), v);
            i += LANES;
        }
        while i < n {
            *op.add(i) = *ap.add(i) - *bp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul(a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + LANES <= n {
            let v = _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
            _mm256_storeu_ps(op.add(i), v);
            i += LANES;
        }
        while i < n {
            *op.add(i) = *ap.add(i) * *bp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign(acc: &mut [f32], b: &[f32]) {
        let n = acc.len();
        let (ap, bp) = (acc.as_mut_ptr(), b.as_ptr());
        let mut i = 0;
        while i + LANES <= n {
            let v = _mm256_add_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
            _mm256_storeu_ps(ap.add(i), v);
            i += LANES;
        }
        while i < n {
            *ap.add(i) += *bp.add(i);
            i += 1;
        }
    }

    /// Deliberately mul-then-add (NOT `_mm256_fmadd_ps`): the scalar axpy
    /// rounds the product before the add, and this kernel is in the
    /// bit-exact class.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(acc: &mut [f32], x: &[f32], s: f32) {
        let n = acc.len();
        let (ap, xp) = (acc.as_mut_ptr(), x.as_ptr());
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + LANES <= n {
            let prod = _mm256_mul_ps(sv, _mm256_loadu_ps(xp.add(i)));
            _mm256_storeu_ps(ap.add(i), _mm256_add_ps(_mm256_loadu_ps(ap.add(i)), prod));
            i += LANES;
        }
        while i < n {
            *ap.add(i) += s * *xp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(a: &[f32], s: f32, out: &mut [f32]) {
        let n = out.len();
        let (ap, op) = (a.as_ptr(), out.as_mut_ptr());
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + LANES <= n {
            _mm256_storeu_ps(op.add(i), _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), sv));
            i += LANES;
        }
        while i < n {
            *op.add(i) = *ap.add(i) * s;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_assign(acc: &mut [f32], s: f32) {
        let n = acc.len();
        let ap = acc.as_mut_ptr();
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + LANES <= n {
            _mm256_storeu_ps(ap.add(i), _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), sv));
            i += LANES;
        }
        while i < n {
            *ap.add(i) *= s;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_scalar(a: &[f32], s: f32, out: &mut [f32]) {
        let n = out.len();
        let (ap, op) = (a.as_ptr(), out.as_mut_ptr());
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i + LANES <= n {
            _mm256_storeu_ps(op.add(i), _mm256_add_ps(_mm256_loadu_ps(ap.add(i)), sv));
            i += LANES;
        }
        while i < n {
            *op.add(i) = *ap.add(i) + s;
            i += 1;
        }
    }

    /// Clears the sign bit — bit-identical to `f32::abs` for every input
    /// including NaN payloads.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn abs_ps(v: __m256) -> __m256 {
        _mm256_and_ps(v, _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff)))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn abs(a: &[f32], out: &mut [f32]) {
        let n = out.len();
        let (ap, op) = (a.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + LANES <= n {
            _mm256_storeu_ps(op.add(i), abs_ps(_mm256_loadu_ps(ap.add(i))));
            i += LANES;
        }
        while i < n {
            *op.add(i) = (*ap.add(i)).abs();
            i += 1;
        }
    }

    /// `(v > 0) - (v < 0)` via ordered-compare masks: NaN fails both
    /// compares and maps to 0, matching the scalar branch chain exactly.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sign_ps(v: __m256) -> __m256 {
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let pos = _mm256_and_ps(_mm256_cmp_ps(v, zero, _CMP_GT_OQ), one);
        let neg = _mm256_and_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ), one);
        _mm256_sub_ps(pos, neg)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sign(a: &[f32], out: &mut [f32]) {
        let n = out.len();
        let (ap, op) = (a.as_ptr(), out.as_mut_ptr());
        let mut i = 0;
        while i + LANES <= n {
            _mm256_storeu_ps(op.add(i), sign_ps(_mm256_loadu_ps(ap.add(i))));
            i += LANES;
        }
        while i < n {
            *op.add(i) = super::scalar_sign(*ap.add(i));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn relu(a: &[f32], out: &mut [f32]) {
        let n = out.len();
        let (ap, op) = (a.as_ptr(), out.as_mut_ptr());
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            _mm256_storeu_ps(op.add(i), _mm256_max_ps(_mm256_loadu_ps(ap.add(i)), zero));
            i += LANES;
        }
        while i < n {
            *op.add(i) = (*ap.add(i)).max(0.0);
            i += 1;
        }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn clamp_ps(v: __m256, lo: __m256, hi: __m256) -> __m256 {
        _mm256_min_ps(_mm256_max_ps(v, lo), hi)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn clamp(a: &[f32], lo: f32, hi: f32, out: &mut [f32]) {
        let n = out.len();
        let (ap, op) = (a.as_ptr(), out.as_mut_ptr());
        let (lov, hiv) = (_mm256_set1_ps(lo), _mm256_set1_ps(hi));
        let mut i = 0;
        while i + LANES <= n {
            _mm256_storeu_ps(op.add(i), clamp_ps(_mm256_loadu_ps(ap.add(i)), lov, hiv));
            i += LANES;
        }
        while i < n {
            *op.add(i) = (*ap.add(i)).clamp(lo, hi);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn fused_sign_step_clamp(x: &mut [f32], g: &[f32], step: f32, lo: f32, hi: f32) {
        let n = x.len();
        let (xp, gp) = (x.as_mut_ptr(), g.as_ptr());
        let stepv = _mm256_set1_ps(step);
        let (lov, hiv) = (_mm256_set1_ps(lo), _mm256_set1_ps(hi));
        let mut i = 0;
        while i + LANES <= n {
            let delta = _mm256_mul_ps(stepv, sign_ps(_mm256_loadu_ps(gp.add(i))));
            let stepped = _mm256_add_ps(_mm256_loadu_ps(xp.add(i)), delta);
            _mm256_storeu_ps(xp.add(i), clamp_ps(stepped, lov, hiv));
            i += LANES;
        }
        while i < n {
            let xv = *xp.add(i) + step * super::scalar_sign(*gp.add(i));
            *xp.add(i) = xv.clamp(lo, hi);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn fused_grad_step_clamp(
        x: &mut [f32],
        g: &[f32],
        scale: f32,
        ball: f32,
        lo: f32,
        hi: f32,
    ) {
        let n = x.len();
        let (xp, gp) = (x.as_mut_ptr(), g.as_ptr());
        let scalev = _mm256_set1_ps(scale);
        let (nballv, ballv) = (_mm256_set1_ps(-ball), _mm256_set1_ps(ball));
        let (lov, hiv) = (_mm256_set1_ps(lo), _mm256_set1_ps(hi));
        let mut i = 0;
        while i + LANES <= n {
            let delta = clamp_ps(
                _mm256_mul_ps(scalev, _mm256_loadu_ps(gp.add(i))),
                nballv,
                ballv,
            );
            let stepped = _mm256_add_ps(_mm256_loadu_ps(xp.add(i)), delta);
            _mm256_storeu_ps(xp.add(i), clamp_ps(stepped, lov, hiv));
            i += LANES;
        }
        while i < n {
            let delta = (scale * *gp.add(i)).clamp(-ball, ball);
            *xp.add(i) = (*xp.add(i) + delta).clamp(lo, hi);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn fused_project_step_clamp(
        x: &mut [f32],
        g: &[f32],
        origin: &[f32],
        step: f32,
        eps: f32,
        lo: f32,
        hi: f32,
    ) {
        let n = x.len();
        let (xp, gp, op) = (x.as_mut_ptr(), g.as_ptr(), origin.as_ptr());
        let stepv = _mm256_set1_ps(step);
        let epsv = _mm256_set1_ps(eps);
        let (lov, hiv) = (_mm256_set1_ps(lo), _mm256_set1_ps(hi));
        let mut i = 0;
        while i + LANES <= n {
            let delta = _mm256_mul_ps(stepv, sign_ps(_mm256_loadu_ps(gp.add(i))));
            let stepped = _mm256_add_ps(_mm256_loadu_ps(xp.add(i)), delta);
            let ov = _mm256_loadu_ps(op.add(i));
            let ball = clamp_ps(stepped, _mm256_sub_ps(ov, epsv), _mm256_add_ps(ov, epsv));
            _mm256_storeu_ps(xp.add(i), clamp_ps(ball, lov, hiv));
            i += LANES;
        }
        while i < n {
            let ov = *op.add(i);
            let stepped = *xp.add(i) + step * super::scalar_sign(*gp.add(i));
            *xp.add(i) = stepped.clamp(ov - eps, ov + eps).clamp(lo, hi);
            i += 1;
        }
    }

    /// Sums the 8 lanes of `v` in a fixed (deterministic) order.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_ps(v: __m256) -> f32 {
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), v);
        lanes.iter().sum()
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum(a: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 2 * LANES <= n {
            acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(ap.add(i)));
            acc1 = _mm256_add_ps(acc1, _mm256_loadu_ps(ap.add(i + LANES)));
            i += 2 * LANES;
        }
        while i + LANES <= n {
            acc0 = _mm256_add_ps(acc0, _mm256_loadu_ps(ap.add(i)));
            i += LANES;
        }
        let mut total = hsum_ps(_mm256_add_ps(acc0, acc1));
        while i < n {
            total += *ap.add(i);
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sumsq(a: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 2 * LANES <= n {
            let v0 = _mm256_loadu_ps(ap.add(i));
            let v1 = _mm256_loadu_ps(ap.add(i + LANES));
            acc0 = _mm256_fmadd_ps(v0, v0, acc0);
            acc1 = _mm256_fmadd_ps(v1, v1, acc1);
            i += 2 * LANES;
        }
        while i + LANES <= n {
            let v = _mm256_loadu_ps(ap.add(i));
            acc0 = _mm256_fmadd_ps(v, v, acc0);
            i += LANES;
        }
        let mut total = hsum_ps(_mm256_add_ps(acc0, acc1));
        while i < n {
            let v = *ap.add(i);
            total += v * v;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_abs(a: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 2 * LANES <= n {
            acc0 = _mm256_add_ps(acc0, abs_ps(_mm256_loadu_ps(ap.add(i))));
            acc1 = _mm256_add_ps(acc1, abs_ps(_mm256_loadu_ps(ap.add(i + LANES))));
            i += 2 * LANES;
        }
        while i + LANES <= n {
            acc0 = _mm256_add_ps(acc0, abs_ps(_mm256_loadu_ps(ap.add(i))));
            i += LANES;
        }
        let mut total = hsum_ps(_mm256_add_ps(acc0, acc1));
        while i < n {
            total += (*ap.add(i)).abs();
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn max(a: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut i = 0;
        while i + LANES <= n {
            acc = _mm256_max_ps(acc, _mm256_loadu_ps(ap.add(i)));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut m = lanes.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        while i < n {
            m = m.max(*ap.add(i));
            i += 1;
        }
        m
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn min(a: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let mut acc = _mm256_set1_ps(f32::INFINITY);
        let mut i = 0;
        while i + LANES <= n {
            acc = _mm256_min_ps(acc, _mm256_loadu_ps(ap.add(i)));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut m = lanes.iter().fold(f32::INFINITY, |m, &v| m.min(v));
        while i < n {
            m = m.min(*ap.add(i));
            i += 1;
        }
        m
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn max_abs(a: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            acc = _mm256_max_ps(acc, abs_ps(_mm256_loadu_ps(ap.add(i))));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut m = lanes.iter().fold(0.0f32, |m, &v| m.max(v));
        while i < n {
            m = m.max((*ap.add(i)).abs());
            i += 1;
        }
        m
    }

    /// One row × one packed panel: 4 ymm accumulators cover a 32-wide
    /// output stripe; each `k` step broadcasts `a_row[kk]` and FMAs it
    /// against the panel row. Remainders narrow to one ymm, then a scalar
    /// `mul_add` tail (still contracted, matching the vector lanes).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gemm_row_panel(a_row: &[f32], panel: &[f32], out_row: &mut [f32], w: usize) {
        let pp = panel.as_ptr();
        let op = out_row.as_mut_ptr();
        let mut j = 0;
        while j + 4 * LANES <= w {
            let mut acc0 = _mm256_loadu_ps(op.add(j));
            let mut acc1 = _mm256_loadu_ps(op.add(j + LANES));
            let mut acc2 = _mm256_loadu_ps(op.add(j + 2 * LANES));
            let mut acc3 = _mm256_loadu_ps(op.add(j + 3 * LANES));
            for (kk, &av) in a_row.iter().enumerate() {
                let avv = _mm256_set1_ps(av);
                let base = pp.add(kk * w + j);
                acc0 = _mm256_fmadd_ps(avv, _mm256_loadu_ps(base), acc0);
                acc1 = _mm256_fmadd_ps(avv, _mm256_loadu_ps(base.add(LANES)), acc1);
                acc2 = _mm256_fmadd_ps(avv, _mm256_loadu_ps(base.add(2 * LANES)), acc2);
                acc3 = _mm256_fmadd_ps(avv, _mm256_loadu_ps(base.add(3 * LANES)), acc3);
            }
            _mm256_storeu_ps(op.add(j), acc0);
            _mm256_storeu_ps(op.add(j + LANES), acc1);
            _mm256_storeu_ps(op.add(j + 2 * LANES), acc2);
            _mm256_storeu_ps(op.add(j + 3 * LANES), acc3);
            j += 4 * LANES;
        }
        while j + LANES <= w {
            let mut acc = _mm256_loadu_ps(op.add(j));
            for (kk, &av) in a_row.iter().enumerate() {
                acc = _mm256_fmadd_ps(_mm256_set1_ps(av), _mm256_loadu_ps(pp.add(kk * w + j)), acc);
            }
            _mm256_storeu_ps(op.add(j), acc);
            j += LANES;
        }
        if j < w {
            for (kk, &av) in a_row.iter().enumerate() {
                let row = &panel[kk * w..(kk + 1) * w];
                for jj in j..w {
                    out_row[jj] = av.mul_add(row[jj], out_row[jj]);
                }
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_dense_rows(
        a: &[f32],
        packed_b: &[f32],
        out_band: &mut [f32],
        row_start: usize,
        k: usize,
        n: usize,
        panel: usize,
    ) {
        let rows = out_band.len() / n;
        for j0 in (0..n).step_by(panel) {
            let w = panel.min(n - j0);
            let p = &packed_b[k * j0..k * j0 + k * w];
            for r in 0..rows {
                let a_row = &a[(row_start + r) * k..(row_start + r + 1) * k];
                let out_row = &mut out_band[r * n + j0..r * n + j0 + w];
                gemm_row_panel(a_row, p, out_row, w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill covering sign changes, zeros and a
    /// wide magnitude range (no RNG dependency in the unit tests).
    fn fill(n: usize, salt: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                let v = (h % 2001) as f32 / 1000.0 - 1.0;
                if h.is_multiple_of(17) {
                    0.0
                } else {
                    v * ((h % 5) as f32 + 0.25)
                }
            })
            .collect()
    }

    /// Lengths straddling the 8-lane width, the 32-wide unroll and odd
    /// tails.
    const LENS: &[usize] = &[0, 1, 3, 7, 8, 9, 15, 16, 31, 32, 33, 100, 1023];

    #[test]
    fn env_override_names_roundtrip() {
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Simd.name(), "simd");
    }

    #[test]
    fn elementwise_bit_exact_across_backends() {
        if !simd_available() {
            eprintln!("skipping: no AVX2+FMA on this machine");
            return;
        }
        for &n in LENS {
            let a = fill(n, 1);
            let b = fill(n, 2);
            let mut s = vec![0.0f32; n];
            let mut v = vec![0.0f32; n];

            type BinKernel = fn(KernelBackend, &[f32], &[f32], &mut [f32]);
            let cases: &[BinKernel] = &[add_slices, sub_slices, mul_slices];
            for case in cases {
                case(KernelBackend::Scalar, &a, &b, &mut s);
                case(KernelBackend::Simd, &a, &b, &mut v);
                assert_bits_eq(&s, &v);
            }

            sign_slices(KernelBackend::Scalar, &a, &mut s);
            sign_slices(KernelBackend::Simd, &a, &mut v);
            assert_bits_eq(&s, &v);

            clamp_slices(KernelBackend::Scalar, &a, -0.5, 0.75, &mut s);
            clamp_slices(KernelBackend::Simd, &a, -0.5, 0.75, &mut v);
            assert_bits_eq(&s, &v);

            relu_slices(KernelBackend::Scalar, &a, &mut s);
            relu_slices(KernelBackend::Simd, &a, &mut v);
            assert_bits_eq(&s, &v);

            abs_slices(KernelBackend::Scalar, &a, &mut s);
            abs_slices(KernelBackend::Simd, &a, &mut v);
            assert_bits_eq(&s, &v);

            scale_slices(KernelBackend::Scalar, &a, 0.3, &mut s);
            scale_slices(KernelBackend::Simd, &a, 0.3, &mut v);
            assert_bits_eq(&s, &v);

            add_scalar_slices(KernelBackend::Scalar, &a, 0.7, &mut s);
            add_scalar_slices(KernelBackend::Simd, &a, 0.7, &mut v);
            assert_bits_eq(&s, &v);

            let mut s2 = fill(n, 3);
            let mut v2 = s2.clone();
            axpy_slices(KernelBackend::Scalar, &mut s2, &a, 0.125);
            axpy_slices(KernelBackend::Simd, &mut v2, &a, 0.125);
            assert_bits_eq(&s2, &v2);

            add_assign_slices(KernelBackend::Scalar, &mut s2, &b);
            add_assign_slices(KernelBackend::Simd, &mut v2, &b);
            assert_bits_eq(&s2, &v2);

            scale_assign_slices(KernelBackend::Scalar, &mut s2, -1.5);
            scale_assign_slices(KernelBackend::Simd, &mut v2, -1.5);
            assert_bits_eq(&s2, &v2);
        }
    }

    #[test]
    fn fused_steps_bit_exact_across_backends() {
        if !simd_available() {
            eprintln!("skipping: no AVX2+FMA on this machine");
            return;
        }
        for &n in LENS {
            let g = fill(n, 4);
            let origin = fill(n, 5);
            let x0 = fill(n, 6);

            let mut s = x0.clone();
            let mut v = x0.clone();
            fused_sign_step_clamp(KernelBackend::Scalar, &mut s, &g, 0.05, 0.0, 1.0);
            fused_sign_step_clamp(KernelBackend::Simd, &mut v, &g, 0.05, 0.0, 1.0);
            assert_bits_eq(&s, &v);

            let mut s = x0.clone();
            let mut v = x0.clone();
            fused_grad_step_clamp(KernelBackend::Scalar, &mut s, &g, 0.4, 0.1, 0.0, 1.0);
            fused_grad_step_clamp(KernelBackend::Simd, &mut v, &g, 0.4, 0.1, 0.0, 1.0);
            assert_bits_eq(&s, &v);

            let mut s = x0.clone();
            let mut v = x0.clone();
            fused_grad_step_clamp(
                KernelBackend::Scalar,
                &mut s,
                &g,
                0.4,
                f32::INFINITY,
                0.0,
                1.0,
            );
            fused_grad_step_clamp(
                KernelBackend::Simd,
                &mut v,
                &g,
                0.4,
                f32::INFINITY,
                0.0,
                1.0,
            );
            assert_bits_eq(&s, &v);

            let mut s = x0.clone();
            let mut v = x0.clone();
            fused_project_step_clamp(
                KernelBackend::Scalar,
                &mut s,
                &g,
                &origin,
                0.02,
                0.1,
                0.0,
                1.0,
            );
            fused_project_step_clamp(
                KernelBackend::Simd,
                &mut v,
                &g,
                &origin,
                0.02,
                0.1,
                0.0,
                1.0,
            );
            assert_bits_eq(&s, &v);
        }
    }

    #[test]
    fn sign_nan_maps_to_zero_in_both_backends() {
        let a = [
            f32::NAN,
            -0.0,
            0.0,
            2.5,
            -3.5,
            f32::NAN,
            1.0,
            -1.0,
            f32::NAN,
        ];
        let mut s = [9.0f32; 9];
        let mut v = [9.0f32; 9];
        sign_slices(KernelBackend::Scalar, &a, &mut s);
        sign_slices(KernelBackend::Simd, &a, &mut v);
        assert_eq!(s, [0.0, 0.0, 0.0, 1.0, -1.0, 0.0, 1.0, -1.0, 0.0]);
        assert_eq!(s, v);
    }

    #[test]
    fn reductions_match_within_tolerance() {
        if !simd_available() {
            eprintln!("skipping: no AVX2+FMA on this machine");
            return;
        }
        for &n in LENS {
            let a = fill(n, 7);
            for (s, v) in [
                (
                    sum_slice(KernelBackend::Scalar, &a),
                    sum_slice(KernelBackend::Simd, &a),
                ),
                (
                    sumsq_slice(KernelBackend::Scalar, &a),
                    sumsq_slice(KernelBackend::Simd, &a),
                ),
                (
                    sum_abs_slice(KernelBackend::Scalar, &a),
                    sum_abs_slice(KernelBackend::Simd, &a),
                ),
            ] {
                let tol = 1e-5 * s.abs().max(1.0);
                assert!((s - v).abs() <= tol, "scalar {s} vs simd {v} at n={n}");
            }
            // Extrema are order-insensitive: exactly equal on finite data.
            assert_eq!(
                max_slice(KernelBackend::Scalar, &a),
                max_slice(KernelBackend::Simd, &a)
            );
            assert_eq!(
                min_slice(KernelBackend::Scalar, &a),
                min_slice(KernelBackend::Simd, &a)
            );
            assert_eq!(
                max_abs_slice(KernelBackend::Scalar, &a),
                max_abs_slice(KernelBackend::Simd, &a)
            );
        }
    }

    #[test]
    fn empty_reductions_are_identities() {
        for be in [KernelBackend::Scalar, KernelBackend::Simd] {
            assert_eq!(sum_slice(be, &[]), 0.0);
            assert_eq!(max_slice(be, &[]), f32::NEG_INFINITY);
            assert_eq!(min_slice(be, &[]), f32::INFINITY);
            assert_eq!(max_abs_slice(be, &[]), 0.0);
        }
    }

    fn assert_bits_eq(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "lane {i}: {x} != {y}");
        }
    }
}
