//! The core owned, contiguous, row-major `f32` tensor type.

use crate::shape::{numel, Shape};
use crate::simd;
use crate::{pool, Result, TensorError};

/// Minimum element count before elementwise ops are split across the worker
/// pool; below this the dispatch overhead exceeds the arithmetic. Sized so
/// the batched image tensors mutated every step of an iterative attack take
/// the parallel path while layer biases and logits stay serial.
const PAR_ELEMENTWISE_MIN: usize = 32 * 1024;

/// Band length that splits `len` elements evenly across the pool.
fn par_chunk_len(len: usize) -> usize {
    len.div_ceil(pool::global().effective_threads()).max(1)
}

/// A dense, owned, row-major tensor of `f32` values.
///
/// All data is contiguous; reshapes are metadata-only on the owned buffer and
/// transposes copy. This trades a little memory traffic for a drastically
/// simpler (and easily verified) implementation — the right call for a
/// CPU-scale research substrate.
///
/// # Example
///
/// ```
/// use advcomp_tensor::Tensor;
///
/// # fn main() -> Result<(), advcomp_tensor::TensorError> {
/// let x = Tensor::new(&[2, 2], vec![1.0, -2.0, 3.0, -4.0])?;
/// let relu = x.map(|v| v.max(0.0));
/// assert_eq!(relu.data(), &[1.0, 0.0, 3.0, 0.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the element count implied by `shape`.
    pub fn new(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let expected = numel(shape);
        if expected != data.len() {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; numel(shape)],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel(shape)],
        }
    }

    /// Creates a 1-D tensor that owns `data`.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Tensor {
            shape: vec![data.len()],
            data,
        }
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The shape (axis extents, outermost first).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The shape as a [`Shape`] value.
    pub fn shape_obj(&self) -> Shape {
        Shape::new(&self.shape)
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index/rank errors from [`Shape::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        let off = self.shape_obj().offset(index)?;
        Ok(self.data[off])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index/rank errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape_obj().offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        Tensor::new(shape, self.data.clone())
    }

    /// Reshapes in place (no data movement).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn reshape_inplace(&mut self, shape: &[usize]) -> Result<()> {
        if numel(shape) != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: numel(shape),
                actual: self.data.len(),
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Reshapes `self` to `shape`, reusing the existing allocation when the
    /// element count already matches; contents are left unspecified. Used by
    /// kernels that fully overwrite a persistent scratch tensor.
    pub(crate) fn reset_scratch(&mut self, shape: &[usize]) {
        self.data.resize(numel(shape), 0.0);
        self.shape = shape.to_vec();
    }

    /// Overwrites `self` with `data` reshaped to `shape`, reusing the
    /// existing allocation when the element count already matches. The
    /// graph executor uses this to publish its arena-resident output into a
    /// caller-owned tensor without a per-forward allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data` does not fill
    /// `shape`.
    pub fn assign_from(&mut self, shape: &[usize], data: &[f32]) -> Result<()> {
        if data.len() != numel(shape) {
            return Err(TensorError::LengthMismatch {
                expected: numel(shape),
                actual: data.len(),
            });
        }
        self.data.clear();
        self.data.extend_from_slice(data);
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Flattens to 1-D, preserving row-major order.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: vec![self.data.len()],
            data: self.data.clone(),
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    ///
    /// Large tensors (the batched images an iterative attack perturbs every
    /// step) are split into bands on the worker pool.
    pub fn map<F: Fn(f32) -> f32 + Sync>(&self, f: F) -> Tensor {
        let len = self.data.len();
        if len < PAR_ELEMENTWISE_MIN {
            return Tensor {
                shape: self.shape.clone(),
                data: self.data.iter().map(|&v| f(v)).collect(),
            };
        }
        let mut data = vec![0.0f32; len];
        let chunk = par_chunk_len(len);
        let src = &self.data;
        pool::for_each_chunk(&mut data, chunk, |i, out| {
            let base = i * chunk;
            let band = &src[base..base + out.len()];
            for (o, &v) in out.iter_mut().zip(band) {
                *o = f(v);
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` to every element in place (parallel for large tensors).
    pub fn map_inplace<F: Fn(f32) -> f32 + Sync>(&mut self, f: F) {
        if self.data.len() < PAR_ELEMENTWISE_MIN {
            for v in &mut self.data {
                *v = f(*v);
            }
            return;
        }
        let chunk = par_chunk_len(self.data.len());
        pool::for_each_chunk(&mut self.data, chunk, |_, out| {
            for v in out {
                *v = f(*v);
            }
        });
    }

    /// Combines two same-shape tensors elementwise (parallel for large
    /// tensors).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32 + Sync>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op: "zip_map",
            });
        }
        let len = self.data.len();
        if len < PAR_ELEMENTWISE_MIN {
            return Ok(Tensor {
                shape: self.shape.clone(),
                data: self
                    .data
                    .iter()
                    .zip(other.data.iter())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            });
        }
        let mut data = vec![0.0f32; len];
        let chunk = par_chunk_len(len);
        let (lhs, rhs) = (&self.data, &other.data);
        pool::for_each_chunk(&mut data, chunk, |i, out| {
            // Slice the input bands once so the inner loop zips bounds-check
            // free iterators (per-element `lhs[base + j]` indexing defeated
            // autovectorisation and cost the two-input path ~2× vs `map`).
            let base = i * chunk;
            let a = &lhs[base..base + out.len()];
            let b = &rhs[base..base + out.len()];
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = f(x, y);
            }
        });
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Combines with another same-shape tensor elementwise, in place
    /// (parallel for large tensors).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map_inplace<F: Fn(f32, f32) -> f32 + Sync>(
        &mut self,
        other: &Tensor,
        f: F,
    ) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op: "zip_map_inplace",
            });
        }
        if self.data.len() < PAR_ELEMENTWISE_MIN {
            for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
                *a = f(*a, b);
            }
            return Ok(());
        }
        let chunk = par_chunk_len(self.data.len());
        let rhs = &other.data;
        pool::for_each_chunk(&mut self.data, chunk, |i, out| {
            // Sliced band + zipped iterators for the same reason as
            // `zip_map`: the indexed form left bounds checks in the loop.
            let base = i * chunk;
            let b = &rhs[base..base + out.len()];
            for (a, &y) in out.iter_mut().zip(b) {
                *a = f(*a, y);
            }
        });
        Ok(())
    }

    /// Runs a two-input slice kernel over `self` and `other` into a fresh
    /// tensor, splitting large inputs into pool bands. All the named binary
    /// arithmetic ops funnel through here so they hit the backend-dispatched
    /// kernels in [`crate::simd`] instead of a per-element closure.
    fn binary_kernel(
        &self,
        other: &Tensor,
        op: &'static str,
        k: impl Fn(&[f32], &[f32], &mut [f32]) + Sync,
    ) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op,
            });
        }
        let len = self.data.len();
        let mut data = vec![0.0f32; len];
        if len < PAR_ELEMENTWISE_MIN {
            k(&self.data, &other.data, &mut data);
        } else {
            let chunk = par_chunk_len(len);
            let (lhs, rhs) = (&self.data, &other.data);
            pool::for_each_chunk(&mut data, chunk, |i, out| {
                let base = i * chunk;
                k(
                    &lhs[base..base + out.len()],
                    &rhs[base..base + out.len()],
                    out,
                );
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// In-place counterpart of [`Tensor::binary_kernel`]: mutates `self`
    /// band-by-band against the matching band of `other`.
    fn binary_kernel_inplace(
        &mut self,
        other: &Tensor,
        op: &'static str,
        k: impl Fn(&mut [f32], &[f32]) + Sync,
    ) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op,
            });
        }
        if self.data.len() < PAR_ELEMENTWISE_MIN {
            k(&mut self.data, &other.data);
            return Ok(());
        }
        let chunk = par_chunk_len(self.data.len());
        let rhs = &other.data;
        pool::for_each_chunk(&mut self.data, chunk, |i, out| {
            let base = i * chunk;
            k(out, &rhs[base..base + out.len()]);
        });
        Ok(())
    }

    /// Runs a one-input slice kernel into a fresh tensor (pool bands above
    /// the elementwise threshold).
    fn unary_kernel(&self, k: impl Fn(&[f32], &mut [f32]) + Sync) -> Tensor {
        let len = self.data.len();
        let mut data = vec![0.0f32; len];
        if len < PAR_ELEMENTWISE_MIN {
            k(&self.data, &mut data);
        } else {
            let chunk = par_chunk_len(len);
            let src = &self.data;
            pool::for_each_chunk(&mut data, chunk, |i, out| {
                let base = i * chunk;
                k(&src[base..base + out.len()], out);
            });
        }
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place counterpart of [`Tensor::unary_kernel`].
    fn unary_kernel_inplace(&mut self, k: impl Fn(&mut [f32]) + Sync) {
        if self.data.len() < PAR_ELEMENTWISE_MIN {
            k(&mut self.data);
            return;
        }
        let chunk = par_chunk_len(self.data.len());
        pool::for_each_chunk(&mut self.data, chunk, |_, out| k(out));
    }

    /// Elementwise sum. See [`Tensor::zip_map`] for shape requirements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        let be = simd::backend();
        self.binary_kernel(other, "add", move |a, b, o| simd::add_slices(be, a, b, o))
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        let be = simd::backend();
        self.binary_kernel(other, "sub", move |a, b, o| simd::sub_slices(be, a, b, o))
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        let be = simd::backend();
        self.binary_kernel(other, "mul", move |a, b, o| simd::mul_slices(be, a, b, o))
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        let be = simd::backend();
        self.binary_kernel_inplace(other, "add_assign", move |a, b| {
            simd::add_assign_slices(be, a, b)
        })
    }

    /// Adds `scale * other` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) -> Result<()> {
        let be = simd::backend();
        self.binary_kernel_inplace(other, "add_scaled", move |a, b| {
            simd::axpy_slices(be, a, b, scale)
        })
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let be = simd::backend();
        self.unary_kernel(move |a, o| simd::scale_slices(be, a, s, o))
    }

    /// Multiplies every element by `s` in place (no allocation).
    pub fn scale_inplace(&mut self, s: f32) {
        let be = simd::backend();
        self.unary_kernel_inplace(move |a| simd::scale_assign_slices(be, a, s));
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let be = simd::backend();
        self.unary_kernel(move |a, o| simd::add_scalar_slices(be, a, s, o))
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp requires lo <= hi, got {lo} > {hi}");
        let be = simd::backend();
        self.unary_kernel(move |a, o| simd::clamp_slices(be, a, lo, hi, o))
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        let be = simd::backend();
        self.unary_kernel(move |a, o| simd::abs_slices(be, a, o))
    }

    /// Elementwise rectifier: `max(v, 0)` — the ReLU forward pass.
    pub fn relu(&self) -> Tensor {
        let be = simd::backend();
        self.unary_kernel(move |a, o| simd::relu_slices(be, a, o))
    }

    /// Elementwise sign: -1, 0 or +1 (0 for NaN, matching the paper's FGSM
    /// convention that an undefined gradient contributes no perturbation).
    pub fn sign(&self) -> Tensor {
        let be = simd::backend();
        self.unary_kernel(move |a, o| simd::sign_slices(be, a, o))
    }

    /// Fused FGSM/IFGSM update, in place:
    /// `self = clamp(self + step * sign(g), lo, hi)`.
    ///
    /// One pass over the data with zero allocations, replacing the
    /// historical `sign` → `scale` → `add` → `clamp` chain (four traversals
    /// and three temporaries) with per-element float ops in exactly the same
    /// order — results are bitwise identical to the unfused chain within a
    /// backend.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn fused_sign_step_clamp(&mut self, g: &Tensor, step: f32, lo: f32, hi: f32) -> Result<()> {
        let be = simd::backend();
        self.binary_kernel_inplace(g, "fused_sign_step_clamp", move |x, gg| {
            simd::fused_sign_step_clamp(be, x, gg, step, lo, hi)
        })
    }

    /// Fused FGM/IFGM update, in place:
    /// `self = clamp(self + clamp(scale * g, -ball, ball), lo, hi)`.
    /// Pass `ball = f32::INFINITY` for an unclipped gradient step.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn fused_grad_step_clamp(
        &mut self,
        g: &Tensor,
        scale: f32,
        ball: f32,
        lo: f32,
        hi: f32,
    ) -> Result<()> {
        let be = simd::backend();
        self.binary_kernel_inplace(g, "fused_grad_step_clamp", move |x, gg| {
            simd::fused_grad_step_clamp(be, x, gg, scale, ball, lo, hi)
        })
    }

    /// Fused PGD update, in place: a sign step followed by projection onto
    /// the `eps`-ball around `origin` and then the `[lo, hi]` data range:
    /// `self = clamp(clamp(self + step * sign(g), origin - eps, origin + eps), lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn fused_project_step_clamp(
        &mut self,
        g: &Tensor,
        origin: &Tensor,
        step: f32,
        eps: f32,
        lo: f32,
        hi: f32,
    ) -> Result<()> {
        if self.shape != g.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: g.shape.clone(),
                op: "fused_project_step_clamp",
            });
        }
        if self.shape != origin.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: origin.shape.clone(),
                op: "fused_project_step_clamp",
            });
        }
        let be = simd::backend();
        if self.data.len() < PAR_ELEMENTWISE_MIN {
            simd::fused_project_step_clamp(
                be,
                &mut self.data,
                &g.data,
                &origin.data,
                step,
                eps,
                lo,
                hi,
            );
            return Ok(());
        }
        let chunk = par_chunk_len(self.data.len());
        let (gd, od) = (&g.data, &origin.data);
        pool::for_each_chunk(&mut self.data, chunk, |i, out| {
            let base = i * chunk;
            simd::fused_project_step_clamp(
                be,
                out,
                &gd[base..base + out.len()],
                &od[base..base + out.len()],
                step,
                eps,
                lo,
                hi,
            );
        });
        Ok(())
    }

    /// Adds a 1-D bias of length `n` to each row of a 2-D `[m, n]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless `self` is 2-D and `bias`
    /// is 1-D, or [`TensorError::ShapeMismatch`] when lengths disagree.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.ndim(),
                op: "add_row_broadcast",
            });
        }
        if bias.ndim() != 1 || bias.len() != self.shape[1] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: bias.shape.clone(),
                op: "add_row_broadcast",
            });
        }
        let n = self.shape[1];
        let mut out = self.clone();
        let be = simd::backend();
        for row in out.data.chunks_mut(n) {
            simd::add_assign_slices(be, row, &bias.data);
        }
        Ok(out)
    }

    /// Copies rows `[start, start + len)` of the outermost axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the range exceeds the
    /// axis, or [`TensorError::RankMismatch`] on a scalar tensor.
    pub fn narrow(&self, start: usize, len: usize) -> Result<Tensor> {
        if self.shape.is_empty() {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
                op: "narrow",
            });
        }
        let outer = self.shape[0];
        if start + len > outer {
            return Err(TensorError::IndexOutOfBounds {
                index: start + len,
                bound: outer,
            });
        }
        let inner: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = len;
        Ok(Tensor {
            shape,
            data: self.data[start * inner..(start + len) * inner].to_vec(),
        })
    }

    /// Copies a single slice of the outermost axis, dropping that axis.
    ///
    /// For a `[n, c, h, w]` batch, `index_axis0(i)` yields sample `i` with
    /// shape `[c, h, w]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] or rank errors as
    /// [`Tensor::narrow`] does.
    pub fn index_axis0(&self, i: usize) -> Result<Tensor> {
        let row = self.narrow(i, 1)?;
        Ok(Tensor {
            shape: self.shape[1..].to_vec(),
            data: row.data,
        })
    }

    /// Stacks tensors of identical shape along a new outermost axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty slice and
    /// [`TensorError::ShapeMismatch`] when element shapes disagree.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::Empty("stack"))?;
        let mut data = Vec::with_capacity(first.len() * items.len());
        for item in items {
            if item.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape.clone(),
                    rhs: item.shape.clone(),
                    op: "stack",
                });
            }
            data.extend_from_slice(&item.data);
        }
        let mut shape = vec![items.len()];
        shape.extend_from_slice(&first.shape);
        Ok(Tensor { shape, data })
    }

    /// Concatenates tensors along the outermost axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty slice and
    /// [`TensorError::ShapeMismatch`] when trailing shapes disagree.
    pub fn concat0(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::Empty("concat0"))?;
        let mut outer = 0usize;
        let mut data = Vec::new();
        for item in items {
            if item.shape.len() != first.shape.len() || item.shape[1..] != first.shape[1..] {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape.clone(),
                    rhs: item.shape.clone(),
                    op: "concat0",
                });
            }
            outer += item.shape[0];
            data.extend_from_slice(&item.data);
        }
        let mut shape = first.shape.clone();
        shape[0] = outer;
        Ok(Tensor { shape, data })
    }

    /// 2-D transpose (copies).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is 2-D.
    pub fn t(&self) -> Result<Tensor> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.ndim(),
                op: "transpose",
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(out)
    }

    /// `true` when every pairwise difference is within `tol` (and shapes
    /// match). Intended for tests and gradient checking.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl std::ops::Index<usize> for Tensor {
    type Output = f32;

    /// Linear (row-major) element access.
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_length() {
        assert!(Tensor::new(&[2, 3], vec![0.0; 6]).is_ok());
        assert!(matches!(
            Tensor::new(&[2, 3], vec![0.0; 5]),
            Err(TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            })
        ));
    }

    #[test]
    fn constructors_fill() {
        assert_eq!(Tensor::zeros(&[3]).data(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::ones(&[2]).data(), &[1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 7.0).data(), &[7.0, 7.0]);
        assert_eq!(Tensor::scalar(3.0).ndim(), 0);
        assert_eq!(Tensor::scalar(3.0).len(), 1);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(i.get(&[0, 1]).unwrap(), 0.0);
        assert_eq!(i.data().iter().sum::<f32>(), 3.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 5.0);
        assert_eq!(t.data()[5], 5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new(&[2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, -2.0]);
        let b = Tensor::from_vec(vec![3.0, 4.0]);
        assert_eq!(a.map(|v| v * 2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).unwrap().data(), &[4.0, 2.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.zip_map(&c, |x, _| x).is_err());
    }

    #[test]
    fn arithmetic_helpers() {
        let a = Tensor::from_vec(vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![3.0, 5.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0]);
        let mut c = a.clone();
        c.add_scaled(&b, 2.0).unwrap();
        assert_eq!(c.data(), &[7.0, 12.0]);
    }

    #[test]
    fn sign_handles_zero_and_nan() {
        let t = Tensor::from_vec(vec![-3.0, 0.0, 2.0, f32::NAN]);
        assert_eq!(t.sign().data(), &[-1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn clamp_bounds() {
        let t = Tensor::from_vec(vec![-2.0, 0.5, 2.0]);
        assert_eq!(t.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn clamp_invalid_range_panics() {
        Tensor::from_vec(vec![0.0]).clamp(1.0, 0.0);
    }

    #[test]
    fn add_row_broadcast_bias() {
        let x = Tensor::new(&[2, 3], vec![0.0; 6]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
        let y = x.add_row_broadcast(&b).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(x.add_row_broadcast(&Tensor::from_vec(vec![1.0])).is_err());
    }

    #[test]
    fn narrow_and_index_axis0() {
        let t = Tensor::new(&[3, 2], (0..6).map(|v| v as f32).collect()).unwrap();
        let mid = t.narrow(1, 2).unwrap();
        assert_eq!(mid.shape(), &[2, 2]);
        assert_eq!(mid.data(), &[2.0, 3.0, 4.0, 5.0]);
        let row = t.index_axis0(2).unwrap();
        assert_eq!(row.shape(), &[2]);
        assert_eq!(row.data(), &[4.0, 5.0]);
        assert!(t.narrow(2, 2).is_err());
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::from_vec(vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![3.0, 4.0]);
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        let c = Tensor::concat0(&[s.clone(), s.clone()]).unwrap();
        assert_eq!(c.shape(), &[4, 2]);
        assert!(Tensor::stack(&[]).is_err());
        assert!(Tensor::stack(&[a, Tensor::from_vec(vec![1.0])]).is_err());
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::new(&[2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        let tt = t.t().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.get(&[2, 1]).unwrap(), t.get(&[1, 2]).unwrap());
        assert!(Tensor::from_vec(vec![1.0]).t().is_err());
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![1.0 + 1e-6, 2.0 - 1e-6]);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b, 1e-8));
        assert!(!a.allclose(&Tensor::zeros(&[3]), 1.0));
    }

    #[test]
    fn large_elementwise_matches_serial() {
        // Above PAR_ELEMENTWISE_MIN, so the pooled bands run; results must
        // be bitwise identical to the serial path.
        let n = super::PAR_ELEMENTWISE_MIN + 123;
        let a = Tensor::from_vec((0..n).map(|i| (i % 7) as f32 - 3.0).collect());
        let b = Tensor::from_vec((0..n).map(|i| (i % 5) as f32 - 2.0).collect());
        let sum = a.add(&b).unwrap();
        assert!(sum
            .data()
            .iter()
            .zip(a.data().iter().zip(b.data()))
            .all(|(&s, (&av, &bv))| s == av + bv));
        let doubled = a.map(|v| v * 2.0);
        assert!(doubled
            .data()
            .iter()
            .zip(a.data())
            .all(|(&d, &v)| d == v * 2.0));
        let mut c = a.clone();
        c.add_scaled(&b, 0.5).unwrap();
        assert!(c
            .data()
            .iter()
            .zip(a.data().iter().zip(b.data()))
            .all(|(&cv, (&av, &bv))| cv == av + 0.5 * bv));
        let mut d = a.clone();
        d.map_inplace(|v| v + 1.0);
        assert!(d
            .data()
            .iter()
            .zip(a.data())
            .all(|(&dv, &av)| dv == av + 1.0));
    }

    #[test]
    fn non_finite_detection() {
        assert!(!Tensor::zeros(&[4]).has_non_finite());
        assert!(Tensor::from_vec(vec![0.0, f32::NAN]).has_non_finite());
        assert!(Tensor::from_vec(vec![f32::INFINITY]).has_non_finite());
    }
}
