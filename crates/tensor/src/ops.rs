//! Matrix multiplication kernels.
//!
//! Three implementations are exposed:
//!
//! * [`Tensor::matmul`] — the production entry point: cache-blocked and,
//!   above a work threshold, parallelised over row blocks with `crossbeam`
//!   scoped threads.
//! * [`Tensor::matmul_naive`] — the obviously-correct triple loop, kept as a
//!   reference for tests and ablation benchmarks.
//! * [`Tensor::matmul_blocked_serial`] — the blocked kernel without
//!   threading, for the ablation bench in `advcomp-bench`.

use crate::{Result, Tensor, TensorError};

/// Edge length of the cache blocks used by the blocked kernel. 64 f32 rows ×
/// 64 columns keeps each block pair within L1 on typical x86 cores.
const BLOCK: usize = 64;

/// Minimum `m * n * k` product before threads are spawned; below this the
/// spawn overhead dominates.
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

fn matmul_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize)> {
    if a.ndim() != 2 || b.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if a.ndim() != 2 { a.ndim() } else { b.ndim() },
            op: "matmul",
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "matmul",
        });
    }
    Ok((m, k, n))
}

/// Multiplies rows `[row_start, row_end)` of `a` into `out`.
///
/// `out` must be zero-initialised for the rows covered. Blocked i-k-j order:
/// the innermost loop runs contiguously over `b` and `out`, which lets the
/// compiler vectorise it.
fn matmul_rows(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row_start: usize,
    row_end: usize,
    k: usize,
    n: usize,
) {
    for i0 in (row_start..row_end).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(row_end);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let out_row = &mut out[(i - row_start) * n..(i - row_start + 1) * n];
                let a_row = &a[i * k..(i + 1) * k];
                for kk in k0..k1 {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        // Pruned models produce highly sparse weight
                        // matrices; skipping zero multipliers is a cheap win.
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += aik * bv;
                    }
                }
            }
        }
    }
}

impl Tensor {
    /// Matrix product of two 2-D tensors, blocked and multi-threaded.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are 2-D,
    /// and [`TensorError::ShapeMismatch`] when inner dimensions disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use advcomp_tensor::Tensor;
    /// # fn main() -> Result<(), advcomp_tensor::TensorError> {
    /// let a = Tensor::eye(3);
    /// let b = Tensor::new(&[3, 1], vec![1.0, 2.0, 3.0])?;
    /// assert_eq!(a.matmul(&b)?.data(), &[1.0, 2.0, 3.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_dims(self, other)?;
        let mut out = Tensor::zeros(&[m, n]);
        let work = m * k * n;
        let threads = available_threads();
        if work < PARALLEL_THRESHOLD || threads < 2 || m < 2 {
            matmul_rows(self.data(), other.data(), out.data_mut(), 0, m, k, n);
            return Ok(out);
        }

        let chunk_rows = m.div_ceil(threads);
        let a = self.data();
        let b = other.data();
        crossbeam::thread::scope(|scope| {
            // Split the output into disjoint row bands, one per thread.
            let mut bands: Vec<&mut [f32]> = out.data_mut().chunks_mut(chunk_rows * n).collect();
            for (t, band) in bands.drain(..).enumerate() {
                let row_start = t * chunk_rows;
                let row_end = (row_start + band.len() / n).min(m);
                scope.spawn(move |_| {
                    matmul_rows(a, b, band, row_start, row_end, k, n);
                });
            }
        })
        .expect("matmul worker thread panicked");
        Ok(out)
    }

    /// Blocked matmul on the calling thread only (ablation reference).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_blocked_serial(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_dims(self, other)?;
        let mut out = Tensor::zeros(&[m, n]);
        matmul_rows(self.data(), other.data(), out.data_mut(), 0, m, k, n);
        Ok(out)
    }

    /// Textbook triple-loop matmul (correctness reference).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_naive(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_dims(self, other)?;
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += self.data()[i * k + kk] * other.data()[kk * n + j];
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        Ok(out)
    }

    /// Matrix–vector product: `[m, k] × [k] -> [m]`.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors mirroring [`Tensor::matmul`].
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        if v.ndim() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: v.ndim(),
                op: "matvec",
            });
        }
        let col = v.reshape(&[v.len(), 1])?;
        let out = self.matmul(&col)?;
        out.reshape(&[self.shape()[0]])
    }
}

/// Number of worker threads to use for data-parallel kernels.
///
/// Respects `ADVCOMP_THREADS` when set (useful to pin benchmarks), otherwise
/// uses the machine's available parallelism.
pub(crate) fn available_threads() -> usize {
    if let Ok(s) = std::env::var("ADVCOMP_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Init;
    use rand::SeedableRng;

    #[test]
    fn small_matmul_exact() {
        let a = Tensor::new(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::new(&[3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(a.matmul(&v), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn blocked_matches_naive_on_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (5, 7, 3), (33, 65, 17), (70, 70, 70)] {
            let a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[m, k], &mut rng);
            let b = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[k, n], &mut rng);
            let fast = a.matmul(&b).unwrap();
            let slow = a.matmul_naive(&b).unwrap();
            assert!(fast.allclose(&slow, 1e-4), "mismatch at {m}x{k}x{n}");
            let serial = a.matmul_blocked_serial(&b).unwrap();
            assert!(serial.allclose(&slow, 1e-4));
        }
    }

    #[test]
    fn parallel_path_matches_naive() {
        // Big enough to cross PARALLEL_THRESHOLD.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[130, 80], &mut rng);
        let b = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[80, 90], &mut rng);
        let fast = a.matmul(&b).unwrap();
        let slow = a.matmul_naive(&b).unwrap();
        assert!(fast.allclose(&slow, 1e-3));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::new(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let v = Tensor::from_vec(vec![1., 0., -1.]);
        let out = a.matvec(&v).unwrap();
        assert_eq!(out.shape(), &[2]);
        assert_eq!(out.data(), &[-2.0, -2.0]);
        assert!(a.matvec(&Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[4, 4], &mut rng);
        let i = Tensor::eye(4);
        assert!(a.matmul(&i).unwrap().allclose(&a, 1e-6));
        assert!(i.matmul(&a).unwrap().allclose(&a, 1e-6));
    }
}
