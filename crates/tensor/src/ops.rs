//! Matrix multiplication kernels.
//!
//! The production entry point [`Tensor::matmul`] picks between two compute
//! kernels with a cheap density probe over the left operand, then runs the
//! chosen kernel across disjoint output row bands on the persistent worker
//! pool ([`crate::pool`]):
//!
//! * **Dense microkernel** — packs `b` into contiguous column panels, then
//!   runs a branch-free inner loop unrolled 4× over `k` and blocked in `n`.
//!   This is the fast path for ordinary dense activations and weights.
//! * **Sparse-aware kernel** — the cache-blocked i-k-j loop that skips zero
//!   multipliers from `a`. Pruned models produce weight matrices that are
//!   mostly zeros, where skipping beats the packed kernel's raw throughput.
//!
//! Both kernels run their inner loops through the backend-dispatched slice
//! kernels in [`crate::simd`]: the dense microkernel has an AVX2+FMA body
//! selected at runtime (scalar fallback below), and the sparse kernel's
//! row-axpy vectorises without changing its bit-exact scalar semantics.
//!
//! Reference implementations kept for tests and ablation benchmarks
//! (compiled only under `cfg(test)` or the `bench-ablation` feature so
//! exhibit binaries don't carry dead code):
//! [`Tensor::matmul_naive`] (obviously-correct triple loop),
//! [`Tensor::matmul_blocked_serial`] (blocked zero-skip kernel, no
//! threading), and [`Tensor::matmul_spawn_per_call`] (the pre-pool
//! behaviour: same banding, but fresh OS threads spawned on every call).

use crate::simd::{self, KernelBackend};
use crate::{pool, Result, Tensor, TensorError};

/// Edge length of the cache blocks used by the sparse-aware kernel. 64 f32
/// rows × 64 columns keeps each block pair within L1 on typical x86 cores.
const BLOCK: usize = 64;

/// Column-panel width of the dense microkernel. A `k × 128` f32 panel is at
/// most a few hundred KiB for the depths seen here and stays resident while
/// a whole row band streams through it.
const PANEL: usize = 128;

/// Minimum `m * n * k` product before work is split across the pool; below
/// this the submission overhead dominates.
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

/// Upper bound on elements inspected by the density probe.
const DENSITY_PROBE_SAMPLES: usize = 1024;

/// Nonzero fraction at or below which the sparse-aware kernel is chosen.
/// The crossover sits well above the ≥90 %-zero regime produced by pruning,
/// and well below ordinary dense activations.
const SPARSE_NONZERO_CUTOFF: f32 = 0.25;

/// Compute kernel chosen for a matrix product. See [`Tensor::matmul`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulKernel {
    /// Packed-panel, branch-free kernel for dense operands.
    Dense,
    /// Zero-skipping blocked kernel for pruned / mostly-zero operands.
    Sparse,
}

fn matmul_dims(a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize)> {
    if a.ndim() != 2 || b.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if a.ndim() != 2 { a.ndim() } else { b.ndim() },
            op: "matmul",
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "matmul",
        });
    }
    Ok((m, k, n))
}

/// Fraction of nonzero entries in `data`, estimated from at most
/// [`DENSITY_PROBE_SAMPLES`] strided samples (exact for small inputs).
fn probe_nonzero_fraction(data: &[f32]) -> f32 {
    if data.is_empty() {
        return 1.0;
    }
    let step = (data.len() / DENSITY_PROBE_SAMPLES).max(1);
    let mut seen = 0u32;
    let mut nonzero = 0u32;
    let mut i = 0;
    while i < data.len() {
        seen += 1;
        if data[i] != 0.0 {
            nonzero += 1;
        }
        i += step;
    }
    nonzero as f32 / seen as f32
}

/// Packs `b` (`k × n`, row-major) into column panels of width [`PANEL`].
///
/// Panel `p` covers columns `[p*PANEL, p*PANEL+w)` and is stored as `k`
/// contiguous rows of `w` elements at offset `k * p * PANEL`. The panels
/// tile `n` exactly, so the packed buffer has the same `k * n` length but
/// each panel's rows sit `w` (not `n`) apart — the access pattern the dense
/// microkernel streams through.
fn pack_b_panels(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut packed = vec![0.0f32; k * n];
    for j0 in (0..n).step_by(PANEL) {
        let w = PANEL.min(n - j0);
        let base = k * j0;
        for kk in 0..k {
            packed[base + kk * w..base + (kk + 1) * w]
                .copy_from_slice(&b[kk * n + j0..kk * n + j0 + w]);
        }
    }
    packed
}

/// Dense microkernel over one output row band.
///
/// `out_band` holds rows `[row_start, row_start + out_band.len()/n)` of the
/// result and must be zero-initialised. On an AVX2+FMA machine with the
/// `Simd` backend selected, the whole band runs through the 8-wide FMA
/// microkernel in [`crate::simd`]; otherwise, for each panel of
/// `packed_b`, the scalar inner loop accumulates 4 `k`-steps at a time
/// into a `w`-wide output stripe with no branches, which the compiler
/// autovectorises to whatever the baseline target offers.
fn matmul_dense_rows(
    backend: KernelBackend,
    a: &[f32],
    packed_b: &[f32],
    out_band: &mut [f32],
    row_start: usize,
    k: usize,
    n: usize,
) {
    if simd::gemm_dense_rows(backend, a, packed_b, out_band, row_start, k, n, PANEL) {
        return;
    }
    let rows = out_band.len() / n;
    for j0 in (0..n).step_by(PANEL) {
        let w = PANEL.min(n - j0);
        let panel = &packed_b[k * j0..k * j0 + k * w];
        for r in 0..rows {
            let a_row = &a[(row_start + r) * k..(row_start + r + 1) * k];
            let out_row = &mut out_band[r * n + j0..r * n + j0 + w];
            let mut kk = 0;
            while kk + 4 <= k {
                let a0 = a_row[kk];
                let a1 = a_row[kk + 1];
                let a2 = a_row[kk + 2];
                let a3 = a_row[kk + 3];
                let b0 = &panel[kk * w..(kk + 1) * w];
                let b1 = &panel[(kk + 1) * w..(kk + 2) * w];
                let b2 = &panel[(kk + 2) * w..(kk + 3) * w];
                let b3 = &panel[(kk + 3) * w..(kk + 4) * w];
                for j in 0..w {
                    out_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                }
                kk += 4;
            }
            while kk < k {
                let av = a_row[kk];
                let brow = &panel[kk * w..(kk + 1) * w];
                for j in 0..w {
                    out_row[j] += av * brow[j];
                }
                kk += 1;
            }
        }
    }
}

/// Sparse-aware kernel over one output row band.
///
/// `out_band` holds rows `[row_start, row_start + out_band.len()/n)` and
/// must be zero-initialised. Blocked i-k-j order: the innermost loop is a
/// row axpy that runs contiguously over `b` and `out` (vectorised through
/// [`crate::simd::axpy_slices`], which is bit-exact across backends), and
/// zero multipliers from `a` are skipped entirely — the win pruned weight
/// matrices are after.
fn matmul_sparse_rows(
    backend: KernelBackend,
    a: &[f32],
    b: &[f32],
    out_band: &mut [f32],
    row_start: usize,
    k: usize,
    n: usize,
) {
    let row_end = row_start + out_band.len() / n;
    for i0 in (row_start..row_end).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(row_end);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let out_row = &mut out_band[(i - row_start) * n..(i - row_start + 1) * n];
                let a_row = &a[i * k..(i + 1) * k];
                for kk in k0..k1 {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    simd::axpy_slices(backend, out_row, b_row, aik);
                }
            }
        }
    }
}

/// A weight matrix pre-packed into the dense microkernel's column-panel
/// layout (see [`pack_b_panels`]'s internal docs).
///
/// The graph compiler packs each f32 weight matrix once at plan-compile
/// time and reuses the panels for every forward pass, where
/// [`Tensor::matmul`] re-packs its right operand on every call. The packed
/// buffer holds the same `k × n` elements; only the layout differs.
#[derive(Debug, Clone)]
pub struct PackedGemmB {
    packed: Vec<f32>,
    k: usize,
    n: usize,
}

impl PackedGemmB {
    /// Packs `b` (`k × n`, row-major) into column panels.
    pub fn pack(b: &[f32], k: usize, n: usize) -> Result<PackedGemmB> {
        if b.len() != k * n {
            return Err(TensorError::LengthMismatch {
                expected: k * n,
                actual: b.len(),
            });
        }
        Ok(PackedGemmB {
            packed: pack_b_panels(b, k, n),
            k,
            n,
        })
    }

    /// Inner (reduction) dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output column count.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// The kernel [`Tensor::matmul`] would choose for a left operand with this
/// backing slice — the same strided density probe, exposed for callers
/// (the graph executor) that hold activations in arena slices rather than
/// `Tensor`s.
pub fn probe_matmul_kernel(data: &[f32]) -> MatmulKernel {
    if probe_nonzero_fraction(data) <= SPARSE_NONZERO_CUTOFF {
        MatmulKernel::Sparse
    } else {
        MatmulKernel::Dense
    }
}

/// Dense GEMM against a pre-packed right operand: `out = a · b`, with `a`
/// `m × k` row-major and `out` `m × n` (fully overwritten).
///
/// Runs the identical kernel, banding policy and backend dispatch as
/// [`Tensor::matmul`] with [`MatmulKernel::Dense`], so results are
/// bit-identical to the `Tensor` entry point on every backend — the packing
/// is pure data movement.
///
/// # Errors
///
/// [`TensorError::LengthMismatch`] when `a` or `out` disagree with
/// `m × b.k()` / `m × b.n()`.
pub fn gemm_prepacked(
    backend: KernelBackend,
    a: &[f32],
    m: usize,
    b: &PackedGemmB,
    out: &mut [f32],
) -> Result<()> {
    let (k, n) = (b.k, b.n);
    if a.len() != m * k {
        return Err(TensorError::LengthMismatch {
            expected: m * k,
            actual: a.len(),
        });
    }
    if out.len() != m * n {
        return Err(TensorError::LengthMismatch {
            expected: m * n,
            actual: out.len(),
        });
    }
    out.fill(0.0);
    if m == 0 || n == 0 {
        return Ok(());
    }
    let threads = pool::global().effective_threads();
    if m * k * n >= PARALLEL_THRESHOLD && threads >= 2 && m >= 2 {
        pool::for_each_row_band(out, n, threads, |row_start, band| {
            matmul_dense_rows(backend, a, &b.packed, band, row_start, k, n);
        });
    } else {
        matmul_dense_rows(backend, a, &b.packed, out, 0, k, n);
    }
    Ok(())
}

/// Sparse-aware GEMM over raw slices: `out = a · b`, zero multipliers in
/// `a` skipped. Same kernel, banding policy and backend dispatch as
/// [`Tensor::matmul`] with [`MatmulKernel::Sparse`]; `out` is fully
/// overwritten.
///
/// # Errors
///
/// [`TensorError::LengthMismatch`] when slice lengths disagree with
/// `m × k`, `k × n`, `m × n`.
pub fn gemm_sparse(
    backend: KernelBackend,
    a: &[f32],
    m: usize,
    b: &[f32],
    k: usize,
    n: usize,
    out: &mut [f32],
) -> Result<()> {
    if a.len() != m * k {
        return Err(TensorError::LengthMismatch {
            expected: m * k,
            actual: a.len(),
        });
    }
    if b.len() != k * n {
        return Err(TensorError::LengthMismatch {
            expected: k * n,
            actual: b.len(),
        });
    }
    if out.len() != m * n {
        return Err(TensorError::LengthMismatch {
            expected: m * n,
            actual: out.len(),
        });
    }
    out.fill(0.0);
    if m == 0 || n == 0 {
        return Ok(());
    }
    let threads = pool::global().effective_threads();
    if m * k * n >= PARALLEL_THRESHOLD && threads >= 2 && m >= 2 {
        pool::for_each_row_band(out, n, threads, |row_start, band| {
            matmul_sparse_rows(backend, a, b, band, row_start, k, n);
        });
    } else {
        matmul_sparse_rows(backend, a, b, out, 0, k, n);
    }
    Ok(())
}

impl Tensor {
    /// Matrix product of two 2-D tensors.
    ///
    /// Probes the density of `self` to choose between the dense packed
    /// microkernel and the sparse zero-skip kernel (see
    /// [`Tensor::matmul_kernel_probe`]), then runs the kernel over disjoint
    /// output row bands on the persistent worker pool when the product is
    /// large enough to amortise the dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are 2-D,
    /// and [`TensorError::ShapeMismatch`] when inner dimensions disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use advcomp_tensor::Tensor;
    /// # fn main() -> Result<(), advcomp_tensor::TensorError> {
    /// let a = Tensor::eye(3);
    /// let b = Tensor::new(&[3, 1], vec![1.0, 2.0, 3.0])?;
    /// assert_eq!(a.matmul(&b)?.data(), &[1.0, 2.0, 3.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let kernel = self.matmul_kernel_probe();
        self.matmul_with_kernel(other, kernel)
    }

    /// Kernel [`Tensor::matmul`] would select for `self` as the left
    /// operand, from a strided sample of its density.
    pub fn matmul_kernel_probe(&self) -> MatmulKernel {
        if probe_nonzero_fraction(self.data()) <= SPARSE_NONZERO_CUTOFF {
            MatmulKernel::Sparse
        } else {
            MatmulKernel::Dense
        }
    }

    /// Matrix product with an explicitly chosen kernel (used by tests and
    /// the ablation benchmarks; prefer [`Tensor::matmul`]). Runs on the
    /// process-default backend from [`crate::simd::backend`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_with_kernel(&self, other: &Tensor, kernel: MatmulKernel) -> Result<Tensor> {
        self.matmul_with(other, kernel, simd::backend())
    }

    /// Matrix product with both the kernel and the slice-kernel backend
    /// chosen explicitly. This is the root of every matmul entry point;
    /// parity tests and the simd-vs-scalar ablation benches use it to
    /// compare backends inside one process (the `ADVCOMP_KERNEL` cache is
    /// process-wide, so flipping the environment mid-run has no effect).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_with(
        &self,
        other: &Tensor,
        kernel: MatmulKernel,
        backend: KernelBackend,
    ) -> Result<Tensor> {
        let (m, k, n) = matmul_dims(self, other)?;
        let mut out = Tensor::zeros(&[m, n]);
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let threads = pool::global().effective_threads();
        let parallel = m * k * n >= PARALLEL_THRESHOLD && threads >= 2 && m >= 2;
        let a = self.data();
        let b = other.data();
        match kernel {
            MatmulKernel::Dense => {
                let packed = pack_b_panels(b, k, n);
                if parallel {
                    pool::for_each_row_band(out.data_mut(), n, threads, |row_start, band| {
                        matmul_dense_rows(backend, a, &packed, band, row_start, k, n);
                    });
                } else {
                    matmul_dense_rows(backend, a, &packed, out.data_mut(), 0, k, n);
                }
            }
            MatmulKernel::Sparse => {
                if parallel {
                    pool::for_each_row_band(out.data_mut(), n, threads, |row_start, band| {
                        matmul_sparse_rows(backend, a, b, band, row_start, k, n);
                    });
                } else {
                    matmul_sparse_rows(backend, a, b, out.data_mut(), 0, k, n);
                }
            }
        }
        Ok(out)
    }

    /// Blocked zero-skip matmul on the calling thread only (ablation
    /// reference; this was the only kernel before the dense/sparse split).
    /// Compiled only for tests and `bench-ablation` builds.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    #[cfg(any(test, feature = "bench-ablation"))]
    pub fn matmul_blocked_serial(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_dims(self, other)?;
        let mut out = Tensor::zeros(&[m, n]);
        if m > 0 && n > 0 {
            matmul_sparse_rows(
                simd::backend(),
                self.data(),
                other.data(),
                out.data_mut(),
                0,
                k,
                n,
            );
        }
        Ok(out)
    }

    /// Banded matmul that spawns fresh OS threads on every call — the
    /// pre-pool behaviour, kept only so the pooled-vs-spawned ablation
    /// bench measures real thread-creation cost against the same dense
    /// compute kernel. Production code must use [`Tensor::matmul`].
    /// Compiled only for tests and `bench-ablation` builds.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    #[cfg(any(test, feature = "bench-ablation"))]
    pub fn matmul_spawn_per_call(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_dims(self, other)?;
        let mut out = Tensor::zeros(&[m, n]);
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let backend = simd::backend();
        let a = self.data();
        let packed = pack_b_panels(other.data(), k, n);
        let threads = pool::available_threads();
        if m * k * n < PARALLEL_THRESHOLD || threads < 2 || m < 2 {
            matmul_dense_rows(backend, a, &packed, out.data_mut(), 0, k, n);
            return Ok(out);
        }
        let chunk_rows = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, band) in out.data_mut().chunks_mut(chunk_rows * n).enumerate() {
                let packed = &packed;
                scope.spawn(move || {
                    matmul_dense_rows(backend, a, packed, band, t * chunk_rows, k, n);
                });
            }
        });
        Ok(out)
    }

    /// Textbook triple-loop matmul (correctness reference). Compiled only
    /// for tests and `bench-ablation` builds.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    #[cfg(any(test, feature = "bench-ablation"))]
    pub fn matmul_naive(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = matmul_dims(self, other)?;
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += self.data()[i * k + kk] * other.data()[kk * n + j];
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        Ok(out)
    }

    /// Matrix–vector product: `[m, k] × [k] -> [m]`.
    ///
    /// # Errors
    ///
    /// Returns rank/shape errors mirroring [`Tensor::matmul`].
    pub fn matvec(&self, v: &Tensor) -> Result<Tensor> {
        if v.ndim() != 1 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: v.ndim(),
                op: "matvec",
            });
        }
        let col = v.reshape(&[v.len(), 1])?;
        let out = self.matmul(&col)?;
        out.reshape(&[self.shape()[0]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Init;
    use rand::{Rng, SeedableRng};

    #[test]
    fn small_matmul_exact() {
        let a = Tensor::new(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::new(&[3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(
            a.matmul(&v),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn blocked_matches_naive_on_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (33, 65, 17),
            (70, 70, 70),
        ] {
            let a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[m, k], &mut rng);
            let b = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[k, n], &mut rng);
            let fast = a.matmul(&b).unwrap();
            let slow = a.matmul_naive(&b).unwrap();
            assert!(fast.allclose(&slow, 1e-4), "mismatch at {m}x{k}x{n}");
            let serial = a.matmul_blocked_serial(&b).unwrap();
            assert!(serial.allclose(&slow, 1e-4));
        }
    }

    #[test]
    fn dense_kernel_matches_naive_on_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        // Sizes straddle the panel width, the k-unroll remainder, and the
        // parallel threshold.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 6, 130),
            (17, 129, 257),
            (70, 70, 70),
            (130, 80, 90),
        ] {
            let a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[m, k], &mut rng);
            let b = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[k, n], &mut rng);
            let dense = a.matmul_with_kernel(&b, MatmulKernel::Dense).unwrap();
            let slow = a.matmul_naive(&b).unwrap();
            assert!(dense.allclose(&slow, 1e-4), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn sparse_kernel_matches_dense_on_pruned_input() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[65, 70], &mut rng);
        for v in a.data_mut().iter_mut() {
            if rng.gen::<f32>() < 0.92 {
                *v = 0.0;
            }
        }
        let b = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[70, 33], &mut rng);
        let sparse = a.matmul_with_kernel(&b, MatmulKernel::Sparse).unwrap();
        let dense = a.matmul_with_kernel(&b, MatmulKernel::Dense).unwrap();
        assert!(sparse.allclose(&dense, 1e-4));
    }

    #[test]
    fn probe_selects_sparse_for_pruned_and_dense_for_dense() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let dense = Init::Uniform { lo: 0.5, hi: 1.0 }.tensor(&[64, 64], &mut rng);
        assert_eq!(dense.matmul_kernel_probe(), MatmulKernel::Dense);

        // ≥90 % zeros — the regime produced by magnitude pruning.
        let mut pruned = Init::Uniform { lo: 0.5, hi: 1.0 }.tensor(&[64, 64], &mut rng);
        for (i, v) in pruned.data_mut().iter_mut().enumerate() {
            if i % 10 != 0 {
                *v = 0.0;
            }
        }
        assert_eq!(pruned.matmul_kernel_probe(), MatmulKernel::Sparse);
    }

    #[test]
    fn parallel_path_matches_naive() {
        // Big enough to cross PARALLEL_THRESHOLD.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[130, 80], &mut rng);
        let b = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[80, 90], &mut rng);
        let fast = a.matmul(&b).unwrap();
        let slow = a.matmul_naive(&b).unwrap();
        assert!(fast.allclose(&slow, 1e-3));
    }

    #[test]
    fn spawn_per_call_matches_pooled() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[128, 128], &mut rng);
        let b = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[128, 128], &mut rng);
        let pooled = a.matmul(&b).unwrap();
        let spawned = a.matmul_spawn_per_call(&b).unwrap();
        assert!(pooled.allclose(&spawned, 1e-5));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::new(&[2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let v = Tensor::from_vec(vec![1., 0., -1.]);
        let out = a.matvec(&v).unwrap();
        assert_eq!(out.shape(), &[2]);
        assert_eq!(out.data(), &[-2.0, -2.0]);
        assert!(a.matvec(&Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn prepacked_gemm_bit_identical_to_matmul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (7, 33, 130), (130, 80, 90)] {
            let a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[m, k], &mut rng);
            let b = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[k, n], &mut rng);
            let reference = a.matmul_with_kernel(&b, MatmulKernel::Dense).unwrap();
            let packed = PackedGemmB::pack(b.data(), k, n).unwrap();
            let mut out = vec![f32::NAN; m * n];
            gemm_prepacked(simd::backend(), a.data(), m, &packed, &mut out).unwrap();
            assert_eq!(reference.data(), &out[..], "prepacked at {m}x{k}x{n}");
        }
    }

    #[test]
    fn sparse_slice_gemm_bit_identical_to_matmul() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let (m, k, n) = (65, 70, 33);
        let mut a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[m, k], &mut rng);
        for v in a.data_mut().iter_mut() {
            if rng.gen::<f32>() < 0.9 {
                *v = 0.0;
            }
        }
        let b = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[k, n], &mut rng);
        let reference = a.matmul_with_kernel(&b, MatmulKernel::Sparse).unwrap();
        let mut out = vec![f32::NAN; m * n];
        gemm_sparse(simd::backend(), a.data(), m, b.data(), k, n, &mut out).unwrap();
        assert_eq!(reference.data(), &out[..]);
    }

    #[test]
    fn slice_probe_matches_tensor_probe() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let dense = Init::Uniform { lo: 0.5, hi: 1.0 }.tensor(&[64, 64], &mut rng);
        assert_eq!(
            probe_matmul_kernel(dense.data()),
            dense.matmul_kernel_probe()
        );
        let mut pruned = dense.clone();
        for (i, v) in pruned.data_mut().iter_mut().enumerate() {
            if i % 10 != 0 {
                *v = 0.0;
            }
        }
        assert_eq!(
            probe_matmul_kernel(pruned.data()),
            pruned.matmul_kernel_probe()
        );
    }

    #[test]
    fn prepacked_rejects_bad_lengths() {
        assert!(PackedGemmB::pack(&[0.0; 5], 2, 3).is_err());
        let b = PackedGemmB::pack(&[0.0; 6], 2, 3).unwrap();
        let mut out = vec![0.0; 6];
        assert!(gemm_prepacked(simd::backend(), &[0.0; 3], 2, &b, &mut out).is_err());
        assert!(gemm_prepacked(simd::backend(), &[0.0; 4], 2, &b, &mut out[..5]).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[4, 4], &mut rng);
        let i = Tensor::eye(4);
        assert!(a.matmul(&i).unwrap().allclose(&a, 1e-6));
        assert!(i.matmul(&a).unwrap().allclose(&a, 1e-6));
    }
}
