//! Block-quantised weight storage and fused int8 GEMM kernels.
//!
//! This module is the storage + execution half of the paper's fixed-point
//! story. The simulation half (`FakeQuant`, `qformat`) rounds values in
//! f32 and still pays full dense-float inference; here the rounded codes
//! are *stored* as integers and *executed* with int8×int8→i32 arithmetic:
//!
//! ```text
//! block layout (one row of a packed weight matrix, QK = 32):
//!
//!   Q8: ┌ scale f32 ┐┌ 32 × i8 codes ───────────────┐  = 36 B / 32 values
//!   Q4: ┌ scale f32 ┐┌ 16 B: lo nibble v[0..16],    │  = 20 B / 32 values
//!       │           ││       hi nibble v[16..32]    │
//!       └───────────┘└──────────────────────────────┘
//! ```
//!
//! Codes are the raw two's-complement [`QFormat`] codes (`encode`), and
//! every block scale is the format's resolution `2^-f`, so
//! `code × scale` reproduces [`QFormat::decode`] **bit-exactly** — a
//! packed tensor dequantises to precisely the values the simulated
//! (`quantize_slice`) path produces. The per-block scale field keeps the
//! layout compatible with data-dependent block scales (ggml's Q8_0/Q4_0)
//! should a future format need them.
//!
//! The GEMM ([`qmatmul`]) quantises f32 activations per row on entry,
//! accumulates each 32-value block in i32, and fuses dequantisation into
//! the f32 output accumulator (`acc += block_sum × scale_w × scale_a`).
//! Dispatch follows the [`crate::simd`] contract: explicit
//! [`KernelBackend`], AVX2 bodies behind a runtime feature check, scalar
//! fallback everywhere, `ADVCOMP_KERNEL` honoured by callers passing
//! [`crate::simd::backend`]. On the scalar backend the packed forward is
//! bit-exact with the simulated path whenever every intermediate product
//! sum stays inside f32's 24-bit integer window (true for the paper's
//! Q1.3/Q2.6 schedules on LeNet-scale reductions); the AVX2 path is
//! tolerance-class like the dense FMA GEMM.

use crate::simd::KernelBackend;
use crate::{pool, Result, TensorError};
use advcomp_qformat::QFormat;

/// Values per quantisation block (ggml's `QK8_0`/`QK4_0`).
pub const QK: usize = 32;

/// Work threshold above which [`qmatmul`] parallelises over row bands.
///
/// Deliberately higher than the dense GEMM's `64³` threshold: the
/// `maddubs` kernel retires ~4× the MACs per instruction of the f32 FMA
/// path, so a problem that keeps eight f32 bands busy finishes in the
/// time the pool takes to wake its workers. Measured on the 128³ bench
/// shape (`BENCH_quant.json`), banding *costs* the packed path ~30%;
/// serial wins until roughly this size.
const PARALLEL_THRESHOLD: usize = 160 * 160 * 160;

/// Storage class of a packed tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantKind {
    /// 4-bit codes, two per byte (`Q4_0` layout): 20 bytes per block.
    Q4,
    /// 8-bit codes, one per byte (`Q8_0` layout): 36 bytes per block.
    Q8,
}

impl QuantKind {
    /// Picks the narrowest block class whose codes can hold `format`'s
    /// raw range: ≤ 4 total bits → [`QuantKind::Q4`], ≤ 8 → [`QuantKind::Q8`].
    /// Wider formats have no packed representation and return `None`.
    pub fn for_format(format: QFormat) -> Option<QuantKind> {
        match format.total_bits() {
            0..=4 => Some(QuantKind::Q4),
            5..=8 => Some(QuantKind::Q8),
            _ => None,
        }
    }

    /// Code width in bits.
    pub fn bits(self) -> u32 {
        match self {
            QuantKind::Q4 => 4,
            QuantKind::Q8 => 8,
        }
    }

    /// Packed code bytes per 32-value block (scale excluded).
    pub fn payload_bytes(self) -> usize {
        match self {
            QuantKind::Q4 => QK / 2,
            QuantKind::Q8 => QK,
        }
    }

    /// Total bytes per block: payload plus the f32 scale.
    pub fn block_bytes(self) -> usize {
        4 + self.payload_bytes()
    }

    /// Stable lowercase name (`"q4_0"` / `"q8_0"`).
    pub fn name(self) -> &'static str {
        match self {
            QuantKind::Q4 => "q4_0",
            QuantKind::Q8 => "q8_0",
        }
    }
}

/// A weight tensor stored as quantised blocks.
///
/// The logical shape is preserved (`[out, in]` for dense weights,
/// `[oc, ic, kh, kw]` for convolutions); rows are `shape[0]` and every
/// row's trailing axes are flattened to `cols` — exactly the 2-D view the
/// GEMM-lowered forward passes consume. Each row is padded independently
/// to a whole number of blocks with zero codes, so `cols` need not be a
/// multiple of [`QK`].
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    kind: QuantKind,
    shape: Vec<usize>,
    format: QFormat,
    /// One scale per block, `rows × blocks_per_row`, row-major.
    scales: Vec<f32>,
    /// Packed codes, `rows × blocks_per_row × payload_bytes`, row-major.
    codes: Vec<u8>,
    /// Whether the `maddubs` dot-product kernel is exact for these codes:
    /// always for Q4 (nibbles decode to [-8, 7]), and for Q8 iff no code
    /// is -128 — `sign(w, a)` negates `w` for negative activations, and
    /// `-(-128)` wraps. Cached at construction; see `qgemm_rows`.
    maddubs_safe: bool,
}

impl QTensor {
    /// Packs `data` (row-major, logical shape `shape`) into quantised
    /// blocks using `format`'s round-to-nearest semantics.
    ///
    /// Every stored code is exactly `format.encode(value)` and every block
    /// scale is `format.resolution()`, so [`QTensor::dequantize`] equals
    /// `format.quantize` applied elementwise, bit for bit.
    ///
    /// # Errors
    ///
    /// [`TensorError::Unsupported`] when `format` is wider than 8 bits;
    /// [`TensorError::LengthMismatch`] when `data` does not fill `shape`;
    /// [`TensorError::Empty`] for an empty shape.
    pub fn quantize(data: &[f32], shape: &[usize], format: QFormat) -> Result<QTensor> {
        let kind = QuantKind::for_format(format).ok_or_else(|| {
            TensorError::Unsupported(format!(
                "no packed block format for {}-bit {format}",
                format.total_bits()
            ))
        })?;
        let (rows, cols) = split_rows_cols(shape)?;
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        let bpr = cols.div_ceil(QK);
        let scale = format.resolution();
        let scales = vec![scale; rows * bpr];
        let mut codes = vec![0u8; rows * bpr * kind.payload_bytes()];
        // Padding codes stay zero: they contribute exactly 0 to any dot
        // product and dequantise to 0.0 (never read back, since dequantize
        // stops at `cols`).
        let mut block = [0i8; QK];
        for r in 0..rows {
            for b in 0..bpr {
                let start = b * QK;
                let len = QK.min(cols - start);
                block.fill(0);
                for (l, q) in block.iter_mut().enumerate().take(len) {
                    *q = format.encode(data[r * cols + start + l]) as i8;
                }
                let out = &mut codes[(r * bpr + b) * kind.payload_bytes()..];
                match kind {
                    QuantKind::Q8 => {
                        for (l, &q) in block.iter().enumerate() {
                            out[l] = q as u8;
                        }
                    }
                    QuantKind::Q4 => {
                        // ggml Q4_0 layout: byte l = lo nibble value l,
                        // hi nibble value l + 16.
                        for l in 0..QK / 2 {
                            out[l] =
                                (block[l] as u8 & 0x0F) | ((block[l + QK / 2] as u8 & 0x0F) << 4);
                        }
                    }
                }
            }
        }
        let maddubs_safe = maddubs_safe(kind, &codes);
        Ok(QTensor {
            kind,
            shape: shape.to_vec(),
            format,
            scales,
            codes,
            maddubs_safe,
        })
    }

    /// Reassembles a packed tensor from its serialised parts (the
    /// checkpoint-v3 decode path).
    ///
    /// # Errors
    ///
    /// [`TensorError::Unsupported`] when `kind` cannot hold `format`, and
    /// [`TensorError::LengthMismatch`] when `scales`/`codes` lengths do
    /// not match the shape's block count.
    pub fn from_parts(
        kind: QuantKind,
        shape: Vec<usize>,
        format: QFormat,
        scales: Vec<f32>,
        codes: Vec<u8>,
    ) -> Result<QTensor> {
        match QuantKind::for_format(format) {
            Some(k) if k.bits() <= kind.bits() => {}
            _ => {
                return Err(TensorError::Unsupported(format!(
                    "{format} codes do not fit {} blocks",
                    kind.name()
                )))
            }
        }
        let (rows, cols) = split_rows_cols(&shape)?;
        let bpr = cols.div_ceil(QK);
        if scales.len() != rows * bpr {
            return Err(TensorError::LengthMismatch {
                expected: rows * bpr,
                actual: scales.len(),
            });
        }
        if codes.len() != rows * bpr * kind.payload_bytes() {
            return Err(TensorError::LengthMismatch {
                expected: rows * bpr * kind.payload_bytes(),
                actual: codes.len(),
            });
        }
        let maddubs_safe = maddubs_safe(kind, &codes);
        Ok(QTensor {
            kind,
            shape,
            format,
            scales,
            codes,
            maddubs_safe,
        })
    }

    /// Storage class.
    pub fn kind(&self) -> QuantKind {
        self.kind
    }

    /// Logical (unpacked) shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The fixed-point format the codes were encoded with.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Row count (`shape[0]`).
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Flattened per-row element count (product of trailing axes).
    pub fn cols(&self) -> usize {
        self.shape[1..].iter().product()
    }

    /// Blocks per row (`cols` rounded up to whole blocks).
    pub fn blocks_per_row(&self) -> usize {
        self.cols().div_ceil(QK)
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        self.rows() * self.cols()
    }

    /// `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-block scales, row-major.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Packed code bytes, row-major.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Real packed size in bytes: code payload plus block scales. This is
    /// the number the size-accounting report and the ≤ ⅓-of-f32 checkpoint
    /// acceptance bound are measured against.
    pub fn packed_bytes(&self) -> usize {
        self.codes.len() + self.scales.len() * 4
    }

    /// The single scale shared by every block, when uniform (bit-compared).
    ///
    /// Tensors packed by [`QTensor::quantize`] always qualify — every block
    /// stores `format.resolution()`. The GEMM kernels use this to hoist the
    /// dequant multiply out of the block loop and accumulate raw i32 sums
    /// across the whole row instead (see `qgemm_rows`).
    pub fn uniform_scale(&self) -> Option<f32> {
        let first = *self.scales.first()?;
        self.scales[1..]
            .iter()
            .all(|s| s.to_bits() == first.to_bits())
            .then_some(first)
    }

    /// The raw code of logical element `(row, col)`.
    pub fn code(&self, row: usize, col: usize) -> i8 {
        let bpr = self.blocks_per_row();
        let (b, l) = (col / QK, col % QK);
        match self.kind {
            QuantKind::Q8 => self.codes[(row * bpr + b) * QK + l] as i8,
            QuantKind::Q4 => {
                let byte = self.codes[(row * bpr + b) * (QK / 2) + (l % (QK / 2))];
                if l < QK / 2 {
                    ((byte << 4) as i8) >> 4
                } else {
                    (byte as i8) >> 4
                }
            }
        }
    }

    /// Re-packs a [`QuantKind::Q4`] tensor into [`QuantKind::Q8`] block
    /// layout: every 4-bit nibble is sign-extended into its own byte. The
    /// codes, scales and logical shape are untouched, so every dot product
    /// computed against the widened tensor is integer-identical to one
    /// against the original — but the per-block nibble unpack leaves the
    /// GEMM inner loop entirely.
    ///
    /// This is the graph compiler's fix for the q4 forward regression: q4
    /// weights are widened once at plan-compile time (2× the q4 bytes,
    /// still ~half the q8 checkpoint), and the forward runs the Q8 kernels
    /// — including `maddubs`, which is always exact for codes in [-8, 7].
    /// Q8 tensors are returned as a cheap clone.
    pub fn widen_to_q8(&self) -> QTensor {
        if self.kind == QuantKind::Q8 {
            return self.clone();
        }
        let half = QK / 2;
        let blocks = self.scales.len();
        let mut codes = vec![0u8; blocks * QK];
        for b in 0..blocks {
            let src = &self.codes[b * half..(b + 1) * half];
            let dst = &mut codes[b * QK..(b + 1) * QK];
            for (l, &byte) in src.iter().enumerate() {
                dst[l] = (((byte << 4) as i8) >> 4) as u8;
                dst[l + half] = ((byte as i8) >> 4) as u8;
            }
        }
        QTensor {
            kind: QuantKind::Q8,
            shape: self.shape.clone(),
            format: self.format,
            scales: self.scales.clone(),
            // Q4 codes decode to [-8, 7]: never 0x80, so maddubs is exact.
            maddubs_safe: maddubs_safe(QuantKind::Q8, &codes),
            codes,
        }
    }

    /// Unpacks to row-major f32 values in the logical shape. Bit-exact
    /// with `format.quantize` applied to the original data.
    pub fn dequantize(&self) -> Vec<f32> {
        let (rows, cols, bpr) = (self.rows(), self.cols(), self.blocks_per_row());
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let scale = self.scales[r * bpr + c / QK];
                out.push(self.code(r, c) as f32 * scale);
            }
        }
        out
    }
}

/// Whether the `maddubs`-based dot kernels are exact for these codes.
///
/// `maddubs(|a|, sign(w, a))` computes `a·w` per lane as long as `-w`
/// never wraps, i.e. no Q8 weight code is -128 (byte `0x80`). With
/// `|w| ≤ 127` the i16 pair sums are bounded by `2·128·127 = 32512`, so
/// the saturating add is exact too — for every activation code including
/// -128 (`|−128|` is 128, valid as the unsigned operand). Q4 codes decode
/// to [-8, 7] and always qualify.
fn maddubs_safe(kind: QuantKind, codes: &[u8]) -> bool {
    match kind {
        QuantKind::Q4 => true,
        QuantKind::Q8 => !codes.contains(&0x80),
    }
}

/// Splits a logical shape into `(rows, flattened cols)`.
fn split_rows_cols(shape: &[usize]) -> Result<(usize, usize)> {
    if shape.is_empty() {
        return Err(TensorError::Empty("quantize"));
    }
    let rows = shape[0];
    let cols: usize = shape[1..].iter().product();
    if rows == 0 || cols == 0 {
        return Err(TensorError::Empty("quantize"));
    }
    Ok((rows, cols))
}

/// A batch of activation rows quantised to i8 codes for the int8 GEMM.
///
/// Rows are quantised independently on entry to a packed layer (the
/// activations themselves stay f32 between layers). Codes use the same
/// fixed-point grid as the installed activation format, so re-encoding an
/// already-quantised activation (the `FakeQuant` output) is lossless.
#[derive(Debug, Clone)]
pub struct QActivations {
    rows: usize,
    cols: usize,
    /// i8 codes, `rows × blocks_per_row × QK`, zero-padded per row.
    codes: Vec<i8>,
    /// The single activation scale `2^-f` (uniform across rows under a
    /// fixed-point format).
    scale: f32,
    format: QFormat,
}

impl QActivations {
    /// An empty buffer bound to `format`, for reuse via
    /// [`quantize_activations_into`] or [`QActivations::reset`]. The graph
    /// executor holds one per packed layer so the steady-state forward
    /// quantises into persistent storage instead of allocating.
    ///
    /// # Errors
    ///
    /// [`TensorError::Unsupported`] when the format's codes exceed 8 bits.
    pub fn with_format(format: QFormat) -> Result<QActivations> {
        if QuantKind::for_format(format).is_none() {
            return Err(TensorError::Unsupported(format!(
                "activation codes for {}-bit {format} do not fit i8",
                format.total_bits()
            )));
        }
        Ok(QActivations {
            rows: 0,
            cols: 0,
            codes: Vec::new(),
            scale: format.resolution(),
            format,
        })
    }

    /// Resizes for `rows × cols` logical values and zeroes every code
    /// (including block padding), keeping the bound format. Callers then
    /// write codes through [`QActivations::codes_mut`] — the layout is
    /// `rows × blocks_per_row × QK`, rows padded with zero codes.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        let bpr = cols.div_ceil(QK);
        self.codes.clear();
        self.codes.resize(rows * bpr * QK, 0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Mutable access to the i8 codes (padded rows).
    pub fn codes_mut(&mut self) -> &mut [i8] {
        &mut self.codes
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical per-row length.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Blocks per row.
    pub fn blocks_per_row(&self) -> usize {
        self.cols.div_ceil(QK)
    }

    /// The activation format the codes were encoded with.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The activation scale (`format.resolution()`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The i8 codes (padded rows).
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }
}

/// Quantises f32 activation rows (`rows × cols`, row-major) to i8 codes.
///
/// Scalar and AVX2 paths agree bit-exactly: both compute
/// `round_half_away(v × 2^f)` saturated to the format's raw range (the
/// power-of-two scaling is exact in f32 and f64 alike), with NaN encoding
/// to 0 as in [`QFormat::encode`].
///
/// # Errors
///
/// [`TensorError::Unsupported`] when the format's codes exceed 8 bits;
/// [`TensorError::LengthMismatch`] when `data` is not `rows × cols`.
pub fn quantize_activations(
    backend: KernelBackend,
    data: &[f32],
    rows: usize,
    cols: usize,
    format: QFormat,
) -> Result<QActivations> {
    if QuantKind::for_format(format).is_none() {
        return Err(TensorError::Unsupported(format!(
            "activation codes for {}-bit {format} do not fit i8",
            format.total_bits()
        )));
    }
    if data.len() != rows * cols {
        return Err(TensorError::LengthMismatch {
            expected: rows * cols,
            actual: data.len(),
        });
    }
    let bpr = cols.div_ceil(QK);
    let mut codes = vec![0i8; rows * bpr * QK];
    for r in 0..rows {
        let src = &data[r * cols..(r + 1) * cols];
        let dst = &mut codes[r * bpr * QK..r * bpr * QK + cols];
        encode_row(backend, src, format, dst);
    }
    Ok(QActivations {
        rows,
        cols,
        codes,
        scale: format.resolution(),
        format,
    })
}

/// [`quantize_activations`] into a caller-owned buffer created with
/// [`QActivations::with_format`] — identical codes, no allocation once the
/// buffer has grown to its steady-state size.
///
/// # Errors
///
/// As [`quantize_activations`]; additionally
/// [`TensorError::Unsupported`] when `format` differs from the buffer's
/// bound format (the scale would silently change otherwise).
pub fn quantize_activations_into(
    backend: KernelBackend,
    data: &[f32],
    rows: usize,
    cols: usize,
    format: QFormat,
    out: &mut QActivations,
) -> Result<()> {
    if format != out.format {
        return Err(TensorError::Unsupported(format!(
            "activation buffer bound to {}, fed {format}",
            out.format
        )));
    }
    if data.len() != rows * cols {
        return Err(TensorError::LengthMismatch {
            expected: rows * cols,
            actual: data.len(),
        });
    }
    out.reset(rows, cols);
    let bpr = cols.div_ceil(QK);
    for r in 0..rows {
        let src = &data[r * cols..(r + 1) * cols];
        let dst = &mut out.codes[r * bpr * QK..r * bpr * QK + cols];
        encode_row(backend, src, format, dst);
    }
    Ok(())
}

/// Encodes one row of f32 values to i8 codes.
fn encode_row(backend: KernelBackend, src: &[f32], format: QFormat, dst: &mut [i8]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::use_avx2(backend) {
        // SAFETY: use_avx2 verified AVX2 support at runtime.
        unsafe { avx2::encode_row(src, format, dst) };
        return;
    }
    let _ = backend;
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = format.encode(v) as i8;
    }
}

/// Int8 GEMM with fused per-block dequantisation:
/// `out[i, j] = Σ_b (Σ_l a[i, b·32+l] · w[j, b·32+l]) · scale_w[j, b] · scale_a`,
/// the inner sum in i32 and the outer accumulation in f32.
///
/// `out` is `[act.rows, w.rows]` row-major; callers add bias and reshape.
/// Parallelises over output row bands on the global worker pool above the
/// same work threshold as the dense GEMM.
///
/// # Errors
///
/// [`TensorError::ShapeMismatch`] when the inner dimensions disagree, and
/// [`TensorError::LengthMismatch`] when `out` has the wrong size.
pub fn qmatmul(
    backend: KernelBackend,
    act: &QActivations,
    w: &QTensor,
    out: &mut [f32],
) -> Result<()> {
    if act.cols() != w.cols() {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![act.rows(), act.cols()],
            rhs: w.shape().to_vec(),
            op: "qmatmul",
        });
    }
    let (m, n) = (act.rows(), w.rows());
    if out.len() != m * n {
        return Err(TensorError::LengthMismatch {
            expected: m * n,
            actual: out.len(),
        });
    }
    let threads = pool::global().effective_threads();
    if m * act.cols() * n >= PARALLEL_THRESHOLD && threads >= 2 && m >= 2 {
        pool::for_each_row_band(out, n, threads, |row_start, band| {
            qgemm_rows(backend, act, w, row_start, band);
        });
    } else {
        qgemm_rows(backend, act, w, 0, out);
    }
    Ok(())
}

/// Convenience wrapper: quantises `a` (`m × w.cols()` f32, row-major) with
/// `act_format` and runs [`qmatmul`]. This is the dequant-fused entry the
/// packed `Dense` forward and the im2col conv path use.
///
/// # Errors
///
/// As [`quantize_activations`] and [`qmatmul`].
pub fn qmatmul_f32(
    backend: KernelBackend,
    a: &[f32],
    m: usize,
    act_format: QFormat,
    w: &QTensor,
    out: &mut [f32],
) -> Result<()> {
    let act = quantize_activations(backend, a, m, w.cols(), act_format)?;
    qmatmul(backend, &act, w, out)
}

/// Computes the output rows `row_start..` of the GEMM into `band`.
fn qgemm_rows(
    backend: KernelBackend,
    act: &QActivations,
    w: &QTensor,
    row_start: usize,
    band: &mut [f32],
) {
    let n = w.rows();
    let bpr = w.blocks_per_row();
    // Uniform-scale fast path: when every block shares one scale (always
    // true for `QTensor::quantize` output — the scale is the format's
    // power-of-two resolution), the per-block dequant multiply hoists out
    // of the kernel entirely and raw i32 sums accumulate across the whole
    // row. The per-block i32 sum is bounded by 32·2^7·2^7 = 2^19, so the
    // row total stays inside i32 up to 4096 blocks (k = 131072).
    let uniform = if bpr <= 4096 {
        w.uniform_scale().map(|s| s * act.scale)
    } else {
        None
    };
    for (local, out_row) in band.chunks_mut(n).enumerate() {
        let i = row_start + local;
        let a_row = &act.codes[i * bpr * QK..(i + 1) * bpr * QK];
        #[cfg(target_arch = "x86_64")]
        if crate::simd::use_avx2(backend) {
            // SAFETY: use_avx2 verified AVX2 support at runtime.
            unsafe {
                match (w.kind, uniform) {
                    (QuantKind::Q8, Some(s)) if w.maddubs_safe => {
                        avx2::qgemm_row_q8_uniform_maddubs(a_row, s, w, out_row);
                    }
                    (QuantKind::Q8, Some(s)) => avx2::qgemm_row_q8_uniform(a_row, s, w, out_row),
                    (QuantKind::Q4, Some(s)) => avx2::qgemm_row_q4_uniform(a_row, s, w, out_row),
                    (QuantKind::Q8, None) => avx2::qgemm_row_q8(a_row, act.scale, w, out_row),
                    (QuantKind::Q4, None) => avx2::qgemm_row_q4(a_row, act.scale, w, out_row),
                }
            }
            continue;
        }
        let _ = backend;
        scalar_qgemm_row(a_row, act.scale, w, 0, out_row);
    }
}

/// Scalar reference row kernel (the bit-exact class: per-block i32 sums,
/// f32 accumulation across blocks — in the exact regime this matches the
/// simulated dense-f32 forward on quantised values). `out_row[l]`
/// corresponds to weight row `j0 + l` (the SIMD kernels hand their
/// sub-4-row tails here).
fn scalar_qgemm_row(a_row: &[i8], a_scale: f32, w: &QTensor, j0: usize, out_row: &mut [f32]) {
    let bpr = w.blocks_per_row();
    for (local, o) in out_row.iter_mut().enumerate() {
        let j = j0 + local;
        let scales = &w.scales[j * bpr..(j + 1) * bpr];
        let mut acc = 0.0f32;
        match w.kind {
            QuantKind::Q8 => {
                let wrow = &w.codes[j * bpr * QK..(j + 1) * bpr * QK];
                for b in 0..bpr {
                    let mut sum = 0i32;
                    for l in 0..QK {
                        sum += a_row[b * QK + l] as i32 * (wrow[b * QK + l] as i8) as i32;
                    }
                    acc += sum as f32 * (scales[b] * a_scale);
                }
            }
            QuantKind::Q4 => {
                let half = QK / 2;
                let wrow = &w.codes[j * bpr * half..(j + 1) * bpr * half];
                for b in 0..bpr {
                    let mut sum = 0i32;
                    for l in 0..half {
                        let byte = wrow[b * half + l];
                        let lo = ((byte << 4) as i8 >> 4) as i32;
                        let hi = (byte as i8 >> 4) as i32;
                        sum += a_row[b * QK + l] as i32 * lo;
                        sum += a_row[b * QK + half + l] as i32 * hi;
                    }
                    acc += sum as f32 * (scales[b] * a_scale);
                }
            }
        }
        *o = acc;
    }
}

/// Scalar tail of the uniform-scale Q8 row kernels: whole-row i32 totals
/// with the single hoisted dequant multiply. `out_row[l]` is weight row
/// `j0 + l`.
#[cfg(target_arch = "x86_64")]
fn scalar_uniform_tail_q8(
    a_row: &[i8],
    combined_scale: f32,
    w: &QTensor,
    j0: usize,
    out_row: &mut [f32],
) {
    let bpr = w.blocks_per_row();
    for (local, o) in out_row.iter_mut().enumerate() {
        let jj = j0 + local;
        let wrow = &w.codes[jj * bpr * QK..(jj + 1) * bpr * QK];
        let mut total = 0i32;
        for (l, &a) in a_row.iter().enumerate() {
            total += a as i32 * (wrow[l] as i8) as i32;
        }
        *o = total as f32 * combined_scale;
    }
}

/// Scalar tail of the uniform-scale Q4 row kernel — the nibble-decoding
/// analogue of [`scalar_uniform_tail_q8`].
#[cfg(target_arch = "x86_64")]
fn scalar_uniform_tail_q4(
    a_row: &[i8],
    combined_scale: f32,
    w: &QTensor,
    j0: usize,
    out_row: &mut [f32],
) {
    let bpr = w.blocks_per_row();
    let half = QK / 2;
    for (local, o) in out_row.iter_mut().enumerate() {
        let jj = j0 + local;
        let wrow = &w.codes[jj * bpr * half..(jj + 1) * bpr * half];
        let mut total = 0i32;
        for b in 0..bpr {
            for l in 0..half {
                let byte = wrow[b * half + l];
                let lo = ((byte << 4) as i8 >> 4) as i32;
                let hi = (byte as i8 >> 4) as i32;
                total += a_row[b * QK + l] as i32 * lo;
                total += a_row[b * QK + half + l] as i32 * hi;
            }
        }
        *o = total as f32 * combined_scale;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 bodies. Same contracts as `simd::avx2`: callers must have
    //! verified `avx2` support; slices may have any length (tails are
    //! handled inside). int8×int8 products go through sign-extension to
    //! i16 and `madd` (16 MACs per instruction) rather than `maddubs`,
    //! which would need an unsigned operand.

    use super::{QTensor, QK};
    use advcomp_qformat::QFormat;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// Encodes a row of f32 to i8 codes: `round_half_away(v · 2^f)`
    /// saturated to the raw range, NaN → 0. Bit-exact with the scalar
    /// `QFormat::encode` (power-of-two scaling is exact in both widths).
    #[target_feature(enable = "avx2")]
    pub unsafe fn encode_row(src: &[f32], format: QFormat, dst: &mut [i8]) {
        let scale = _mm256_set1_ps((1u64 << format.frac_bits()) as f32);
        let lo = _mm256_set1_ps(format.min_raw() as f32);
        let hi = _mm256_set1_ps(format.max_raw() as f32);
        let half = _mm256_set1_ps(0.5);
        let sign_mask = _mm256_set1_ps(-0.0);
        let n = src.len();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(src.as_ptr().add(i));
            let t = _mm256_mul_ps(v, scale);
            // round half away from zero: trunc(t + copysign(0.5, t)).
            let signed_half = _mm256_or_ps(half, _mm256_and_ps(t, sign_mask));
            let r = _mm256_round_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(_mm256_add_ps(
                t,
                signed_half,
            ));
            // NaN → 0 (ordered-compare mask), then saturate to the raw range.
            let ord = _mm256_cmp_ps(r, r, _CMP_ORD_Q);
            let r = _mm256_and_ps(r, ord);
            let r = _mm256_max_ps(lo, _mm256_min_ps(hi, r));
            let q = _mm256_cvtps_epi32(r); // integral input: exact
                                           // 8 × i32 → 8 × i8 in the low lanes.
            let packed16 =
                _mm_packs_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256::<1>(q));
            let packed8 = _mm_packs_epi16(packed16, packed16);
            _mm_storel_epi64(dst.as_mut_ptr().add(i).cast(), packed8);
            i += 8;
        }
        for l in i..n {
            dst[l] = format.encode(src[l]) as i8;
        }
    }

    /// Sign-extends 16 i8 lanes to 16 i16 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn widen(ptr: *const u8) -> __m256i {
        _mm256_cvtepi8_epi16(_mm_loadu_si128(ptr.cast()))
    }

    /// i32 lane sums of one 32-value block product.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn block_madd(a0: __m256i, a1: __m256i, w0: __m256i, w1: __m256i) -> __m256i {
        _mm256_add_epi32(_mm256_madd_epi16(a0, w0), _mm256_madd_epi16(a1, w1))
    }

    /// Horizontal sum of 8 f32 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_ps(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps::<1>(v);
        let s = _mm_add_ps(_mm256_castps256_ps128(v), hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
        _mm_cvtss_f32(s)
    }

    /// One output row of the Q8 GEMM, 4 weight rows per inner pass so the
    /// widened activation block is reused across rows.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn qgemm_row_q8(a_row: &[i8], a_scale: f32, w: &QTensor, out_row: &mut [f32]) {
        let bpr = w.blocks_per_row();
        let n = out_row.len();
        let codes = w.codes.as_ptr();
        let mut j = 0;
        while j + 4 <= n {
            let mut acc = [_mm256_setzero_ps(); 4];
            for b in 0..bpr {
                let ap = a_row.as_ptr().add(b * QK).cast::<u8>();
                let a0 = widen(ap);
                let a1 = widen(ap.add(16));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let wp = codes.add(((j + r) * bpr + b) * QK);
                    let sums = block_madd(a0, a1, widen(wp), widen(wp.add(16)));
                    let s = _mm256_set1_ps(*w.scales.get_unchecked((j + r) * bpr + b) * a_scale);
                    *accr = _mm256_fmadd_ps(_mm256_cvtepi32_ps(sums), s, *accr);
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out_row[j + r] = hsum_ps(*accr);
            }
            j += 4;
        }
        if j < n {
            super::scalar_qgemm_row(a_row, a_scale, w, j, &mut out_row[j..]);
        }
    }

    /// i32 horizontal sum of 8 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0x4E>(s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0xB1>(s));
        _mm_cvtsi128_si32(s)
    }

    /// One output row of the Q8 GEMM under a uniform block scale: raw i32
    /// sums accumulate across every block and the single dequant multiply
    /// happens once per output. This removes the per-block scale
    /// broadcast, int→float conversion and FMA of the general kernel —
    /// the hot path for `QTensor::quantize`-packed weights, whose blocks
    /// all carry the format's power-of-two resolution.
    #[target_feature(enable = "avx2")]
    pub unsafe fn qgemm_row_q8_uniform(
        a_row: &[i8],
        combined_scale: f32,
        w: &QTensor,
        out_row: &mut [f32],
    ) {
        let bpr = w.blocks_per_row();
        let n = out_row.len();
        let codes = w.codes.as_ptr();
        let mut j = 0;
        while j + 4 <= n {
            let mut acc = [_mm256_setzero_si256(); 4];
            for b in 0..bpr {
                let ap = a_row.as_ptr().add(b * QK).cast::<u8>();
                let a0 = widen(ap);
                let a1 = widen(ap.add(16));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let wp = codes.add(((j + r) * bpr + b) * QK);
                    *accr =
                        _mm256_add_epi32(*accr, block_madd(a0, a1, widen(wp), widen(wp.add(16))));
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out_row[j + r] = hsum_epi32(*accr) as f32 * combined_scale;
            }
            j += 4;
        }
        super::scalar_uniform_tail_q8(a_row, combined_scale, w, j, &mut out_row[j..]);
    }

    /// Batched horizontal reduction: the four lane-wise i32 sums of four
    /// accumulators, as one `__m128i`. Integer addition is associative, so
    /// the totals are bit-identical to four [`hsum_epi32`] calls at a
    /// third of the instruction count.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum4_epi32(v0: __m256i, v1: __m256i, v2: __m256i, v3: __m256i) -> __m128i {
        let t = _mm256_hadd_epi32(_mm256_hadd_epi32(v0, v1), _mm256_hadd_epi32(v2, v3));
        _mm_add_epi32(_mm256_castsi256_si128(t), _mm256_extracti128_si256::<1>(t))
    }

    /// [`qgemm_row_q8_uniform`] with the block dot products computed by
    /// `maddubs` instead of sign-extension and `madd` — 32 MACs per
    /// multiply instruction and no port-5 `vpmovsxbw` pressure, the
    /// difference between matching the dense f32 FMA rate and doubling
    /// it. Per lane `maddubs(|a|, sign(w, a)) = |a|·(±w) = a·w`; exact
    /// only when [`maddubs_safe`](super::maddubs_safe) holds for `w`
    /// (`qgemm_rows` gates on the cached flag). Eight weight rows per
    /// pass share one activation load/abs, and the eight row totals
    /// reduce together through [`hsum4_epi32`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn qgemm_row_q8_uniform_maddubs(
        a_row: &[i8],
        combined_scale: f32,
        w: &QTensor,
        out_row: &mut [f32],
    ) {
        let bpr = w.blocks_per_row();
        let n = out_row.len();
        let codes = w.codes.as_ptr();
        let ones = _mm256_set1_epi16(1);
        let scale = _mm256_set1_ps(combined_scale);
        let row_stride = bpr * QK;
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = [_mm256_setzero_si256(); 8];
            let tile = codes.add(j * row_stride);
            for b in 0..bpr {
                let av = _mm256_loadu_si256(a_row.as_ptr().add(b * QK).cast());
                let aabs = _mm256_abs_epi8(av);
                let wb = tile.add(b * QK);
                for (r, accr) in acc.iter_mut().enumerate() {
                    let wv = _mm256_loadu_si256(wb.add(r * row_stride).cast());
                    let prods = _mm256_maddubs_epi16(aabs, _mm256_sign_epi8(wv, av));
                    *accr = _mm256_add_epi32(*accr, _mm256_madd_epi16(prods, ones));
                }
            }
            let lo = hsum4_epi32(acc[0], acc[1], acc[2], acc[3]);
            let hi = hsum4_epi32(acc[4], acc[5], acc[6], acc[7]);
            let sums = _mm256_set_m128i(hi, lo);
            let vals = _mm256_mul_ps(_mm256_cvtepi32_ps(sums), scale);
            _mm256_storeu_ps(out_row.as_mut_ptr().add(j), vals);
            j += 8;
        }
        while j + 4 <= n {
            let mut acc = [_mm256_setzero_si256(); 4];
            let tile = codes.add(j * row_stride);
            for b in 0..bpr {
                let av = _mm256_loadu_si256(a_row.as_ptr().add(b * QK).cast());
                let aabs = _mm256_abs_epi8(av);
                let wb = tile.add(b * QK);
                for (r, accr) in acc.iter_mut().enumerate() {
                    let wv = _mm256_loadu_si256(wb.add(r * row_stride).cast());
                    let prods = _mm256_maddubs_epi16(aabs, _mm256_sign_epi8(wv, av));
                    *accr = _mm256_add_epi32(*accr, _mm256_madd_epi16(prods, ones));
                }
            }
            let sums = hsum4_epi32(acc[0], acc[1], acc[2], acc[3]);
            let vals = _mm_mul_ps(_mm_cvtepi32_ps(sums), _mm256_castps256_ps128(scale));
            _mm_storeu_ps(out_row.as_mut_ptr().add(j), vals);
            j += 4;
        }
        super::scalar_uniform_tail_q8(a_row, combined_scale, w, j, &mut out_row[j..]);
    }

    /// Unpacks one 16-byte Q4 payload into two sign-extended i16 vectors
    /// (values 0..16 and 16..32 of the block).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn unpack_q4(ptr: *const u8) -> (__m256i, __m256i) {
        let bytes = _mm_loadu_si128(ptr.cast());
        let mask = _mm_set1_epi8(0x0F);
        let eight = _mm_set1_epi8(8);
        // 4-bit two's complement → i8: (nibble ^ 8) - 8.
        let lo = _mm_sub_epi8(_mm_xor_si128(_mm_and_si128(bytes, mask), eight), eight);
        let hi = _mm_sub_epi8(
            _mm_xor_si128(_mm_and_si128(_mm_srli_epi16::<4>(bytes), mask), eight),
            eight,
        );
        (_mm256_cvtepi8_epi16(lo), _mm256_cvtepi8_epi16(hi))
    }

    /// One output row of the Q4 GEMM under a uniform block scale, via
    /// `maddubs`. The two's-complement nibble `nib` maps to its code as
    /// `(nib ^ 8) - 8`, so `m = nib ^ 8` is an *unsigned* value in
    /// `[0, 15]` with `w = m - 8`: `Σ w·a = Σ m·a - 8·Σa`. `maddubs(m, a)`
    /// takes `m` as its unsigned operand and the activations signed — no
    /// negation anywhere, so unlike Q8 this is exact for every code
    /// (pair sums are bounded by `2·15·128`, far inside i16). The `8·Σa`
    /// correction costs one scalar pass per activation row, amortised
    /// over all `n` outputs.
    #[target_feature(enable = "avx2")]
    pub unsafe fn qgemm_row_q4_uniform(
        a_row: &[i8],
        combined_scale: f32,
        w: &QTensor,
        out_row: &mut [f32],
    ) {
        let bpr = w.blocks_per_row();
        let half = QK / 2;
        let n = out_row.len();
        let codes = w.codes.as_ptr();
        let ones = _mm256_set1_epi16(1);
        let mask = _mm_set1_epi8(0x0F);
        let flip = _mm256_set1_epi8(8);
        let scale = _mm256_set1_ps(combined_scale);
        let a_sum8 = _mm256_set1_epi32(8 * a_row.iter().map(|&v| i32::from(v)).sum::<i32>());
        let row_stride = bpr * half;
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = [_mm256_setzero_si256(); 8];
            let tile = codes.add(j * row_stride);
            for b in 0..bpr {
                let av = _mm256_loadu_si256(a_row.as_ptr().add(b * QK).cast());
                let wb = tile.add(b * half);
                for (r, accr) in acc.iter_mut().enumerate() {
                    let bytes = _mm_loadu_si128(wb.add(r * row_stride).cast());
                    let lo = _mm_and_si128(bytes, mask);
                    let hi = _mm_and_si128(_mm_srli_epi16::<4>(bytes), mask);
                    let m = _mm256_xor_si256(_mm256_set_m128i(hi, lo), flip);
                    let prods = _mm256_maddubs_epi16(m, av);
                    *accr = _mm256_add_epi32(*accr, _mm256_madd_epi16(prods, ones));
                }
            }
            let lo4 = hsum4_epi32(acc[0], acc[1], acc[2], acc[3]);
            let hi4 = hsum4_epi32(acc[4], acc[5], acc[6], acc[7]);
            let sums = _mm256_sub_epi32(_mm256_set_m128i(hi4, lo4), a_sum8);
            let vals = _mm256_mul_ps(_mm256_cvtepi32_ps(sums), scale);
            _mm256_storeu_ps(out_row.as_mut_ptr().add(j), vals);
            j += 8;
        }
        while j + 4 <= n {
            let mut acc = [_mm256_setzero_si256(); 4];
            let tile = codes.add(j * row_stride);
            for b in 0..bpr {
                let av = _mm256_loadu_si256(a_row.as_ptr().add(b * QK).cast());
                let wb = tile.add(b * half);
                for (r, accr) in acc.iter_mut().enumerate() {
                    let bytes = _mm_loadu_si128(wb.add(r * row_stride).cast());
                    let lo = _mm_and_si128(bytes, mask);
                    let hi = _mm_and_si128(_mm_srli_epi16::<4>(bytes), mask);
                    let m = _mm256_xor_si256(_mm256_set_m128i(hi, lo), flip);
                    let prods = _mm256_maddubs_epi16(m, av);
                    *accr = _mm256_add_epi32(*accr, _mm256_madd_epi16(prods, ones));
                }
            }
            let sums = _mm_sub_epi32(
                hsum4_epi32(acc[0], acc[1], acc[2], acc[3]),
                _mm256_castsi256_si128(a_sum8),
            );
            let vals = _mm_mul_ps(_mm_cvtepi32_ps(sums), _mm256_castps256_ps128(scale));
            _mm_storeu_ps(out_row.as_mut_ptr().add(j), vals);
            j += 4;
        }
        super::scalar_uniform_tail_q4(a_row, combined_scale, w, j, &mut out_row[j..]);
    }

    /// One output row of the Q4 GEMM (weights unpacked from nibbles on the
    /// fly, fused with the same per-block dequant as Q8).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn qgemm_row_q4(a_row: &[i8], a_scale: f32, w: &QTensor, out_row: &mut [f32]) {
        let bpr = w.blocks_per_row();
        let half = QK / 2;
        let n = out_row.len();
        let codes = w.codes.as_ptr();
        let mut j = 0;
        while j + 4 <= n {
            let mut acc = [_mm256_setzero_ps(); 4];
            for b in 0..bpr {
                let ap = a_row.as_ptr().add(b * QK).cast::<u8>();
                let a0 = widen(ap);
                let a1 = widen(ap.add(16));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let (w0, w1) = unpack_q4(codes.add(((j + r) * bpr + b) * half));
                    let sums = block_madd(a0, a1, w0, w1);
                    let s = _mm256_set1_ps(*w.scales.get_unchecked((j + r) * bpr + b) * a_scale);
                    *accr = _mm256_fmadd_ps(_mm256_cvtepi32_ps(sums), s, *accr);
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out_row[j + r] = hsum_ps(*accr);
            }
            j += 4;
        }
        if j < n {
            super::scalar_qgemm_row(a_row, a_scale, w, j, &mut out_row[j..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::KernelBackend;

    fn q8() -> QFormat {
        QFormat::for_bitwidth(8).unwrap()
    }

    fn q4() -> QFormat {
        QFormat::for_bitwidth(4).unwrap()
    }

    /// Deterministic pseudo-random f32s in [-range, range].
    fn values(seed: u64, n: usize, range: f32) -> Vec<f32> {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = ((state >> 33) as f64) / ((1u64 << 31) as f64); // [0, 2)
                ((u - 1.0) * range as f64) as f32
            })
            .collect()
    }

    #[test]
    fn kind_schedule_matches_paper_bitwidths() {
        assert_eq!(QuantKind::for_format(q4()), Some(QuantKind::Q4));
        assert_eq!(QuantKind::for_format(q8()), Some(QuantKind::Q8));
        assert_eq!(
            QuantKind::for_format(QFormat::for_bitwidth(5).unwrap()),
            Some(QuantKind::Q8)
        );
        assert_eq!(
            QuantKind::for_format(QFormat::for_bitwidth(16).unwrap()),
            None
        );
        assert!(matches!(
            QTensor::quantize(&[0.0; 4], &[2, 2], QFormat::for_bitwidth(16).unwrap()),
            Err(TensorError::Unsupported(_))
        ));
    }

    #[test]
    fn pack_unpack_bit_exact_vs_qformat() {
        for fmt in [q4(), q8()] {
            let data = values(7, 5 * 77, 3.0); // cols 77: exercises padding
            let qt = QTensor::quantize(&data, &[5, 7, 11], fmt).unwrap();
            let back = qt.dequantize();
            for (i, (&orig, &deq)) in data.iter().zip(&back).enumerate() {
                let expect = fmt.quantize(orig);
                assert_eq!(
                    expect.to_bits(),
                    deq.to_bits(),
                    "{fmt} element {i}: {orig} -> {deq} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn packed_bytes_accounting() {
        let qt = QTensor::quantize(&[0.5; 64 * 100], &[64, 100], q8()).unwrap();
        // 100 cols → 4 blocks/row.
        assert_eq!(qt.blocks_per_row(), 4);
        assert_eq!(qt.packed_bytes(), 64 * 4 * QuantKind::Q8.block_bytes());
        let qt4 = QTensor::quantize(&[0.5; 64 * 100], &[64, 100], q4()).unwrap();
        assert_eq!(qt4.packed_bytes(), 64 * 4 * QuantKind::Q4.block_bytes());
        assert!(qt4.packed_bytes() * 3 < 64 * 100 * 4);
    }

    #[test]
    fn activation_encoding_matches_encode_on_both_backends() {
        let data = values(3, 2 * 50, 4.0);
        for fmt in [q4(), q8()] {
            let scalar = quantize_activations(KernelBackend::Scalar, &data, 2, 50, fmt).unwrap();
            let simd = quantize_activations(KernelBackend::Simd, &data, 2, 50, fmt).unwrap();
            assert_eq!(scalar.codes(), simd.codes());
            for r in 0..2 {
                for c in 0..50 {
                    assert_eq!(
                        scalar.codes()[r * scalar.blocks_per_row() * QK + c],
                        fmt.encode(data[r * 50 + c]) as i8
                    );
                }
            }
        }
    }

    #[test]
    fn qmatmul_matches_f64_reference() {
        for fmt in [q4(), q8()] {
            let (m, k, n) = (5, 70, 9);
            let a = values(11, m * k, 2.0);
            let wdata = values(13, n * k, 1.5);
            let w = QTensor::quantize(&wdata, &[n, k], fmt).unwrap();
            let wq = w.dequantize();
            for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
                let act = quantize_activations(backend, &a, m, k, fmt).unwrap();
                let mut out = vec![0.0f32; m * n];
                qmatmul(backend, &act, &w, &mut out).unwrap();
                for i in 0..m {
                    for j in 0..n {
                        let mut reference = 0.0f64;
                        for l in 0..k {
                            reference += fmt.quantize(a[i * k + l]) as f64 * wq[j * k + l] as f64;
                        }
                        let got = out[i * n + j] as f64;
                        assert!(
                            (got - reference).abs() <= 1e-4 * reference.abs().max(1.0),
                            "{fmt} {backend:?} ({i},{j}): {got} vs {reference}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_and_simd_rows_agree_to_tolerance() {
        let (m, k, n) = (4, 130, 23); // odd n exercises the 4-row tail
        let a = values(21, m * k, 2.0);
        let wdata = values(22, n * k, 2.0);
        for fmt in [q4(), q8()] {
            let w = QTensor::quantize(&wdata, &[n, k], fmt).unwrap();
            let mut scalar = vec![0.0f32; m * n];
            let mut simd = vec![0.0f32; m * n];
            let act = quantize_activations(KernelBackend::Scalar, &a, m, k, fmt).unwrap();
            qmatmul(KernelBackend::Scalar, &act, &w, &mut scalar).unwrap();
            qmatmul(KernelBackend::Simd, &act, &w, &mut simd).unwrap();
            let num: f64 = scalar
                .iter()
                .zip(&simd)
                .map(|(&s, &v)| ((s - v) as f64).powi(2))
                .sum();
            let den: f64 = scalar.iter().map(|&s| (s as f64).powi(2)).sum();
            assert!(num.sqrt() <= 1e-5 * den.sqrt().max(1e-12), "{fmt} rel-L2");
        }
    }

    #[test]
    fn qmatmul_shape_validation() {
        let w = QTensor::quantize(&[0.25; 6 * 8], &[6, 8], q8()).unwrap();
        let act = quantize_activations(KernelBackend::Scalar, &[0.5; 2 * 7], 2, 7, q8()).unwrap();
        let mut out = vec![0.0; 12];
        assert!(matches!(
            qmatmul(KernelBackend::Scalar, &act, &w, &mut out),
            Err(TensorError::ShapeMismatch { .. })
        ));
        let act = quantize_activations(KernelBackend::Scalar, &[0.5; 2 * 8], 2, 8, q8()).unwrap();
        let mut short = vec![0.0; 5];
        assert!(matches!(
            qmatmul(KernelBackend::Scalar, &act, &w, &mut short),
            Err(TensorError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn from_parts_validates_lengths() {
        let qt = QTensor::quantize(&[0.5; 4 * 40], &[4, 40], q8()).unwrap();
        let rt = QTensor::from_parts(
            qt.kind(),
            qt.shape().to_vec(),
            qt.format(),
            qt.scales().to_vec(),
            qt.codes().to_vec(),
        )
        .unwrap();
        assert_eq!(rt, qt);
        assert!(QTensor::from_parts(
            QuantKind::Q4, // q8 codes do not fit q4 blocks
            qt.shape().to_vec(),
            qt.format(),
            qt.scales().to_vec(),
            qt.codes().to_vec(),
        )
        .is_err());
        assert!(QTensor::from_parts(
            qt.kind(),
            vec![4, 70], // 3 blocks/row: scale + code lengths no longer match
            qt.format(),
            qt.scales().to_vec(),
            qt.codes().to_vec(),
        )
        .is_err());
    }

    #[test]
    fn widened_q4_is_code_identical_and_maddubs_safe() {
        let data = values(41, 6 * 77, 2.0); // cols 77: exercises padding
        let qt = QTensor::quantize(&data, &[6, 77], q4()).unwrap();
        let wide = qt.widen_to_q8();
        assert_eq!(wide.kind(), QuantKind::Q8);
        assert_eq!(wide.shape(), qt.shape());
        assert_eq!(wide.format(), qt.format());
        assert_eq!(wide.scales(), qt.scales());
        assert!(wide.uniform_scale().is_some());
        for r in 0..6 {
            for c in 0..77 {
                assert_eq!(wide.code(r, c), qt.code(r, c), "code ({r},{c})");
            }
        }
        // Same GEMM result, bitwise, on both backends.
        let a = values(43, 3 * 77, 2.0);
        for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
            let act = quantize_activations(backend, &a, 3, 77, q4()).unwrap();
            let mut narrow = vec![0.0f32; 3 * 6];
            let mut widened = vec![0.0f32; 3 * 6];
            qmatmul(backend, &act, &qt, &mut narrow).unwrap();
            qmatmul(backend, &act, &wide, &mut widened).unwrap();
            for (i, (x, y)) in narrow.iter().zip(&widened).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{backend:?} out[{i}]");
            }
        }
    }

    #[test]
    fn quantize_into_matches_allocating_path_and_reuses_storage() {
        let data = values(47, 4 * 50, 3.0);
        for fmt in [q4(), q8()] {
            let fresh = quantize_activations(KernelBackend::Scalar, &data, 4, 50, fmt).unwrap();
            let mut buf = QActivations::with_format(fmt).unwrap();
            quantize_activations_into(KernelBackend::Scalar, &data, 4, 50, fmt, &mut buf).unwrap();
            assert_eq!(buf.codes(), fresh.codes());
            assert_eq!(buf.scale(), fresh.scale());
            let ptr = buf.codes().as_ptr();
            // Smaller batch reuses the grown allocation, stale tail cleared.
            quantize_activations_into(KernelBackend::Scalar, &data[..2 * 50], 2, 50, fmt, &mut buf)
                .unwrap();
            assert_eq!(buf.codes().as_ptr(), ptr);
            assert_eq!(buf.rows(), 2);
            // Mismatched format is rejected rather than silently re-scaled.
            let other = if fmt == q4() { q8() } else { q4() };
            assert!(matches!(
                quantize_activations_into(KernelBackend::Scalar, &data, 4, 50, other, &mut buf),
                Err(TensorError::Unsupported(_))
            ));
        }
    }

    #[test]
    fn parallel_band_path_matches_serial() {
        // Big enough to cross PARALLEL_THRESHOLD with the serial result
        // computed under a thread cap of 1.
        let (m, k, n) = (64, 64, 1024);
        let a = values(31, m * k, 1.0);
        let wdata = values(32, n * k, 1.0);
        let w = QTensor::quantize(&wdata, &[n, k], q8()).unwrap();
        let act = quantize_activations(KernelBackend::Scalar, &a, m, k, q8()).unwrap();
        let mut serial = vec![0.0f32; m * n];
        pool::with_thread_cap(1, || {
            qmatmul(KernelBackend::Scalar, &act, &w, &mut serial).unwrap();
        });
        let mut parallel = vec![0.0f32; m * n];
        qmatmul(KernelBackend::Scalar, &act, &w, &mut parallel).unwrap();
        assert_eq!(serial, parallel);
    }
}
