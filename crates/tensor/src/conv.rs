//! `im2col`/`col2im` lowering for 2-D convolution.
//!
//! Convolution layers in `advcomp-nn` lower to matrix multiplication:
//! an NCHW input batch is unrolled into a `[n·oh·ow, c·kh·kw]` patch matrix
//! ([`im2col`]), multiplied against the `[c·kh·kw, oc]` reshaped kernel, and
//! the backward pass folds patch gradients back with [`col2im`]. This is the
//! standard GEMM formulation used by most CPU deep-learning runtimes.

use crate::{Result, Tensor, TensorError};

/// Static geometry of a 2-D convolution or pooling window over NCHW input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Symmetric zero padding applied to all four edges.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Creates a square-kernel geometry.
    pub fn square(in_channels: usize, in_hw: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dGeometry {
            in_channels,
            in_h: in_hw,
            in_w: in_hw,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        }
    }

    /// Validates the geometry and returns `(out_h, out_w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when stride is zero, a kernel
    /// dimension is zero, or the padded input is smaller than the kernel.
    pub fn output_hw(&self) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry("stride must be >= 1".into()));
        }
        if self.kernel_h == 0 || self.kernel_w == 0 || self.in_channels == 0 {
            return Err(TensorError::InvalidGeometry(
                "kernel dims and channels must be >= 1".into(),
            ));
        }
        let padded_h = self.in_h + 2 * self.padding;
        let padded_w = self.in_w + 2 * self.padding;
        if padded_h < self.kernel_h || padded_w < self.kernel_w {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kernel_h, self.kernel_w, padded_h, padded_w
            )));
        }
        Ok((
            (padded_h - self.kernel_h) / self.stride + 1,
            (padded_w - self.kernel_w) / self.stride + 1,
        ))
    }

    /// Number of elements in one unrolled patch: `c · kh · kw`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }
}

/// Unrolls an NCHW batch into a patch matrix of shape `[n·oh·ow, c·kh·kw]`.
///
/// Row `(b, oy, ox)` contains the receptive field of output pixel `(oy, ox)`
/// in sample `b`, channels-major then kernel-row-major. Out-of-bounds
/// (padding) positions read as zero.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless `input` is 4-D, a
/// [`TensorError::ShapeMismatch`] when channel/height/width disagree with
/// `geom`, or geometry errors from [`Conv2dGeometry::output_hw`].
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    if input.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.ndim(),
            op: "im2col",
        });
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    if c != geom.in_channels || h != geom.in_h || w != geom.in_w {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_vec(),
            rhs: vec![n, geom.in_channels, geom.in_h, geom.in_w],
            op: "im2col",
        });
    }
    let (oh, ow) = geom.output_hw()?;
    let patch = geom.patch_len();
    let mut out = Tensor::zeros(&[n * oh * ow, patch]);
    let data = input.data();
    let od = out.data_mut();
    let pad = geom.padding as isize;
    for b in 0..n {
        for oy in 0..oh {
            let iy0 = (oy * geom.stride) as isize - pad;
            for ox in 0..ow {
                let ix0 = (ox * geom.stride) as isize - pad;
                let row = ((b * oh + oy) * ow + ox) * patch;
                for ch in 0..c {
                    let ch_base = (b * c + ch) * h * w;
                    for ky in 0..geom.kernel_h {
                        let iy = iy0 + ky as isize;
                        let dst = row + (ch * geom.kernel_h + ky) * geom.kernel_w;
                        if iy < 0 || iy >= h as isize {
                            continue; // padding row: stays zero
                        }
                        let src_row = ch_base + iy as usize * w;
                        for kx in 0..geom.kernel_w {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            od[dst + kx] = data[src_row + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Folds a patch-matrix gradient back into an NCHW input gradient —
/// the adjoint of [`im2col`]. Overlapping patches accumulate.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not have shape
/// `[n·oh·ow, c·kh·kw]` for the given geometry and batch size.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry, batch: usize) -> Result<Tensor> {
    let (oh, ow) = geom.output_hw()?;
    let patch = geom.patch_len();
    if cols.shape() != [batch * oh * ow, patch] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.shape().to_vec(),
            rhs: vec![batch * oh * ow, patch],
            op: "col2im",
        });
    }
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let mut out = Tensor::zeros(&[batch, c, h, w]);
    let od = out.data_mut();
    let data = cols.data();
    let pad = geom.padding as isize;
    for b in 0..batch {
        for oy in 0..oh {
            let iy0 = (oy * geom.stride) as isize - pad;
            for ox in 0..ow {
                let ix0 = (ox * geom.stride) as isize - pad;
                let row = ((b * oh + oy) * ow + ox) * patch;
                for ch in 0..c {
                    let ch_base = (b * c + ch) * h * w;
                    for ky in 0..geom.kernel_h {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst_row = ch_base + iy as usize * w;
                        let src = row + (ch * geom.kernel_h + ky) * geom.kernel_w;
                        for kx in 0..geom.kernel_w {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            od[dst_row + ix as usize] += data[src + kx];
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_hw_basic() {
        let g = Conv2dGeometry::square(1, 5, 3, 1, 0);
        assert_eq!(g.output_hw().unwrap(), (3, 3));
        let g = Conv2dGeometry::square(1, 5, 3, 1, 1);
        assert_eq!(g.output_hw().unwrap(), (5, 5));
        let g = Conv2dGeometry::square(1, 6, 2, 2, 0);
        assert_eq!(g.output_hw().unwrap(), (3, 3));
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(Conv2dGeometry::square(1, 5, 3, 0, 0).output_hw().is_err());
        assert!(Conv2dGeometry::square(1, 2, 3, 1, 0).output_hw().is_err());
        assert!(Conv2dGeometry::square(0, 5, 3, 1, 0).output_hw().is_err());
        // Padding can rescue a small input.
        assert!(Conv2dGeometry::square(1, 2, 3, 1, 1).output_hw().is_ok());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is just a reshape.
        let x = Tensor::new(&[1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let g = Conv2dGeometry::square(1, 2, 1, 1, 0);
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[4, 1]);
        assert_eq!(cols.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn im2col_3x3_patch_layout() {
        let x = Tensor::new(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let g = Conv2dGeometry::square(1, 3, 3, 1, 0);
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[1, 9]);
        assert_eq!(cols.data(), &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
    }

    #[test]
    fn im2col_padding_zeros() {
        let x = Tensor::new(&[1, 1, 1, 1], vec![5.0]).unwrap();
        let g = Conv2dGeometry::square(1, 1, 3, 1, 1);
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[1, 9]);
        // Only the centre of the 3x3 patch is inside the image.
        let mut expected = vec![0.0; 9];
        expected[4] = 5.0;
        assert_eq!(cols.data(), expected.as_slice());
    }

    #[test]
    fn im2col_multi_channel_order() {
        // Two channels: patch must be channel-major.
        let x = Tensor::new(&[1, 2, 1, 1], vec![1.0, 2.0]).unwrap();
        let g = Conv2dGeometry::square(2, 1, 1, 1, 0);
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.data(), &[1.0, 2.0]);
    }

    #[test]
    fn im2col_shape_validation() {
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let g = Conv2dGeometry::square(2, 4, 3, 1, 0);
        assert!(im2col(&x, &g).is_err());
        assert!(im2col(&Tensor::zeros(&[4, 4]), &g).is_err());
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // 2x2 input, 1x1 kernel stride 1: col2im is the inverse reshape.
        let g = Conv2dGeometry::square(1, 2, 1, 1, 0);
        let cols = Tensor::new(&[4, 1], vec![1., 2., 3., 4.]).unwrap();
        let x = col2im(&cols, &g, 1).unwrap();
        assert_eq!(x.shape(), &[1, 1, 2, 2]);
        assert_eq!(x.data(), &[1., 2., 3., 4.]);

        // Overlapping 2x2 kernels on 3x3 input: centre pixel appears in all
        // four patches and must accumulate.
        let g = Conv2dGeometry::square(1, 3, 2, 1, 0);
        let cols = Tensor::ones(&[4, 4]);
        let x = col2im(&cols, &g, 1).unwrap();
        assert_eq!(x.get(&[0, 0, 1, 1]).unwrap(), 4.0);
        assert_eq!(x.get(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(x.get(&[0, 0, 0, 1]).unwrap(), 2.0);
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
        // checked on random data.
        use crate::Init;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = Conv2dGeometry::square(2, 5, 3, 2, 1);
        let x = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[2, 2, 5, 5], &mut rng);
        let (oh, ow) = g.output_hw().unwrap();
        let y = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[2 * oh * ow, g.patch_len()], &mut rng);
        let ax = im2col(&x, &g).unwrap();
        let aty = col2im(&y, &g, 2).unwrap();
        let lhs: f32 = ax.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_validates_shape() {
        let g = Conv2dGeometry::square(1, 2, 1, 1, 0);
        assert!(col2im(&Tensor::zeros(&[3, 1]), &g, 1).is_err());
    }
}
