//! `im2col`/`col2im` lowering for 2-D convolution.
//!
//! Convolution layers in `advcomp-nn` lower to matrix multiplication:
//! an NCHW input batch is unrolled into a `[n·oh·ow, c·kh·kw]` patch matrix
//! ([`im2col`]), multiplied against the `[c·kh·kw, oc]` reshaped kernel, and
//! the backward pass folds patch gradients back with [`col2im`]. This is the
//! standard GEMM formulation used by most CPU deep-learning runtimes.
//!
//! Every transform here touches each batch sample independently, and each
//! sample occupies a contiguous region of the output buffer, so all of them
//! parallelise over the batch on the persistent worker pool
//! ([`crate::pool`]). The layer-facing [`im2col_into`] variant additionally
//! reuses a caller-owned scratch tensor, so the (large) patch matrix is
//! allocated once per layer rather than once per training/attack step.

use crate::{pool, Result, Tensor, TensorError};

/// Static geometry of a 2-D convolution or pooling window over NCHW input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Symmetric zero padding applied to all four edges.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Creates a square-kernel geometry.
    pub fn square(
        in_channels: usize,
        in_hw: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Conv2dGeometry {
            in_channels,
            in_h: in_hw,
            in_w: in_hw,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        }
    }

    /// Validates the geometry and returns `(out_h, out_w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when stride is zero, a kernel
    /// dimension is zero, or the padded input is smaller than the kernel.
    pub fn output_hw(&self) -> Result<(usize, usize)> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry("stride must be >= 1".into()));
        }
        if self.kernel_h == 0 || self.kernel_w == 0 || self.in_channels == 0 {
            return Err(TensorError::InvalidGeometry(
                "kernel dims and channels must be >= 1".into(),
            ));
        }
        let padded_h = self.in_h + 2 * self.padding;
        let padded_w = self.in_w + 2 * self.padding;
        if padded_h < self.kernel_h || padded_w < self.kernel_w {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kernel_h, self.kernel_w, padded_h, padded_w
            )));
        }
        Ok((
            (padded_h - self.kernel_h) / self.stride + 1,
            (padded_w - self.kernel_w) / self.stride + 1,
        ))
    }

    /// Number of elements in one unrolled patch: `c · kh · kw`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }
}

/// Fills the patch rows of one batch sample. `chunk` is that sample's
/// contiguous `oh·ow·patch` slice of the column matrix, already zeroed.
fn im2col_sample(
    input: &[f32],
    chunk: &mut [f32],
    b: usize,
    geom: &Conv2dGeometry,
    oh: usize,
    ow: usize,
) {
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let patch = geom.patch_len();
    let pad = geom.padding as isize;
    for oy in 0..oh {
        let iy0 = (oy * geom.stride) as isize - pad;
        for ox in 0..ow {
            let ix0 = (ox * geom.stride) as isize - pad;
            let row = (oy * ow + ox) * patch;
            for ch in 0..c {
                let ch_base = (b * c + ch) * h * w;
                for ky in 0..geom.kernel_h {
                    let iy = iy0 + ky as isize;
                    let dst = row + (ch * geom.kernel_h + ky) * geom.kernel_w;
                    if iy < 0 || iy >= h as isize {
                        continue; // padding row: stays zero
                    }
                    let src_row = ch_base + iy as usize * w;
                    for kx in 0..geom.kernel_w {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        chunk[dst + kx] = input[src_row + ix as usize];
                    }
                }
            }
        }
    }
}

/// Unrolls an NCHW batch into a patch matrix of shape `[n·oh·ow, c·kh·kw]`.
///
/// Row `(b, oy, ox)` contains the receptive field of output pixel `(oy, ox)`
/// in sample `b`, channels-major then kernel-row-major. Out-of-bounds
/// (padding) positions read as zero. Samples are unrolled in parallel on the
/// worker pool.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless `input` is 4-D, a
/// [`TensorError::ShapeMismatch`] when channel/height/width disagree with
/// `geom`, or geometry errors from [`Conv2dGeometry::output_hw`].
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    let mut out = Tensor::default();
    im2col_into(input, geom, &mut out)?;
    Ok(out)
}

/// [`im2col`] into a caller-owned scratch tensor.
///
/// `out` is reshaped to `[n·oh·ow, c·kh·kw]`, reusing its allocation when
/// the element count already matches — convolution layers call this every
/// forward pass with a persistent buffer, eliminating the per-step
/// allocation of the largest intermediate in the network.
///
/// # Errors
///
/// Same conditions as [`im2col`]; on error `out` is left untouched.
pub fn im2col_into(input: &Tensor, geom: &Conv2dGeometry, out: &mut Tensor) -> Result<()> {
    if input.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.ndim(),
            op: "im2col",
        });
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    if c != geom.in_channels || h != geom.in_h || w != geom.in_w {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_vec(),
            rhs: vec![n, geom.in_channels, geom.in_h, geom.in_w],
            op: "im2col",
        });
    }
    let (oh, ow) = geom.output_hw()?;
    let patch = geom.patch_len();
    out.reset_scratch(&[n * oh * ow, patch]);
    let data = input.data();
    pool::for_each_chunk(out.data_mut(), oh * ow * patch, |b, chunk| {
        chunk.fill(0.0);
        im2col_sample(data, chunk, b, geom, oh, ow);
    });
    Ok(())
}

/// [`im2col`] over raw slices: `input` is an NCHW batch of `n` samples
/// matching `geom`, `out` the `n·oh·ow × patch` column matrix, fully
/// overwritten. Identical per-sample core and pool chunking as
/// [`im2col_into`] — the graph executor's arena-resident variant.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when either slice disagrees
/// with the geometry, or geometry errors from
/// [`Conv2dGeometry::output_hw`].
pub fn im2col_slice(input: &[f32], n: usize, geom: &Conv2dGeometry, out: &mut [f32]) -> Result<()> {
    let (oh, ow) = geom.output_hw()?;
    let patch = geom.patch_len();
    let in_len = n * geom.in_channels * geom.in_h * geom.in_w;
    if input.len() != in_len {
        return Err(TensorError::LengthMismatch {
            expected: in_len,
            actual: input.len(),
        });
    }
    if out.len() != n * oh * ow * patch {
        return Err(TensorError::LengthMismatch {
            expected: n * oh * ow * patch,
            actual: out.len(),
        });
    }
    pool::for_each_chunk(out, oh * ow * patch, |b, chunk| {
        chunk.fill(0.0);
        im2col_sample(input, chunk, b, geom, oh, ow);
    });
    Ok(())
}

/// Accumulates the patch gradients of one batch sample. `chunk` is that
/// sample's contiguous `c·h·w` slice of the input gradient.
fn col2im_sample(
    cols: &[f32],
    chunk: &mut [f32],
    b: usize,
    geom: &Conv2dGeometry,
    oh: usize,
    ow: usize,
) {
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let patch = geom.patch_len();
    let pad = geom.padding as isize;
    for oy in 0..oh {
        let iy0 = (oy * geom.stride) as isize - pad;
        for ox in 0..ow {
            let ix0 = (ox * geom.stride) as isize - pad;
            let row = ((b * oh + oy) * ow + ox) * patch;
            for ch in 0..c {
                let ch_base = ch * h * w;
                for ky in 0..geom.kernel_h {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = ch_base + iy as usize * w;
                    let src = row + (ch * geom.kernel_h + ky) * geom.kernel_w;
                    for kx in 0..geom.kernel_w {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        chunk[dst_row + ix as usize] += cols[src + kx];
                    }
                }
            }
        }
    }
}

/// Folds a patch-matrix gradient back into an NCHW input gradient —
/// the adjoint of [`im2col`]. Overlapping patches accumulate. Samples are
/// folded in parallel on the worker pool (patches never cross samples, so
/// the per-sample accumulations are independent).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not have shape
/// `[n·oh·ow, c·kh·kw]` for the given geometry and batch size.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry, batch: usize) -> Result<Tensor> {
    let (oh, ow) = geom.output_hw()?;
    let patch = geom.patch_len();
    if cols.shape() != [batch * oh * ow, patch] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.shape().to_vec(),
            rhs: vec![batch * oh * ow, patch],
            op: "col2im",
        });
    }
    let (c, h, w) = (geom.in_channels, geom.in_h, geom.in_w);
    let mut out = Tensor::zeros(&[batch, c, h, w]);
    let data = cols.data();
    pool::for_each_chunk(out.data_mut(), c * h * w, |b, chunk| {
        col2im_sample(data, chunk, b, geom, oh, ow);
    });
    Ok(out)
}

/// Reorders a `[n·oh·ow, oc]` GEMM output into NCHW `[n, oc, oh, ow]`,
/// one batch sample per pool task.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `rows` has shape
/// `[n·oh·ow, oc]`.
pub fn rows_to_nchw(rows: &Tensor, n: usize, oc: usize, oh: usize, ow: usize) -> Result<Tensor> {
    if rows.shape() != [n * oh * ow, oc] {
        return Err(TensorError::ShapeMismatch {
            lhs: rows.shape().to_vec(),
            rhs: vec![n * oh * ow, oc],
            op: "rows_to_nchw",
        });
    }
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let src = rows.data();
    pool::for_each_chunk(out.data_mut(), oc * oh * ow, |b, chunk| {
        for y in 0..oh {
            for x in 0..ow {
                let row = ((b * oh + y) * ow + x) * oc;
                for o in 0..oc {
                    chunk[(o * oh + y) * ow + x] = src[row + o];
                }
            }
        }
    });
    Ok(out)
}

/// [`rows_to_nchw`] over raw slices: reorders `n·oh·ow × oc` GEMM rows
/// into an NCHW `n × oc × oh × ow` destination, fully overwritten. Same
/// per-sample transpose and pool chunking as the `Tensor` variant.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when either slice disagrees
/// with `n·oc·oh·ow`.
pub fn rows_to_nchw_slice(
    rows: &[f32],
    n: usize,
    oc: usize,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) -> Result<()> {
    let len = n * oc * oh * ow;
    if rows.len() != len {
        return Err(TensorError::LengthMismatch {
            expected: len,
            actual: rows.len(),
        });
    }
    if out.len() != len {
        return Err(TensorError::LengthMismatch {
            expected: len,
            actual: out.len(),
        });
    }
    pool::for_each_chunk(out, oc * oh * ow, |b, chunk| {
        for y in 0..oh {
            for x in 0..ow {
                let row = ((b * oh + y) * ow + x) * oc;
                for o in 0..oc {
                    chunk[(o * oh + y) * ow + x] = rows[row + o];
                }
            }
        }
    });
    Ok(())
}

/// Inverse of [`rows_to_nchw`]: NCHW tensor back to GEMM row layout,
/// one batch sample per pool task.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `t` has shape
/// `[n, oc, oh, ow]`.
pub fn nchw_to_rows(t: &Tensor, n: usize, oc: usize, oh: usize, ow: usize) -> Result<Tensor> {
    if t.shape() != [n, oc, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            lhs: t.shape().to_vec(),
            rhs: vec![n, oc, oh, ow],
            op: "nchw_to_rows",
        });
    }
    let mut out = Tensor::zeros(&[n * oh * ow, oc]);
    let src = t.data();
    pool::for_each_chunk(out.data_mut(), oh * ow * oc, |b, chunk| {
        for o in 0..oc {
            for y in 0..oh {
                for x in 0..ow {
                    chunk[(y * ow + x) * oc + o] = src[((b * oc + o) * oh + y) * ow + x];
                }
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_hw_basic() {
        let g = Conv2dGeometry::square(1, 5, 3, 1, 0);
        assert_eq!(g.output_hw().unwrap(), (3, 3));
        let g = Conv2dGeometry::square(1, 5, 3, 1, 1);
        assert_eq!(g.output_hw().unwrap(), (5, 5));
        let g = Conv2dGeometry::square(1, 6, 2, 2, 0);
        assert_eq!(g.output_hw().unwrap(), (3, 3));
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(Conv2dGeometry::square(1, 5, 3, 0, 0).output_hw().is_err());
        assert!(Conv2dGeometry::square(1, 2, 3, 1, 0).output_hw().is_err());
        assert!(Conv2dGeometry::square(0, 5, 3, 1, 0).output_hw().is_err());
        // Padding can rescue a small input.
        assert!(Conv2dGeometry::square(1, 2, 3, 1, 1).output_hw().is_ok());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is just a reshape.
        let x = Tensor::new(&[1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let g = Conv2dGeometry::square(1, 2, 1, 1, 0);
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[4, 1]);
        assert_eq!(cols.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn im2col_3x3_patch_layout() {
        let x = Tensor::new(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let g = Conv2dGeometry::square(1, 3, 3, 1, 0);
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[1, 9]);
        assert_eq!(cols.data(), &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
    }

    #[test]
    fn im2col_padding_zeros() {
        let x = Tensor::new(&[1, 1, 1, 1], vec![5.0]).unwrap();
        let g = Conv2dGeometry::square(1, 1, 3, 1, 1);
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.shape(), &[1, 9]);
        // Only the centre of the 3x3 patch is inside the image.
        let mut expected = vec![0.0; 9];
        expected[4] = 5.0;
        assert_eq!(cols.data(), expected.as_slice());
    }

    #[test]
    fn im2col_multi_channel_order() {
        // Two channels: patch must be channel-major.
        let x = Tensor::new(&[1, 2, 1, 1], vec![1.0, 2.0]).unwrap();
        let g = Conv2dGeometry::square(2, 1, 1, 1, 0);
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.data(), &[1.0, 2.0]);
    }

    #[test]
    fn im2col_shape_validation() {
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let g = Conv2dGeometry::square(2, 4, 3, 1, 0);
        assert!(im2col(&x, &g).is_err());
        assert!(im2col(&Tensor::zeros(&[4, 4]), &g).is_err());
    }

    #[test]
    fn im2col_into_reuses_and_overwrites_scratch() {
        let g = Conv2dGeometry::square(1, 2, 1, 1, 0);
        let x1 = Tensor::new(&[1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let x2 = Tensor::new(&[1, 1, 2, 2], vec![5., 6., 7., 8.]).unwrap();
        let mut scratch = Tensor::default();
        im2col_into(&x1, &g, &mut scratch).unwrap();
        assert_eq!(scratch.data(), &[1., 2., 3., 4.]);
        // Second call must fully overwrite, not blend with, the first.
        im2col_into(&x2, &g, &mut scratch).unwrap();
        assert_eq!(scratch.data(), &[5., 6., 7., 8.]);
        assert_eq!(scratch.shape(), &[4, 1]);
    }

    #[test]
    fn im2col_into_matches_im2col_across_batches() {
        use crate::Init;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = Conv2dGeometry::square(3, 6, 3, 1, 1);
        let mut scratch = Tensor::default();
        // Growing then shrinking batch sizes exercise the reallocation path.
        for &n in &[1usize, 4, 2] {
            let x = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[n, 3, 6, 6], &mut rng);
            let fresh = im2col(&x, &g).unwrap();
            im2col_into(&x, &g, &mut scratch).unwrap();
            assert_eq!(scratch.data(), fresh.data());
            assert_eq!(scratch.shape(), fresh.shape());
        }
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // 2x2 input, 1x1 kernel stride 1: col2im is the inverse reshape.
        let g = Conv2dGeometry::square(1, 2, 1, 1, 0);
        let cols = Tensor::new(&[4, 1], vec![1., 2., 3., 4.]).unwrap();
        let x = col2im(&cols, &g, 1).unwrap();
        assert_eq!(x.shape(), &[1, 1, 2, 2]);
        assert_eq!(x.data(), &[1., 2., 3., 4.]);

        // Overlapping 2x2 kernels on 3x3 input: centre pixel appears in all
        // four patches and must accumulate.
        let g = Conv2dGeometry::square(1, 3, 2, 1, 0);
        let cols = Tensor::ones(&[4, 4]);
        let x = col2im(&cols, &g, 1).unwrap();
        assert_eq!(x.get(&[0, 0, 1, 1]).unwrap(), 4.0);
        assert_eq!(x.get(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(x.get(&[0, 0, 0, 1]).unwrap(), 2.0);
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property,
        // checked on random data.
        use crate::Init;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = Conv2dGeometry::square(2, 5, 3, 2, 1);
        let x = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[2, 2, 5, 5], &mut rng);
        let (oh, ow) = g.output_hw().unwrap();
        let y = Init::Uniform { lo: -1.0, hi: 1.0 }.tensor(&[2 * oh * ow, g.patch_len()], &mut rng);
        let ax = im2col(&x, &g).unwrap();
        let aty = col2im(&y, &g, 2).unwrap();
        let lhs: f32 = ax.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_validates_shape() {
        let g = Conv2dGeometry::square(1, 2, 1, 1, 0);
        assert!(col2im(&Tensor::zeros(&[3, 1]), &g, 1).is_err());
    }

    #[test]
    fn rows_nchw_roundtrip() {
        let rows = Tensor::new(&[4, 3], (0..12).map(|v| v as f32).collect()).unwrap();
        let nchw = rows_to_nchw(&rows, 1, 3, 2, 2).unwrap();
        let back = nchw_to_rows(&nchw, 1, 3, 2, 2).unwrap();
        assert_eq!(back.data(), rows.data());
    }

    #[test]
    fn rows_to_nchw_layout_and_validation() {
        // Two samples, two channels, 1x2 spatial: row-major GEMM rows are
        // (b, y, x) ordered with channels innermost.
        let rows = Tensor::new(&[4, 2], vec![1., 10., 2., 20., 3., 30., 4., 40.]).unwrap();
        let nchw = rows_to_nchw(&rows, 2, 2, 1, 2).unwrap();
        assert_eq!(nchw.shape(), &[2, 2, 1, 2]);
        assert_eq!(nchw.data(), &[1., 2., 10., 20., 3., 4., 30., 40.]);
        assert!(rows_to_nchw(&rows, 2, 3, 1, 2).is_err());
        assert!(nchw_to_rows(&rows, 2, 2, 1, 2).is_err());
    }
}
