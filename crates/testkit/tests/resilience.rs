//! Fault-injection pillar: proves the resilience stack end to end.
//!
//! Each test injects a deterministic fault (via `advcomp_nn::faults`) into
//! a real tiny-scale experiment and asserts the documented recovery
//! contract, rather than trusting it:
//!
//! * checkpoint/resume — an interrupted sweep re-run resumes its completed
//!   points from the journal bit-identically, computing only the rest;
//! * retry + partial results — a permanently-failing point is recorded
//!   with its retry count while the rest of the sweep survives;
//! * numerical-health guards — a NaN injected into a training step rolls
//!   the model back and completes; one injected into an attack gradient
//!   keeps the last good iterate and surfaces in the run's health metadata.
//!
//! Every test holds a `FaultGuard` for its entire duration (the fault
//! registry is process-global), which also serialises these tests against
//! each other under the parallel test runner.

use advcomp_attacks::{AttackKind, NetKind};
use advcomp_core::resilience::RetryPolicy;
use advcomp_core::sweep::{RunConfig, TransferMatrix};
use advcomp_core::{ExperimentScale, TaskSetup, TrainedModel};
use advcomp_nn::faults::{install, FaultKind, FaultSpec};
use std::path::PathBuf;

fn serial_tiny() -> ExperimentScale {
    let mut scale = ExperimentScale::tiny();
    // Serial workers make fault-site hit indices deterministic.
    scale.max_workers = 1;
    scale
}

fn temp_run_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "advcomp-resilience-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn interrupted_sweep_resumes_bit_identically() {
    let scale = serial_tiny();
    let matrix =
        TransferMatrix::pruning(NetKind::LeNet5, vec![AttackKind::Ifgsm], &[1.0, 0.5, 0.3]);
    let run_dir = temp_run_dir("resume");
    let journalled = |dir: &PathBuf| RunConfig {
        seed: 7,
        run_dir: Some(dir.clone()),
        retry: RetryPolicy::none(),
    };

    // Phase 1: the run dies at point 2 (sticky panic from the third
    // `sweep_point` invocation onwards). Points 0 and 1 are journalled.
    let first = {
        let _g = install(vec![FaultSpec::sticky(FaultKind::Panic, "sweep_point", 2)]);
        matrix.run_resilient(&scale, &journalled(&run_dir)).unwrap()
    };
    assert_eq!((first.resumed, first.computed), (0, 3));
    assert_eq!(first.failed.len(), 1);
    assert_eq!(first.failed[0].x, 0.3);
    assert!(
        first.failed[0].error.contains("injected"),
        "{:?}",
        first.failed
    );

    // Phases 2-3 run fault-free; the empty install keeps exclusive hold of
    // the process-global registry.
    let _g = install(vec![]);

    // Phase 2: resume. The two completed points load from the journal; only
    // the previously-failed point is recomputed.
    let second = matrix.run_resilient(&scale, &journalled(&run_dir)).unwrap();
    assert_eq!((second.resumed, second.computed), (2, 1));
    assert!(second.failed.is_empty(), "{:?}", second.failed);

    // Reference: the same sweep, uninterrupted and unjournalled.
    let reference = matrix
        .run_resilient(
            &scale,
            &RunConfig {
                seed: 7,
                run_dir: None,
                retry: RetryPolicy::none(),
            },
        )
        .unwrap();
    // Bit-identical final output (SweepResult equality compares raw f64s):
    // resumed points must round-trip through the journal exactly.
    assert_eq!(second.results, reference.results);

    // Phase 3: a fully-journalled re-run resumes everything, recomputes
    // nothing, and still reproduces the reference output bit for bit.
    let third = matrix.run_resilient(&scale, &journalled(&run_dir)).unwrap();
    assert_eq!((third.resumed, third.computed), (3, 0));
    assert_eq!(third.results, reference.results);

    let _ = std::fs::remove_dir_all(&run_dir);
}

#[test]
fn permanently_failing_point_is_recorded_with_retry_count() {
    let scale = serial_tiny();
    // Every `sweep_point` invocation errors: both points fail all attempts.
    let _g = install(vec![FaultSpec::sticky(FaultKind::Error, "sweep_point", 0)]);
    let matrix = TransferMatrix::pruning(NetKind::LeNet5, vec![AttackKind::Ifgsm], &[1.0, 0.3]);
    let run = matrix
        .run_resilient(
            &scale,
            &RunConfig {
                seed: 7,
                run_dir: None,
                retry: RetryPolicy {
                    max_attempts: 3,
                    backoff_ms: 0,
                },
            },
        )
        .unwrap();
    assert_eq!(run.computed, 2);
    assert_eq!(run.failed.len(), 2);
    for f in &run.failed {
        assert_eq!(f.attempts, 3, "{f:?}");
        assert!(f.error.contains("injected"), "{f:?}");
    }
    // Even a fully-failed sweep returns cleanly with empty curves rather
    // than sinking the caller.
    assert!(run.results[0].points.is_empty());
}

#[test]
fn nan_in_training_step_rolls_back_and_completes() {
    // Poison one mini-batch mid-training (hit 15 lands in epoch 1 at tiny
    // scale: 400 samples / batch 32 = 13 steps per epoch).
    let _g = install(vec![FaultSpec::once(FaultKind::Nan, "train_step", 15)]);
    let scale = ExperimentScale::tiny();
    let setup = TaskSetup::new(NetKind::LeNet5, &scale);
    let trained = TrainedModel::train(&setup, &scale, 42).unwrap();
    assert_eq!(trained.health.rollbacks, 1, "{:?}", trained.health);
    assert!(
        trained.health.events[0].contains("non-finite"),
        "{:?}",
        trained.health.events
    );
    // The recovered model is still a working model, not salvaged garbage.
    assert!(
        trained.test_accuracy > 0.7,
        "post-rollback accuracy {}",
        trained.test_accuracy
    );
}

#[test]
fn nan_attack_gradient_surfaces_in_sweep_health_metadata() {
    let scale = serial_tiny();
    // Every attack gradient is poisoned: IFGSM keeps its last good iterate
    // (the clean input) instead of emitting NaN adversarial samples.
    let _g = install(vec![FaultSpec::sticky(FaultKind::Nan, "attack_iter", 0)]);
    let matrix = TransferMatrix::pruning(NetKind::LeNet5, vec![AttackKind::Ifgsm], &[1.0]);
    let run = matrix
        .run_resilient(
            &scale,
            &RunConfig {
                seed: 7,
                run_dir: None,
                retry: RetryPolicy::none(),
            },
        )
        .unwrap();
    // The point completed — the guard degraded the attack, not the run.
    assert!(run.failed.is_empty(), "{:?}", run.failed);
    assert_eq!(run.results[0].points.len(), 1);
    assert!(
        run.health
            .iter()
            .any(|h| h.contains("ifgsm") && h.contains("non-finite")),
        "expected an ifgsm health event in {:?}",
        run.health
    );
    // With the attack neutered at iteration 0 the "adversarial" samples are
    // clean inputs, so the point's accuracies are ordinary and in range.
    let p = &run.results[0].points[0];
    for v in [
        p.base_accuracy,
        p.comp_to_comp,
        p.full_to_comp,
        p.comp_to_full,
    ] {
        assert!((0.0..=1.0).contains(&v), "{p:?}");
    }
}
