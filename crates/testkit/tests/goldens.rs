//! Golden-vector conformance for the compression/attack pipeline.
//!
//! Every test here computes a pipeline artefact from a fixed-seed fixture
//! and compares it **bit-exactly** against a checked-in JSON file under the
//! repo-root `tests/goldens/`. After an intentional numerical change,
//! regenerate with:
//!
//! ```text
//! REGEN_GOLDENS=1 cargo test -p advcomp-testkit --test goldens
//! ```
//!
//! and review the resulting `git diff` like any other source change.
//!
//! Every test pins `ADVCOMP_KERNEL=scalar` first: the goldens are defined
//! by the scalar kernels, and the SIMD backend's reassociated GEMM/sum
//! accumulation differs by a few ULPs (see DESIGN.md, "kernel dispatch").

use advcomp_attacks::{Attack, DeepFool, Ifgm, Ifgsm};
use advcomp_compress::{PruneMask, Quantizer};
use advcomp_nn::{softmax_cross_entropy, Mode, Sequential, Sgd};
use advcomp_tensor::Tensor;
use advcomp_testkit::fixtures;
use advcomp_testkit::golden::{self, tensor_json};
use advcomp_testkit::json::Json;

/// Seed of the fixture model every golden is derived from.
const MODEL_SEED: u64 = 42;
/// Seed of the input batch.
const BATCH_SEED: u64 = 7;
/// Seed of the labels.
const LABEL_SEED: u64 = 9;
/// Batch size.
const BATCH: usize = 4;

fn fixture() -> (Sequential, Tensor, Vec<usize>) {
    (
        fixtures::lenet(MODEL_SEED),
        fixtures::image_batch(BATCH_SEED, BATCH),
        fixtures::labels(LABEL_SEED, BATCH, fixtures::LENET_CLASSES),
    )
}

/// All parameters as a stable-order JSON object.
fn params_json(model: &Sequential) -> Json {
    Json::Obj(
        model
            .export_params()
            .iter()
            .map(|(name, value)| (name.clone(), tensor_json(value)))
            .collect(),
    )
}

fn forward_doc() -> Json {
    let (mut model, x, _) = fixture();
    let logits = model.forward(&x, Mode::Eval).expect("fixture forward");
    Json::Obj(vec![
        ("model_seed".into(), Json::from_usize(MODEL_SEED as usize)),
        ("params".into(), params_json(&model)),
        ("input".into(), tensor_json(&x)),
        ("logits".into(), tensor_json(&logits)),
    ])
}

#[test]
fn forward_logits_conform() {
    advcomp_testkit::pin_kernel("scalar");
    golden::check_or_regen("lenet_forward", &forward_doc()).unwrap();
}

fn attack_doc(name: &str, attack: &dyn Attack) -> Json {
    let (mut model, x, labels) = fixture();
    let adv = attack.generate(&mut model, &x, &labels).expect("attack");
    Json::Obj(vec![
        ("attack".into(), Json::Str(name.into())),
        ("labels".into(), Json::usize_array(&labels)),
        ("adversarial".into(), tensor_json(&adv)),
    ])
}

#[test]
fn ifgsm_perturbation_conforms() {
    advcomp_testkit::pin_kernel("scalar");
    let attack = Ifgsm::new(0.08, 5).unwrap();
    golden::check_or_regen("lenet_ifgsm", &attack_doc("ifgsm", &attack)).unwrap();
}

#[test]
fn ifgm_perturbation_conforms() {
    advcomp_testkit::pin_kernel("scalar");
    let attack = Ifgm::new(0.5, 5).unwrap();
    golden::check_or_regen("lenet_ifgm", &attack_doc("ifgm", &attack)).unwrap();
}

#[test]
fn deepfool_perturbation_conforms() {
    advcomp_testkit::pin_kernel("scalar");
    let attack = DeepFool::new(0.02, 10).unwrap();
    golden::check_or_regen("lenet_deepfool", &attack_doc("deepfool", &attack)).unwrap();
}

#[test]
fn prune_mask_conforms() {
    advcomp_testkit::pin_kernel("scalar");
    let (model, _, _) = fixture();
    let mask = PruneMask::from_magnitude(&model, 0.3).unwrap();
    // HashMap iteration order is unstable; sort names for a stable golden.
    let mut names: Vec<&str> = mask.names().collect();
    names.sort_unstable();
    let entries: Vec<(String, Json)> = names
        .iter()
        .map(|&n| (n.to_string(), tensor_json(mask.mask(n).unwrap())))
        .collect();
    let doc = Json::Obj(vec![
        ("density".into(), Json::Num("0.3".into())),
        ("masks".into(), Json::Obj(entries)),
    ]);
    golden::check_or_regen("lenet_prune_mask", &doc).unwrap();
}

#[test]
fn quantized_weights_conform() {
    advcomp_testkit::pin_kernel("scalar");
    let (mut model, _, _) = fixture();
    Quantizer::for_bitwidth(8)
        .unwrap()
        .quantize_weights(&mut model);
    let doc = Json::Obj(vec![
        ("bitwidth".into(), Json::from_usize(8)),
        ("params".into(), params_json(&model)),
    ]);
    golden::check_or_regen("lenet_quantized_w8", &doc).unwrap();
}

#[test]
fn train_step_conforms() {
    advcomp_testkit::pin_kernel("scalar");
    let (mut model, x, labels) = fixture();
    let logits = model.forward(&x, Mode::Train).expect("forward");
    let loss = softmax_cross_entropy(&logits, &labels).expect("loss");
    model.zero_grad();
    model.backward(&loss.grad).expect("backward");
    let mut opt = Sgd::new(0.1, 0.9, 0.0).unwrap();
    opt.step(model.params_mut()).expect("sgd step");
    let doc = Json::Obj(vec![
        ("loss".into(), Json::from_f32(loss.loss)),
        ("params_after".into(), params_json(&model)),
    ]);
    golden::check_or_regen("lenet_train_step", &doc).unwrap();
}

/// The acceptance gate for golden sensitivity: a single-ulp perturbation of
/// one weight must be detected by the conformance comparison.
#[test]
fn one_ulp_weight_drift_is_detected() {
    advcomp_testkit::pin_kernel("scalar");
    let clean = forward_doc();

    let (mut model, x, _) = fixture();
    {
        let w = &mut model.param_mut("conv1.weight").unwrap().value;
        let v = w.data()[0];
        w.data_mut()[0] = f32::from_bits(v.to_bits() + 1);
    }
    let logits = model.forward(&x, Mode::Eval).expect("forward");
    let drifted = Json::Obj(vec![
        ("model_seed".into(), Json::from_usize(MODEL_SEED as usize)),
        ("params".into(), params_json(&model)),
        ("input".into(), tensor_json(&x)),
        ("logits".into(), tensor_json(&logits)),
    ]);

    let err = golden::compare_json(&clean, &drifted, "$")
        .expect_err("1-ulp weight drift must fail bit-exact conformance");
    assert!(
        err.contains("conv1.weight"),
        "divergence should be pinpointed to the perturbed weight, got: {err}"
    );
}

/// Serialization sanity: a regenerated golden for an unchanged pipeline is
/// byte-identical, so `git diff` after `REGEN_GOLDENS=1` is a pure drift
/// detector.
#[test]
fn golden_serialization_is_stable() {
    advcomp_testkit::pin_kernel("scalar");
    let a = forward_doc().to_pretty_string();
    let b = forward_doc().to_pretty_string();
    assert_eq!(a, b);
}
