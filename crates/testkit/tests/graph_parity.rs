//! Graph-compiler parity: the compiled [`ExecPlan`] forward vs
//! `Sequential::forward`, pillar 8 of the verification strategy.
//!
//! The compiler's contract is *replication, not approximation*: the plan
//! dispatches into the same tensor kernels with the same operand order and
//! banding thresholds the layers use, so its forward must be
//! **bit-identical per logit** to the layer-at-a-time forward — for both
//! hard-coded paper nets, at f32, q8-frozen and q4-frozen, under whichever
//! backend the process pins (`scripts/check.sh` runs this suite under both
//! `ADVCOMP_KERNEL=scalar` and `simd`). Scalar-vs-SIMD *plans* are
//! additionally compared under a relative-L2 gate, since FMA reassociation
//! makes cross-backend equality approximate.
//!
//! Alongside end-to-end parity: per-pattern fusion unit tests
//! (conv+BN+ReLU, dense+bias+activation, quant→dequant elision, int8
//! chaining), the static memory plan's no-aliasing invariant over every
//! topological order of a branching schedule, and the zero-allocation
//! steady-state hook.

use advcomp_compress::Quantizer;
use advcomp_graph::{plan_arena, validate_no_alias, BufferLife, ExecPlan};
use advcomp_models::{cifarnet, lenet5, ModelKind};
use advcomp_nn::{BatchNorm2d, Conv2d, Dense, Flatten, Mode, Relu, Sequential, Sigmoid, Tanh};
use advcomp_tensor::{simd, KernelBackend, Tensor};
use advcomp_testkit::DetRng;
use rand::SeedableRng;

/// Relative L2 distance `|a - b|₂ / max(|b|₂, ε)`.
fn rel_l2(actual: &[f32], expected: &[f32]) -> f64 {
    assert_eq!(actual.len(), expected.len(), "length mismatch");
    let mut diff = 0.0f64;
    let mut norm = 0.0f64;
    for (&a, &e) in actual.iter().zip(expected) {
        diff += (f64::from(a) - f64::from(e)).powi(2);
        norm += f64::from(e).powi(2);
    }
    (diff / norm.max(1e-30)).sqrt()
}

/// Cross-backend (FMA-reassociation) gate, matching `quant_parity`.
const REL_L2_GATE: f64 = 1e-5;

/// A deterministic input batch for one of the paper nets.
fn net_batch(kind: ModelKind, seed: u64, batch: usize) -> Tensor {
    let shape = kind.input_shape();
    let mut rng = DetRng::new(seed);
    let numel: usize = shape.iter().product();
    let data = rng.vec_f32(batch * numel, 0.0, 1.0);
    let mut full = vec![batch];
    full.extend_from_slice(shape);
    Tensor::new(&full, data).expect("fixture shape is consistent")
}

/// The two paper nets with their input shapes, at reduced width so the
/// suite stays fast while covering every layer pattern.
fn paper_nets(seed: u64) -> Vec<(&'static str, ModelKind, Sequential)> {
    vec![
        ("lenet5", ModelKind::LeNet5, lenet5(0.5, seed)),
        ("cifarnet", ModelKind::CifarNet, cifarnet(0.25, seed)),
    ]
}

/// Asserts per-logit bit-identity between the compiled plan and the
/// `Sequential` forward over a few batch sizes.
fn assert_bit_exact(name: &str, kind: ModelKind, model: &mut Sequential) {
    let mut plan =
        ExecPlan::compile(model, kind.input_shape()).expect("plan compiles without hand edits");
    for batch in [1usize, 3] {
        let x = net_batch(kind, 7 + batch as u64, batch);
        let want = model.forward(&x, Mode::Eval).expect("reference forward");
        let got = plan.forward(&x).expect("compiled forward");
        assert_eq!(want.shape(), got.shape(), "{name}: shape diverged");
        for (i, (w, g)) in want.data().iter().zip(got.data()).enumerate() {
            assert!(
                w.to_bits() == g.to_bits(),
                "{name}: logit {i} diverged at batch {batch}: {w} vs {g}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end parity: both nets × {f32, q8-frozen, q4-frozen}.
// ---------------------------------------------------------------------------

#[test]
fn compiled_forward_is_bit_exact_f32() {
    for (name, kind, mut model) in paper_nets(21) {
        assert_bit_exact(name, kind, &mut model);
    }
}

#[test]
fn compiled_forward_is_bit_exact_q8_frozen() {
    for (name, kind, mut model) in paper_nets(22) {
        let frozen = Quantizer::for_bitwidth(8)
            .unwrap()
            .quantize_frozen(&mut model)
            .unwrap();
        assert!(frozen > 0, "{name}: nothing froze");
        assert_bit_exact(name, kind, &mut model);
    }
}

#[test]
fn compiled_forward_is_bit_exact_q4_frozen() {
    // Q4 weights are widened to Q8-layout codes at compile time; the
    // integer sums are computed from identical code values, so parity
    // stays bit-exact even though the plan runs the Q8 kernel.
    for (name, kind, mut model) in paper_nets(23) {
        let frozen = Quantizer::for_bitwidth(4)
            .unwrap()
            .quantize_frozen(&mut model)
            .unwrap();
        assert!(frozen > 0, "{name}: nothing froze");
        assert_bit_exact(name, kind, &mut model);
    }
}

#[test]
fn compiled_forward_is_bit_exact_simulated_quant() {
    // Activation formats installed but weights not frozen: the Quantize
    // nodes stay in the graph (nothing elides them) and run as in-place
    // elementwise steps.
    for (name, kind, mut model) in paper_nets(24) {
        Quantizer::for_bitwidth(8).unwrap().quantize(&mut model);
        let plan = ExecPlan::compile(&model, kind.input_shape()).unwrap();
        assert_eq!(
            plan.stats().elided_quantize,
            0,
            "{name}: simulated quantise must not elide"
        );
        assert_bit_exact(name, kind, &mut model);
    }
}

#[test]
fn scalar_and_simd_plans_agree_within_rel_l2() {
    if !simd::simd_available() {
        return;
    }
    for (name, kind, mut model) in paper_nets(25) {
        Quantizer::for_bitwidth(8)
            .unwrap()
            .quantize_frozen(&mut model)
            .unwrap();
        let mut scalar =
            ExecPlan::compile_with_backend(&model, kind.input_shape(), KernelBackend::Scalar)
                .unwrap();
        let mut vector =
            ExecPlan::compile_with_backend(&model, kind.input_shape(), KernelBackend::Simd)
                .unwrap();
        let x = net_batch(kind, 31, 4);
        let a = scalar.forward(&x).unwrap();
        let b = vector.forward(&x).unwrap();
        let err = rel_l2(b.data(), a.data());
        assert!(err <= REL_L2_GATE, "{name}: scalar vs simd rel-L2 {err}");
    }
}

// ---------------------------------------------------------------------------
// Pass-level unit tests: each fusion pattern in isolation.
// ---------------------------------------------------------------------------

/// conv + BatchNorm + ReLU collapses into one GEMM epilogue, with running
/// statistics perturbed away from their identity initialisation first.
#[test]
fn fuses_conv_batchnorm_relu_bit_exact() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(40);
    let mut model = Sequential::new(vec![
        Box::new(Conv2d::new(1, 4, 3, 1, 1, &mut rng)),
        Box::new(BatchNorm2d::new(4)),
        Box::new(Relu::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(4 * 8 * 8, 3, &mut rng)),
    ]);
    // Drive the running statistics off their (0, 1) init so the fused
    // normalisation actually transforms values.
    let mut rng2 = DetRng::new(41);
    for round in 0..3 {
        let data = rng2.vec_f32(2 * 64, -1.0, 2.0);
        let x = Tensor::new(&[2, 1, 8, 8], data).unwrap();
        model.forward(&x, Mode::Train).expect("train forward");
        let _ = round;
    }
    let plan = ExecPlan::compile(&model, &[1, 8, 8]).unwrap();
    assert_eq!(plan.stats().fused_conv_bn, 1);
    assert_eq!(plan.stats().fused_conv_act, 1);
    let mut plan = plan;
    let data = DetRng::new(42).vec_f32(3 * 64, 0.0, 1.0);
    let x = Tensor::new(&[3, 1, 8, 8], data).unwrap();
    let want = model.forward(&x, Mode::Eval).unwrap();
    let got = plan.forward(&x).unwrap();
    assert_eq!(want.data(), got.data());
}

/// dense + bias + each activation kind fuses into the GEMM epilogue.
#[test]
fn fuses_dense_activation_bit_exact() {
    type MakeAct = Box<dyn Fn() -> Box<dyn advcomp_nn::Layer>>;
    let acts: Vec<(&str, MakeAct)> = vec![
        ("relu", Box::new(|| Box::new(Relu::new()))),
        ("tanh", Box::new(|| Box::new(Tanh::new()))),
        ("sigmoid", Box::new(|| Box::new(Sigmoid::new()))),
    ];
    for (name, make) in acts {
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(16, 8, &mut rng)),
            make(),
            Box::new(Dense::new(8, 3, &mut rng)),
        ]);
        let mut plan = ExecPlan::compile(&model, &[16]).unwrap();
        assert_eq!(plan.stats().fused_dense_act, 1, "{name}");
        let data = DetRng::new(51).vec_f32(4 * 16, -1.0, 1.0);
        let x = Tensor::new(&[4, 16], data).unwrap();
        let want = model.forward(&x, Mode::Eval).unwrap();
        let got = plan.forward(&x).unwrap();
        assert_eq!(want.data(), got.data(), "{name} diverged");
    }
}

/// In a fully-frozen net every FakeQuant round trip elides into the
/// downstream packed GEMM, and the dense tail exchanges int8 codes.
#[test]
fn elides_quant_dequant_and_chains_int8() {
    let mut model = lenet5(0.5, 60);
    Quantizer::for_bitwidth(8)
        .unwrap()
        .quantize_frozen(&mut model)
        .unwrap();
    let fq_count = model
        .layers()
        .iter()
        .filter(|l| l.kind() == "fakequant")
        .count();
    let plan = ExecPlan::compile(&model, &[1, 28, 28]).unwrap();
    assert_eq!(
        plan.stats().elided_quantize,
        fq_count,
        "every FakeQuant must elide into a packed GEMM"
    );
    // fc1→fc2 and fc2→fc3 exchange codes directly.
    assert_eq!(plan.stats().int8_chain_links, 2);
}

/// A quantise point that does NOT feed a matching packed GEMM must stay.
#[test]
fn keeps_quantize_without_matching_consumer() {
    // Simulated path: formats installed, no packed weights downstream.
    let mut model = lenet5(0.5, 61);
    Quantizer::for_bitwidth(8).unwrap().quantize(&mut model);
    let plan = ExecPlan::compile(&model, &[1, 28, 28]).unwrap();
    assert_eq!(plan.stats().elided_quantize, 0);
    assert_eq!(plan.stats().int8_chain_links, 0);
}

// ---------------------------------------------------------------------------
// Memory plan: no aliasing under every topological order.
// ---------------------------------------------------------------------------

/// A small branching schedule: value 0 feeds 1 and 2 (a diamond), both
/// feed 3, plus an independent chain 4→5. Enumerate every topological
/// order of the consumers, derive buffer lifetimes from each order, and
/// assert the planner never aliases simultaneously-live buffers.
#[test]
fn memory_plan_never_aliases_under_any_topological_order() {
    // op -> (output buffer size, inputs)
    let ops: Vec<(usize, Vec<usize>)> = vec![
        (100, vec![]),    // 0: source a
        (60, vec![0]),    // 1: left branch
        (140, vec![0]),   // 2: right branch
        (80, vec![1, 2]), // 3: join
        (50, vec![]),     // 4: source b
        (70, vec![4]),    // 5: chain off b
    ];
    let orders = topological_orders(&ops);
    assert!(orders.len() > 1, "diamond must admit multiple orders");
    for order in &orders {
        // position[op] = schedule slot
        let mut position = vec![0usize; ops.len()];
        for (slot, &op) in order.iter().enumerate() {
            position[op] = slot;
        }
        let lives: Vec<BufferLife> = ops
            .iter()
            .enumerate()
            .map(|(op, (size, _))| {
                let def = position[op];
                let last_use = ops
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, ins))| ins.contains(&op))
                    .map(|(consumer, _)| position[consumer])
                    .max()
                    .unwrap_or(def);
                BufferLife {
                    size: *size,
                    def,
                    last_use,
                }
            })
            .collect();
        let plan = plan_arena(&lives);
        validate_no_alias(&lives, &plan).unwrap_or_else(|e| panic!("order {order:?} aliased: {e}"));
        // Sanity: reuse must actually happen in at least the chain case.
        assert!(plan.arena_len <= plan.total_len);
    }
}

/// All topological orders of a tiny DAG by exhaustive recursion.
fn topological_orders(ops: &[(usize, Vec<usize>)]) -> Vec<Vec<usize>> {
    fn recurse(
        ops: &[(usize, Vec<usize>)],
        done: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if done.len() == ops.len() {
            out.push(done.clone());
            return;
        }
        for op in 0..ops.len() {
            if used[op] {
                continue;
            }
            if ops[op].1.iter().all(|i| done.contains(i)) {
                used[op] = true;
                done.push(op);
                recurse(ops, done, used, out);
                done.pop();
                used[op] = false;
            }
        }
    }
    let mut out = Vec::new();
    recurse(ops, &mut Vec::new(), &mut vec![false; ops.len()], &mut out);
    out
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state on the real acceptance net.
// ---------------------------------------------------------------------------

#[test]
fn frozen_lenet5_steady_state_is_allocation_free() {
    let mut model = lenet5(0.5, 70);
    Quantizer::for_bitwidth(8)
        .unwrap()
        .quantize_frozen(&mut model)
        .unwrap();
    let mut plan = ExecPlan::compile(&model, &[1, 28, 28]).unwrap();
    let x = net_batch(ModelKind::LeNet5, 71, 4);
    let mut out = Tensor::zeros(&[0]);
    plan.forward_into(&x, &mut out).unwrap();
    let warm = plan.alloc_events();
    for _ in 0..8 {
        plan.forward_into(&x, &mut out).unwrap();
    }
    assert_eq!(
        plan.alloc_events(),
        warm,
        "steady-state compiled forward must not grow plan-owned buffers"
    );
    // Pre-reserved plans never allocate at all.
    let mut fresh = ExecPlan::compile(&model, &[1, 28, 28]).unwrap();
    fresh.reserve_batch(4);
    fresh.forward_into(&x, &mut out).unwrap();
    assert_eq!(fresh.alloc_events(), 0);
}
