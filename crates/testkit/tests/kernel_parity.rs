//! Scalar-vs-SIMD kernel parity: the conformance contract of the
//! runtime-dispatched kernel layer (DESIGN.md, "kernel dispatch").
//!
//! Two classes of kernel, two standards of agreement:
//!
//! * **Bit-exact**: elementwise maps with no reassociation (add, sign,
//!   clamp, axpy, the fused attack steps). The SIMD lane computes the same
//!   float expression per element as the scalar loop, so the backends must
//!   agree to the bit on every input, including non-finite ones for sign.
//! * **Tolerance (1e-5 relative L2)**: contractions the SIMD backend
//!   reassociates — the FMA GEMM microkernel and the lane-parallel
//!   sum/sum-of-squares reductions. These differ from scalar by a few ULPs
//!   by design; the FMA contraction is in fact *more* accurate.
//!
//! Everything here passes explicit [`KernelBackend`] values, so the suite
//! exercises both backends in one process regardless of `ADVCOMP_KERNEL` —
//! on a machine without AVX2 the Simd backend falls back to scalar and the
//! comparisons hold trivially.

use advcomp_tensor::{simd, Init, KernelBackend, MatmulKernel, Tensor};
use advcomp_testkit::DetRng;

const SCALAR: KernelBackend = KernelBackend::Scalar;
const SIMD: KernelBackend = KernelBackend::Simd;

/// Lengths straddling the 8-lane width, its multiples, and the unrolled
/// 16-element stride, so every tail path runs.
const LENS: [usize; 10] = [0, 1, 7, 8, 9, 15, 16, 31, 100, 1023];

fn vecs(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = DetRng::new(seed);
    (rng.vec_f32(n, -3.0, 3.0), rng.vec_f32(n, -3.0, 3.0))
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit divergence at {i}: {x} vs {y}"
        );
    }
}

fn rel_l2(a: &[f32], b: &[f32]) -> f64 {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        num += (*x as f64 - *y as f64).powi(2);
        den += (*x as f64).powi(2);
    }
    (num / den.max(1e-30)).sqrt()
}

#[test]
fn elementwise_kernels_bit_exact_across_backends() {
    for n in LENS {
        let (a, b) = vecs(n, 0xE1E);
        let mut out_s = vec![0.0f32; n];
        let mut out_v = vec![0.0f32; n];

        simd::add_slices(SCALAR, &a, &b, &mut out_s);
        simd::add_slices(SIMD, &a, &b, &mut out_v);
        assert_bits_eq(&out_s, &out_v, "add");

        simd::mul_slices(SCALAR, &a, &b, &mut out_s);
        simd::mul_slices(SIMD, &a, &b, &mut out_v);
        assert_bits_eq(&out_s, &out_v, "mul");

        simd::sign_slices(SCALAR, &a, &mut out_s);
        simd::sign_slices(SIMD, &a, &mut out_v);
        assert_bits_eq(&out_s, &out_v, "sign");

        simd::clamp_slices(SCALAR, &a, -0.5, 0.5, &mut out_s);
        simd::clamp_slices(SIMD, &a, -0.5, 0.5, &mut out_v);
        assert_bits_eq(&out_s, &out_v, "clamp");

        let mut acc_s = b.clone();
        let mut acc_v = b.clone();
        simd::axpy_slices(SCALAR, &mut acc_s, &a, 0.37);
        simd::axpy_slices(SIMD, &mut acc_v, &a, 0.37);
        assert_bits_eq(&acc_s, &acc_v, "axpy");
    }
}

#[test]
fn sign_agrees_on_non_finite_inputs() {
    let a = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        1.5,
        -1.5,
    ];
    let mut out_s = vec![0.0f32; a.len()];
    let mut out_v = vec![0.0f32; a.len()];
    simd::sign_slices(SCALAR, &a, &mut out_s);
    simd::sign_slices(SIMD, &a, &mut out_v);
    assert_bits_eq(&out_s, &out_v, "sign(non-finite)");
    assert_eq!(out_s, [0.0, 1.0, -1.0, 0.0, 0.0, 1.0, -1.0]);
}

#[test]
fn fused_attack_steps_bit_exact_across_backends() {
    for n in LENS {
        let (x0, g) = vecs(n, 0xF5D);
        let origin: Vec<f32> = x0.iter().map(|v| (v / 6.0 + 0.5).clamp(0.0, 1.0)).collect();

        let mut x_s = origin.clone();
        let mut x_v = origin.clone();
        simd::fused_sign_step_clamp(SCALAR, &mut x_s, &g, 0.03, 0.0, 1.0);
        simd::fused_sign_step_clamp(SIMD, &mut x_v, &g, 0.03, 0.0, 1.0);
        assert_bits_eq(&x_s, &x_v, "fused_sign_step");

        let mut x_s = origin.clone();
        let mut x_v = origin.clone();
        simd::fused_grad_step_clamp(SCALAR, &mut x_s, &g, 1.7, 0.05, 0.0, 1.0);
        simd::fused_grad_step_clamp(SIMD, &mut x_v, &g, 1.7, 0.05, 0.0, 1.0);
        assert_bits_eq(&x_s, &x_v, "fused_grad_step");

        let mut x_s = origin.clone();
        let mut x_v = origin.clone();
        simd::fused_project_step_clamp(SCALAR, &mut x_s, &g, &origin, 0.03, 0.05, 0.0, 1.0);
        simd::fused_project_step_clamp(SIMD, &mut x_v, &g, &origin, 0.03, 0.05, 0.0, 1.0);
        assert_bits_eq(&x_s, &x_v, "fused_project_step");
    }
}

#[test]
fn tensor_ops_bit_exact_across_explicit_gemm_backends() {
    // The sparse GEMM kernel's inner loop is an axpy (bit-exact class), so
    // unlike the dense FMA path it must agree to the bit.
    let mut rng = DetRng::new(0x5BA);
    let a = Tensor::new(&[37, 29], rng.sparse_vec_f32(37 * 29, -1.0, 1.0, 0.7)).unwrap();
    let b = Tensor::new(&[29, 23], rng.vec_f32(29 * 23, -1.0, 1.0)).unwrap();
    let s = a.matmul_with(&b, MatmulKernel::Sparse, SCALAR).unwrap();
    let v = a.matmul_with(&b, MatmulKernel::Sparse, SIMD).unwrap();
    assert_bits_eq(s.data(), v.data(), "sparse matmul");
}

#[test]
fn dense_gemm_within_relative_l2_tolerance() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let init = Init::Uniform { lo: -1.0, hi: 1.0 };
    // Shapes straddling the panel width (128), the 8/32-wide column strips
    // and the parallel threshold.
    for (m, k, n) in [(1, 1, 1), (5, 7, 9), (33, 17, 40), (128, 128, 128)] {
        let a = init.tensor(&[m, k], &mut rng);
        let b = init.tensor(&[k, n], &mut rng);
        let s = a.matmul_with(&b, MatmulKernel::Dense, SCALAR).unwrap();
        let v = a.matmul_with(&b, MatmulKernel::Dense, SIMD).unwrap();
        let err = rel_l2(s.data(), v.data());
        assert!(err < 1e-5, "dense GEMM {m}x{k}x{n}: rel L2 {err}");
    }
}

#[test]
fn reductions_within_relative_tolerance_and_extrema_exact() {
    for n in LENS {
        if n == 0 {
            continue;
        }
        let (a, _) = vecs(n, 0x2ED);
        for (name, s, v) in [
            (
                "sum",
                simd::sum_slice(SCALAR, &a) as f64,
                simd::sum_slice(SIMD, &a) as f64,
            ),
            (
                "sumsq",
                simd::sumsq_slice(SCALAR, &a) as f64,
                simd::sumsq_slice(SIMD, &a) as f64,
            ),
            (
                "sum_abs",
                simd::sum_abs_slice(SCALAR, &a) as f64,
                simd::sum_abs_slice(SIMD, &a) as f64,
            ),
        ] {
            // Relative tolerance against the absolute-value mass, so
            // cancellation in `sum` does not blow up the relative error.
            let scale = simd::sum_abs_slice(SCALAR, &a) as f64;
            assert!(
                (s - v).abs() <= 1e-5 * scale.max(1.0),
                "{name} n={n}: {s} vs {v}"
            );
        }
        // Extrema are order-insensitive: exact on finite data.
        assert_eq!(simd::max_slice(SCALAR, &a), simd::max_slice(SIMD, &a));
        assert_eq!(simd::min_slice(SCALAR, &a), simd::min_slice(SIMD, &a));
        assert_eq!(
            simd::max_abs_slice(SCALAR, &a),
            simd::max_abs_slice(SIMD, &a)
        );
    }
}
