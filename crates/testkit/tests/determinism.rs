//! Determinism harness: the full pipeline must be bit-exact across kernel
//! parallelism caps {1, 2, 8} and across repeated runs.
//!
//! This file deliberately contains a **single** `#[test]`. The tensor
//! thread pool reads `ADVCOMP_THREADS` once, at first use; the test sets
//! it to the largest sweep value before any tensor op so the pool has
//! enough workers for every cap, then varies the *effective* parallelism
//! per-operation with `with_thread_cap`. Multiple `#[test]` functions
//! would race on that one-shot initialisation across libtest threads.

use advcomp_attacks::{Attack, DeepFool, Ifgsm};
use advcomp_compress::{PruneMask, Quantizer};
use advcomp_nn::{softmax_cross_entropy, Mode, Sgd};
use advcomp_tensor::Tensor;
use advcomp_testkit::determinism::{check_bit_exact, STANDARD_CAPS};
use advcomp_testkit::{fixtures, DetRng};

const REPEATS: usize = 2;

fn flat_params(model: &advcomp_nn::Sequential) -> Vec<f32> {
    model
        .export_params()
        .iter()
        .flat_map(|(_, t)| t.data().to_vec())
        .collect()
}

#[test]
fn pipeline_is_bit_exact_across_thread_caps() {
    // Must precede every tensor op: the pool caches this at first use.
    std::env::set_var("ADVCOMP_THREADS", "8");
    // Pin the scalar kernels: this pillar's outputs are compared bit-exactly
    // and must not depend on whether the host CPU has AVX2. The SIMD
    // backend gets the same sweep in the `simd_smoke` test binary.
    advcomp_testkit::pin_kernel("scalar");

    // Large GEMM, above the parallel threshold (m·k·n = 96³ > 64³), so the
    // banded multi-threaded kernel path is actually what is being swept.
    check_bit_exact("large matmul", &STANDARD_CAPS, REPEATS, || {
        let mut rng = DetRng::new(0xA11CE);
        let a = Tensor::new(&[96, 96], rng.vec_f32(96 * 96, -1.0, 1.0)).unwrap();
        let b = Tensor::new(&[96, 96], rng.vec_f32(96 * 96, -1.0, 1.0)).unwrap();
        a.matmul(&b).unwrap().data().to_vec()
    })
    .unwrap();

    // Sparse operand above the threshold: zero-skip kernel path.
    check_bit_exact("sparse matmul", &STANDARD_CAPS, REPEATS, || {
        let mut rng = DetRng::new(0x5EED);
        let a = Tensor::new(&[96, 96], rng.sparse_vec_f32(96 * 96, -1.0, 1.0, 0.9)).unwrap();
        let b = Tensor::new(&[96, 96], rng.vec_f32(96 * 96, -1.0, 1.0)).unwrap();
        a.matmul(&b).unwrap().data().to_vec()
    })
    .unwrap();

    // One full train step: forward (train), loss, backward, SGD update.
    check_bit_exact("train step", &STANDARD_CAPS, REPEATS, || {
        let mut model = fixtures::lenet(3);
        let x = fixtures::image_batch(4, 8);
        let labels = fixtures::labels(5, 8, fixtures::LENET_CLASSES);
        let logits = model.forward(&x, Mode::Train).unwrap();
        let loss = softmax_cross_entropy(&logits, &labels).unwrap();
        model.zero_grad();
        model.backward(&loss.grad).unwrap();
        let mut opt = Sgd::new(0.1, 0.9, 0.0).unwrap();
        opt.step(model.params_mut()).unwrap();
        let mut out = vec![loss.loss];
        out.extend(flat_params(&model));
        out
    })
    .unwrap();

    // Attack step: IFGSM crafts identical adversarial pixels.
    check_bit_exact("ifgsm attack", &STANDARD_CAPS, REPEATS, || {
        let mut model = fixtures::lenet(3);
        let x = fixtures::image_batch(4, 8);
        let labels = fixtures::labels(5, 8, fixtures::LENET_CLASSES);
        let attack = Ifgsm::new(0.06, 4).unwrap();
        attack
            .generate(&mut model, &x, &labels)
            .unwrap()
            .data()
            .to_vec()
    })
    .unwrap();

    // DeepFool exercises per-logit backward passes.
    check_bit_exact("deepfool attack", &STANDARD_CAPS, REPEATS, || {
        let mut model = fixtures::lenet(3);
        let x = fixtures::image_batch(4, 4);
        let labels = fixtures::labels(5, 4, fixtures::LENET_CLASSES);
        let attack = DeepFool::new(0.02, 8).unwrap();
        attack
            .generate(&mut model, &x, &labels)
            .unwrap()
            .data()
            .to_vec()
    })
    .unwrap();

    // Pruning: mask derivation + application.
    check_bit_exact("prune", &STANDARD_CAPS, REPEATS, || {
        let mut model = fixtures::lenet(3);
        let mask = PruneMask::from_magnitude(&model, 0.4).unwrap();
        mask.apply(&mut model).unwrap();
        flat_params(&model)
    })
    .unwrap();

    // Quantisation: Q2.6 weight snapping.
    check_bit_exact("quantize", &STANDARD_CAPS, REPEATS, || {
        let mut model = fixtures::lenet(3);
        Quantizer::for_bitwidth(8)
            .unwrap()
            .quantize_weights(&mut model);
        flat_params(&model)
    })
    .unwrap();
}
