//! Gradcheck expansion: finite-difference validation of every layer's
//! analytic backward pass, including FakeQuant's straight-through
//! estimator and BatchNorm in both forward modes.
//!
//! Comparison uses the aggregate relative-L2 statistic
//! (`advcomp_testkit::tolerance::rel_l2_error`): central differences of a
//! piecewise-smooth loss (ReLU kinks, max-pool argmax flips) can be badly
//! wrong in isolated elements while the gradient field as a whole is
//! right, so elementwise tolerances are the wrong instrument here. See
//! `TESTING.md` for the full tolerance policy.

use advcomp_nn::{
    finite_diff_input_grad_with_mode, finite_diff_param_grad_with_mode, softmax_cross_entropy,
    AvgPool2d, BatchNorm2d, Conv2d, Dense, Dropout, FakeQuant, Flatten, Layer, MaxPool2d, Mode,
    Relu, Sequential, Sigmoid, Tanh,
};
use advcomp_qformat::QFormat;
use advcomp_tensor::Tensor;
use advcomp_testkit::fixtures::materialize_params;
use advcomp_testkit::tolerance::rel_l2_error;
use advcomp_testkit::DetRng;
use rand::SeedableRng;

/// Relative-L2 threshold for smooth networks (every layer differentiable).
const SMOOTH: f32 = 0.02;
/// Threshold for networks with kinks (ReLU, pooling argmax, quantisation).
const KINKY: f32 = 0.05;

/// Deterministic input tensor, independent of the linked `rand`.
fn det_input(seed: u64, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    let mut rng = DetRng::new(seed);
    let n: usize = shape.iter().product();
    Tensor::new(shape, rng.vec_f32(n, lo, hi)).unwrap()
}

/// Builds `layers` into a network with parameters drawn from [`DetRng`].
fn det_net(seed: u64, layers: Vec<Box<dyn Layer>>) -> Sequential {
    let mut net = Sequential::new(layers);
    materialize_params(&mut net, &mut DetRng::new(seed));
    net
}

/// Checks the analytic input gradient and the gradients of every named
/// parameter against central differences under `mode`.
fn check_net(
    label: &str,
    net: &mut Sequential,
    x: &Tensor,
    labels: &[usize],
    mode: Mode,
    eps: f32,
    threshold: f32,
) {
    let logits = net.forward(x, mode).expect("forward");
    let loss = softmax_cross_entropy(&logits, labels).expect("loss");
    net.zero_grad();
    let analytic_input = net.backward(&loss.grad).expect("backward");
    let analytic_params: Vec<(String, Tensor)> = net
        .params()
        .iter()
        .map(|p| (p.name.clone(), p.grad.clone()))
        .collect();

    let fd_input = finite_diff_input_grad_with_mode(net, x, labels, eps, mode).expect("fd input");
    let err = rel_l2_error(analytic_input.data(), fd_input.data());
    assert!(
        err < threshold,
        "{label}: input gradient rel-L2 error {err} >= {threshold}"
    );

    for (name, analytic) in &analytic_params {
        let fd =
            finite_diff_param_grad_with_mode(net, x, labels, name, eps, mode).expect("fd param");
        let err = rel_l2_error(analytic.data(), fd.data());
        assert!(
            err < threshold,
            "{label}: {name} gradient rel-L2 error {err} >= {threshold}"
        );
    }
}

fn init_rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0)
}

#[test]
fn dense_tanh_gradients() {
    let mut r = init_rng();
    let mut net = det_net(
        10,
        vec![
            Box::new(Dense::with_name("a", 6, 8, &mut r)),
            Box::new(Tanh::new()),
            Box::new(Dense::with_name("b", 8, 4, &mut r)),
        ],
    );
    let x = det_input(11, &[3, 6], -1.0, 1.0);
    check_net(
        "dense+tanh",
        &mut net,
        &x,
        &[0, 3, 2],
        Mode::Eval,
        1e-3,
        SMOOTH,
    );
}

#[test]
fn dense_sigmoid_gradients() {
    let mut r = init_rng();
    let mut net = det_net(
        12,
        vec![
            Box::new(Dense::with_name("a", 5, 7, &mut r)),
            Box::new(Sigmoid::new()),
            Box::new(Dense::with_name("b", 7, 3, &mut r)),
        ],
    );
    let x = det_input(13, &[3, 5], -1.0, 1.0);
    check_net(
        "dense+sigmoid",
        &mut net,
        &x,
        &[2, 0, 1],
        Mode::Eval,
        1e-3,
        SMOOTH,
    );
}

#[test]
fn conv_relu_maxpool_gradients() {
    let mut r = init_rng();
    let mut net = det_net(
        14,
        vec![
            Box::new(Conv2d::with_name("c", 1, 3, 3, 1, 1, &mut r)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Flatten::new()),
            Box::new(Dense::with_name("fc", 12, 4, &mut r)),
        ],
    );
    let x = det_input(15, &[2, 1, 4, 4], 0.0, 1.0);
    check_net(
        "conv+relu+maxpool",
        &mut net,
        &x,
        &[1, 3],
        Mode::Eval,
        1e-2,
        KINKY,
    );
}

#[test]
fn conv_avgpool_gradients() {
    let mut r = init_rng();
    let mut net = det_net(
        16,
        vec![
            Box::new(Conv2d::with_name("c", 2, 2, 3, 1, 0, &mut r)),
            Box::new(AvgPool2d::new(2, 2)),
            Box::new(Flatten::new()),
            Box::new(Dense::with_name("fc", 2, 3, &mut r)),
        ],
    );
    let x = det_input(17, &[2, 2, 5, 5], -1.0, 1.0);
    check_net(
        "conv+avgpool",
        &mut net,
        &x,
        &[0, 2],
        Mode::Eval,
        1e-2,
        KINKY,
    );
}

#[test]
fn batchnorm_eval_mode_gradients() {
    let mut r = init_rng();
    let mut net = det_net(
        18,
        vec![
            Box::new(BatchNorm2d::with_name("bn", 2)),
            Box::new(Flatten::new()),
            Box::new(Dense::with_name("fc", 18, 3, &mut r)),
        ],
    );
    let x = det_input(19, &[3, 2, 3, 3], -1.0, 1.0);
    check_net(
        "batchnorm eval",
        &mut net,
        &x,
        &[0, 1, 2],
        Mode::Eval,
        1e-3,
        SMOOTH,
    );
}

#[test]
fn batchnorm_train_mode_gradients() {
    // Train mode is a *different function* (batch statistics instead of
    // running statistics); its backward treats mean/var as functions of
    // the input, which only mode-aware finite differences can confirm.
    let mut r = init_rng();
    let mut net = det_net(
        20,
        vec![
            Box::new(BatchNorm2d::with_name("bn", 2)),
            Box::new(Flatten::new()),
            Box::new(Dense::with_name("fc", 18, 3, &mut r)),
        ],
    );
    let x = det_input(21, &[3, 2, 3, 3], -1.0, 1.0);
    check_net(
        "batchnorm train",
        &mut net,
        &x,
        &[2, 1, 0],
        Mode::Train,
        1e-2,
        KINKY,
    );
}

#[test]
fn dropout_eval_is_transparent_to_gradients() {
    // Dropout in eval mode must be an exact identity for both values and
    // gradients. (Train mode resamples its mask per forward call, so the
    // perturbed losses of a finite-difference probe are not samples of one
    // differentiable function — eval is the checkable mode.)
    let mut r = init_rng();
    let mut net = det_net(
        22,
        vec![
            Box::new(Dense::with_name("a", 5, 8, &mut r)),
            Box::new(Dropout::new(0.35, 99)),
            Box::new(Dense::with_name("b", 8, 3, &mut r)),
        ],
    );
    let x = det_input(23, &[3, 5], -1.0, 1.0);
    check_net(
        "dropout eval",
        &mut net,
        &x,
        &[0, 2, 1],
        Mode::Eval,
        1e-3,
        SMOOTH,
    );
}

#[test]
fn fakequant_ste_matches_fine_quantised_loss() {
    // With a fine format (Q8.16, step ≈ 1.5e-5) the quantised forward is a
    // staircase much finer than the probe step, so central differences of
    // the *quantised* loss recover the smooth envelope gradient — exactly
    // what the straight-through estimator claims to be.
    let q = QFormat::new(8, 16).unwrap();
    let mut r = init_rng();
    let mut net = det_net(
        24,
        vec![
            Box::new(Dense::with_name("a", 4, 6, &mut r)),
            Box::new(FakeQuant::with_format(q)),
            Box::new(Dense::with_name("b", 6, 3, &mut r)),
        ],
    );
    let x = det_input(25, &[3, 4], -1.0, 1.0);
    check_net(
        "fakequant fine STE",
        &mut net,
        &x,
        &[1, 2, 0],
        Mode::Eval,
        1e-3,
        KINKY,
    );
}

#[test]
fn fakequant_ste_saturation_mask() {
    // Coarse formats make the loss staircase too wide for finite
    // differences; the STE contract is checked directly instead: gradients
    // pass where the input is inside the representable range and are
    // zeroed where the forward saturated.
    let q = QFormat::new(1, 3).unwrap(); // range [-1, 0.875]
    let mut fq = FakeQuant::with_format(q);
    let x = Tensor::new(&[1, 5], vec![-2.0, -1.0, 0.3, 0.875, 1.5]).unwrap();
    fq.forward(&x, Mode::Eval).unwrap();
    let g = fq
        .backward(&Tensor::new(&[1, 5], vec![1.0; 5]).unwrap())
        .unwrap();
    let expected: Vec<f32> = x
        .data()
        .iter()
        .map(|&v| {
            if (q.min_value()..=q.max_value()).contains(&v) {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    assert_eq!(g.data(), expected.as_slice(), "clipped-STE pass mask");
}

#[test]
fn softmax_cross_entropy_gradient() {
    // A parameter-free net isolates the loss itself: the analytic CE
    // gradient (softmax − one-hot) against finite differences.
    let mut net = Sequential::new(vec![Box::new(Flatten::new())]);
    let x = det_input(26, &[3, 5], -2.0, 2.0);
    check_net(
        "softmax-CE",
        &mut net,
        &x,
        &[4, 0, 2],
        Mode::Eval,
        1e-3,
        0.01,
    );
}

#[test]
fn full_lenet_stack_input_gradient() {
    // The composed fixture network: one end-to-end input gradcheck over
    // every layer kind the goldens exercise.
    let mut net = advcomp_testkit::fixtures::lenet(77);
    let x = det_input(27, &[2, 1, 8, 8], 0.0, 1.0);
    let labels = [3usize, 8];

    let logits = net.forward(&x, Mode::Eval).unwrap();
    let loss = softmax_cross_entropy(&logits, &labels).unwrap();
    net.zero_grad();
    let analytic = net.backward(&loss.grad).unwrap();
    // eps 1e-3: coarser probes flip max-pool argmaxes on this fixture and
    // the finite-difference estimate stops converging (checked empirically:
    // rel-L2 0.33 at 1e-2, 0.004 at 1e-3).
    let fd = finite_diff_input_grad_with_mode(&mut net, &x, &labels, 1e-3, Mode::Eval).unwrap();
    let err = rel_l2_error(analytic.data(), fd.data());
    assert!(err < KINKY, "lenet stack input rel-L2 error {err}");
}
