//! Determinism smoke under the SIMD backend.
//!
//! The main determinism pillar pins `ADVCOMP_KERNEL=scalar` so its
//! bit-exact sweep is host-independent. This binary pins `simd` instead and
//! re-runs a compressed version of the same contract: with the backend
//! fixed, thread caps and repetition must still be pure performance knobs.
//! (On a machine without AVX2+FMA the Simd backend falls back to scalar
//! and this is a second scalar sweep — still a valid determinism check.)
//!
//! Single `#[test]` for the same reason as `determinism.rs`: the pool and
//! backend caches are one-shot per process.

use advcomp_attacks::{Attack, Ifgsm};
use advcomp_nn::{softmax_cross_entropy, Mode, Sgd};
use advcomp_tensor::Tensor;
use advcomp_testkit::determinism::{check_bit_exact, STANDARD_CAPS};
use advcomp_testkit::{fixtures, DetRng};

#[test]
fn simd_pipeline_is_bit_exact_across_thread_caps() {
    std::env::set_var("ADVCOMP_THREADS", "8");
    advcomp_testkit::pin_kernel("simd");

    // Banded GEMM above the parallel threshold: band boundaries must not
    // leak into the result under the SIMD microkernel either.
    check_bit_exact("large matmul (simd)", &STANDARD_CAPS, 2, || {
        let mut rng = DetRng::new(0xA11CE);
        let a = Tensor::new(&[96, 96], rng.vec_f32(96 * 96, -1.0, 1.0)).unwrap();
        let b = Tensor::new(&[96, 96], rng.vec_f32(96 * 96, -1.0, 1.0)).unwrap();
        a.matmul(&b).unwrap().data().to_vec()
    })
    .unwrap();

    // Train step + IFGSM: forward/backward GEMMs, fused attack steps and
    // the SIMD reductions all on the hot path.
    check_bit_exact("train + ifgsm (simd)", &STANDARD_CAPS, 2, || {
        let mut model = fixtures::lenet(3);
        let x = fixtures::image_batch(4, 8);
        let labels = fixtures::labels(5, 8, fixtures::LENET_CLASSES);
        let logits = model.forward(&x, Mode::Train).unwrap();
        let loss = softmax_cross_entropy(&logits, &labels).unwrap();
        model.zero_grad();
        model.backward(&loss.grad).unwrap();
        let mut opt = Sgd::new(0.1, 0.9, 0.0).unwrap();
        opt.step(model.params_mut()).unwrap();
        let adv = Ifgsm::new(0.06, 4)
            .unwrap()
            .generate(&mut model, &x, &labels)
            .unwrap();
        let mut out = vec![loss.loss];
        out.extend_from_slice(adv.data());
        out
    })
    .unwrap();
}
