//! Differential kernel fuzzing: production kernels vs reference
//! implementations over randomized shape/density sweeps.
//!
//! Every case asserts agreement within [`Tolerance::kernel_default`]
//! (1e-4 absolute + 1e-4 relative) between:
//!
//! * packed-dense GEMM, zero-skip sparse GEMM, the triple-loop f32
//!   `matmul_naive`, the auto-dispatching `matmul`, and an f64-accumulated
//!   reference;
//! * the `im2col`-backed `Conv2d` layer and a direct quadruple-loop
//!   convolution reference.
//!
//! The sweeps total well over 200 cases and include shapes on both sides
//! of the GEMM parallel threshold and densities on both sides of the
//! sparse-dispatch cutoff.

use advcomp_nn::{Conv2d, Layer, Mode};
use advcomp_tensor::{MatmulKernel, Tensor};
use advcomp_testkit::diffref::{self, conv2d_direct, matmul_f64};
use advcomp_testkit::tolerance::{compare_slices, Tolerance};
use rand::SeedableRng;

fn assert_agrees(label: &str, expected: &Tensor, actual: &Tensor) {
    assert_eq!(expected.shape(), actual.shape(), "{label}: shape mismatch");
    if let Err(e) = compare_slices(expected.data(), actual.data(), Tolerance::kernel_default()) {
        panic!("{label}: {e}");
    }
}

fn fuzz_gemm_sweep(seed: u64, count: usize, max_dim: usize) {
    for case in diffref::gemm_cases(seed, count, max_dim) {
        let label = format!(
            "gemm case {} ({:?}×{:?}, zero_prob {:.2})",
            case.index,
            case.a.shape(),
            case.b.shape(),
            case.zero_prob
        );
        let reference = matmul_f64(&case.a, &case.b);
        let dense = case
            .a
            .matmul_with_kernel(&case.b, MatmulKernel::Dense)
            .unwrap();
        let sparse = case
            .a
            .matmul_with_kernel(&case.b, MatmulKernel::Sparse)
            .unwrap();
        let naive = case.a.matmul_naive(&case.b).unwrap();
        let auto = case.a.matmul(&case.b).unwrap();
        assert_agrees(&format!("{label}: dense vs f64 ref"), &reference, &dense);
        assert_agrees(&format!("{label}: sparse vs f64 ref"), &reference, &sparse);
        assert_agrees(&format!("{label}: naive vs f64 ref"), &reference, &naive);
        assert_agrees(&format!("{label}: auto vs f64 ref"), &reference, &auto);
        // Dense and sparse must agree with each other directly too — the
        // dispatch choice must never be observable beyond rounding.
        assert_agrees(&format!("{label}: dense vs sparse"), &dense, &sparse);
    }
}

/// 150 small-shape cases: every kernel, full density range.
#[test]
fn gemm_kernels_agree_small_shapes() {
    fuzz_gemm_sweep(0xD1FF, 150, 48);
}

/// 16 larger cases whose `m·k·n` frequently crosses the parallel
/// threshold, so the banded multi-threaded paths are exercised.
#[test]
fn gemm_kernels_agree_across_parallel_threshold() {
    fuzz_gemm_sweep(0xBEEF, 16, 96);
}

/// 60 convolution cases: im2col production forward vs direct reference.
#[test]
fn conv2d_matches_direct_reference() {
    let mut init_rng = rand::rngs::StdRng::seed_from_u64(0);
    for case in diffref::conv_cases(0xC0DE, 60) {
        let label = format!(
            "conv case {} (x {:?}, w {:?}, stride {}, pad {})",
            case.index,
            case.input.shape(),
            case.weight.shape(),
            case.stride,
            case.padding
        );
        let reference = conv2d_direct(
            &case.input,
            &case.weight,
            &case.bias,
            case.stride,
            case.padding,
        );

        let (oc, c, k) = (
            case.weight.shape()[0],
            case.weight.shape()[1],
            case.weight.shape()[2],
        );
        let mut conv =
            Conv2d::with_name("fuzz", c, oc, k, case.stride, case.padding, &mut init_rng);
        for p in conv.params_mut() {
            if p.name.ends_with(".weight") {
                p.value = case.weight.clone();
            } else {
                p.value = Tensor::new(&[oc], case.bias.clone()).unwrap();
            }
        }
        let produced = conv.forward(&case.input, Mode::Eval).expect("conv forward");
        assert_agrees(&label, &reference, &produced);
    }
}

/// Degenerate shapes the sweeps rarely hit: vectors, single elements,
/// rank-1 inner dimension.
#[test]
fn gemm_kernels_agree_on_edge_shapes() {
    let shapes: [(usize, usize, usize); 6] = [
        (1, 1, 1),
        (1, 64, 1),
        (64, 1, 64),
        (1, 7, 63),
        (65, 64, 1),
        (2, 129, 2),
    ];
    let mut rng = advcomp_testkit::DetRng::new(0xE00E);
    for (m, k, n) in shapes {
        let a = Tensor::new(&[m, k], rng.vec_f32(m * k, -2.0, 2.0)).unwrap();
        let b = Tensor::new(&[k, n], rng.vec_f32(k * n, -2.0, 2.0)).unwrap();
        let reference = matmul_f64(&a, &b);
        let label = format!("edge shape {m}×{k}×{n}");
        for kernel in [MatmulKernel::Dense, MatmulKernel::Sparse] {
            let out = a.matmul_with_kernel(&b, kernel).unwrap();
            assert_agrees(&format!("{label} {kernel:?}"), &reference, &out);
        }
        assert_agrees(&label, &reference, &a.matmul_naive(&b).unwrap());
    }
}
