//! Distributed-execution pillar: proves the lease-based coordinator/worker
//! layer delivers the same sweep as a single process, under injected
//! protocol faults.
//!
//! Contracts under test:
//!
//! * **bit-identity** — a multi-worker distributed run, a zero-worker
//!   (solo-fallback) run and a plain `run_resilient` produce byte-equal
//!   curves, and a re-run resumes everything from the journal;
//! * **exactly-once journal** — every point ends up with exactly one
//!   journal file, even when duplicates race;
//! * the three dist fault sites — `dist_lease_grant`, `dist_heartbeat`,
//!   `dist_result_write` — each cost one protocol step, never the sweep:
//!   worker death is absorbed by lease expiry + re-dispatch, a dropped
//!   result delivery is re-dispatched, a grant failure is retried.
//!
//! Every test holds a `FaultGuard` for its entire duration (the fault
//! registry is process-global), which also serialises these tests against
//! each other under the parallel test runner.

use advcomp_attacks::{AttackKind, NetKind};
use advcomp_core::dist::{run_local, DistRunConfig};
use advcomp_core::resilience::RetryPolicy;
use advcomp_core::sweep::{MatrixRun, RunConfig, TransferMatrix};
use advcomp_core::ExperimentScale;
use advcomp_nn::faults::{install, FaultKind, FaultSpec};
use std::path::{Path, PathBuf};

fn serial_tiny() -> ExperimentScale {
    let mut scale = ExperimentScale::tiny();
    // Serial workers make fault-site hit indices deterministic.
    scale.max_workers = 1;
    scale
}

fn two_point_matrix() -> TransferMatrix {
    TransferMatrix::pruning(NetKind::LeNet5, vec![AttackKind::Ifgsm], &[1.0, 0.3])
}

fn temp_run_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "advcomp-dist-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dist_cfg(run_dir: &Path) -> DistRunConfig {
    let mut cfg = DistRunConfig::new(run_dir.to_path_buf());
    // Timing knobs shrunk to test scale: fast heartbeats, quick expiry,
    // near-immediate solo fallback.
    cfg.dist.heartbeat_ms = 40;
    cfg.dist.lease_ms = 300;
    cfg.dist.solo_grace_ms = 50;
    cfg
}

/// The single-process reference for the same matrix/scale/seed.
fn single_process(matrix: &TransferMatrix) -> MatrixRun {
    let cfg = RunConfig {
        seed: 7,
        run_dir: None,
        retry: RetryPolicy::sweep_default(),
    };
    matrix.run_resilient(&serial_tiny(), &cfg).unwrap()
}

fn journal_file_count(run_dir: &Path) -> usize {
    std::fs::read_dir(run_dir.join("points"))
        .map(|d| d.filter_map(Result::ok).count())
        .unwrap_or(0)
}

#[test]
fn distributed_solo_and_single_process_runs_are_bit_identical() {
    let _g = install(vec![]);
    let matrix = two_point_matrix();
    let reference = single_process(&matrix);

    // Two local workers over the real TCP protocol.
    let run_dir = temp_run_dir("ident");
    let cfg = dist_cfg(&run_dir);
    let dist = run_local(&matrix, &serial_tiny(), &cfg, 2).unwrap();
    assert_eq!(
        serde_json::to_string(&dist.run.results).unwrap(),
        serde_json::to_string(&reference.results).unwrap(),
        "distributed curves must be byte-equal to the single-process run"
    );
    assert_eq!(dist.report.divergent, 0);
    assert_eq!(dist.report.computed_remote + dist.report.computed_solo, 2);
    // Exactly-once journal: one file per point, duplicates resolved.
    assert_eq!(journal_file_count(&run_dir), 2);

    // Re-run over the same journal: everything resumes, nothing recomputes.
    let resumed = run_local(&matrix, &serial_tiny(), &cfg, 2).unwrap();
    assert_eq!((resumed.run.resumed, resumed.run.computed), (2, 0));
    assert_eq!(
        serde_json::to_string(&resumed.run.results).unwrap(),
        serde_json::to_string(&reference.results).unwrap()
    );
    assert_eq!(journal_file_count(&run_dir), 2);

    // Zero workers: the coordinator degrades to finishing the sweep alone.
    let solo_dir = temp_run_dir("solo");
    let solo = run_local(&matrix, &serial_tiny(), &dist_cfg(&solo_dir), 0).unwrap();
    assert_eq!(solo.report.computed_solo, 2, "{:?}", solo.report);
    assert_eq!(solo.report.computed_remote, 0);
    assert_eq!(
        serde_json::to_string(&solo.run.results).unwrap(),
        serde_json::to_string(&reference.results).unwrap(),
        "solo-fallback curves must be byte-equal to the single-process run"
    );

    let _ = std::fs::remove_dir_all(&run_dir);
    let _ = std::fs::remove_dir_all(&solo_dir);
}

#[test]
fn worker_death_mid_point_costs_only_that_lease() {
    // The first heartbeat fires a panic: the worker holding the lease dies
    // mid-compute (its compute thread finishes, but the protocol thread —
    // and with it the connection — unwinds). The lease expires or the EOF
    // releases it; the point is re-dispatched and the sweep completes.
    let _g = install(vec![FaultSpec::once(FaultKind::Panic, "dist_heartbeat", 0)]);
    let matrix = two_point_matrix();
    let run_dir = temp_run_dir("death");
    let mut cfg = dist_cfg(&run_dir);
    // Hold points in flight long enough that the heartbeat (and its
    // injected panic) definitely fires before the point completes.
    cfg.worker_slow_ms = 250;
    let dist = run_local(&matrix, &serial_tiny(), &cfg, 2).unwrap();

    assert!(
        dist.report.redispatches >= 1,
        "the dead worker's point must be re-dispatched: {:?}",
        dist.report
    );
    assert!(
        dist.report.leases_expired + dist.report.workers_lost >= 1,
        "the death must surface as lease expiry and/or a lost worker: {:?}",
        dist.report
    );
    assert_eq!(dist.run.computed, 2);
    assert!(dist.run.failed.is_empty(), "{:?}", dist.run.failed);
    assert_eq!(dist.report.divergent, 0);
    assert_eq!(journal_file_count(&run_dir), 2);
    let _ = std::fs::remove_dir_all(&run_dir);
}

#[test]
fn grant_fault_costs_one_request_not_the_worker() {
    // The first lease grant fails with an injected I/O error: the worker is
    // told to wait and simply asks again.
    let _g = install(vec![FaultSpec::once(FaultKind::Io, "dist_lease_grant", 0)]);
    let matrix = two_point_matrix();
    let run_dir = temp_run_dir("grant");
    let dist = run_local(&matrix, &serial_tiny(), &dist_cfg(&run_dir), 1).unwrap();

    assert_eq!(dist.report.grant_errors, 1, "{:?}", dist.report);
    assert_eq!(dist.report.workers_lost, 0);
    assert_eq!(dist.run.computed, 2);
    assert!(dist.run.failed.is_empty(), "{:?}", dist.run.failed);
    let _ = std::fs::remove_dir_all(&run_dir);
}

#[test]
fn suppressed_heartbeats_expire_the_lease_without_losing_the_point() {
    // A sticky I/O fault swallows every heartbeat (the slow-network failure
    // mode): the lease expires, but the worker's eventual result is still
    // accepted — completion is owned by the journal, not the lease.
    let _g = install(vec![FaultSpec::sticky(FaultKind::Io, "dist_heartbeat", 0)]);
    let matrix = two_point_matrix();
    let run_dir = temp_run_dir("expire");
    let mut cfg = dist_cfg(&run_dir);
    cfg.dist.lease_ms = 120;
    cfg.worker_slow_ms = 300;
    let dist = run_local(&matrix, &serial_tiny(), &cfg, 1).unwrap();

    assert!(
        dist.report.leases_expired >= 1,
        "unrefreshed leases must expire: {:?}",
        dist.report
    );
    assert_eq!(dist.run.computed, 2);
    assert!(dist.run.failed.is_empty(), "{:?}", dist.run.failed);
    assert_eq!(journal_file_count(&run_dir), 2);
    let _ = std::fs::remove_dir_all(&run_dir);
}

#[test]
fn dropped_result_delivery_is_redispatched_and_converges() {
    // The first result persist fails: that delivery is dropped and the
    // lease released, the point re-dispatches, the second delivery lands —
    // and the journal still holds exactly one file per point.
    let _g = install(vec![FaultSpec::once(FaultKind::Io, "dist_result_write", 0)]);
    let matrix = two_point_matrix();
    let run_dir = temp_run_dir("reswrite");
    let dist = run_local(&matrix, &serial_tiny(), &dist_cfg(&run_dir), 1).unwrap();

    assert_eq!(dist.report.result_write_errors, 1, "{:?}", dist.report);
    assert!(
        dist.report.redispatches >= 1,
        "the dropped point must be re-dispatched: {:?}",
        dist.report
    );
    assert_eq!(dist.run.computed, 2);
    assert!(dist.run.failed.is_empty(), "{:?}", dist.run.failed);
    assert_eq!(dist.report.divergent, 0);
    assert_eq!(journal_file_count(&run_dir), 2);
    let _ = std::fs::remove_dir_all(&run_dir);
}
