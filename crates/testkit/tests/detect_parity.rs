//! Detection-subsystem parity: pillar 9 of the verification strategy.
//!
//! The calibrated guard only defends what it was calibrated for, so this
//! suite pins the three artefacts the detection pipeline produces:
//!
//! 1. **UAP crafting golden**: universal-perturbation crafting is a
//!    deterministic function of (model, crafting set, config); under the
//!    scalar kernel pin its delta must be **bit-identical** PR-to-PR, so
//!    the checked-in golden catches any silent change to the sign-ascent
//!    loop, the shuffle stream or the gradient kernels.
//! 2. **ROC differential**: the threshold-sweep ROC builder against a
//!    rank-based O(n·m) Mann-Whitney reference — trapezoid AUC must equal
//!    the probabilistic definition (ties counted half) to 1e-12, and the
//!    curve itself must be monotone from (0,0) to (1,1).
//! 3. **Calibration artifact round-trip**: every single-byte corruption of
//!    a serialised `DetectorCalibration` must surface as an explicit
//!    artifact error, never as silently wrong thresholds.

use advcomp_attacks::{craft_uap, UapConfig};
use advcomp_detect::{reference_auc, DetectError, DetectorCalibration, RocCurve};
use advcomp_testkit::fixtures;
use advcomp_testkit::golden::{self, tensor_json};
use advcomp_testkit::json::Json;
use advcomp_testkit::DetRng;

// ---------------------------------------------------------------------------
// Pillar 9a: UAP crafting conformance.
// ---------------------------------------------------------------------------

/// Seed of the fixture model (matches the `goldens` suite fixture family).
const MODEL_SEED: u64 = 42;
/// Seed of the crafting batch.
const BATCH_SEED: u64 = 7;
/// Seed of the crafting labels.
const LABEL_SEED: u64 = 9;
/// Crafting-set size: two minibatches, so the seeded shuffle order matters.
const CRAFT: usize = 16;

fn uap_config() -> UapConfig {
    UapConfig {
        epsilon: 0.1,
        step: 0.025,
        epochs: 3,
        batch: 8,
        seed: 11,
    }
}

fn uap_doc() -> Json {
    let mut model = fixtures::lenet(MODEL_SEED);
    let x = fixtures::image_batch(BATCH_SEED, CRAFT);
    let y = fixtures::labels(LABEL_SEED, CRAFT, fixtures::LENET_CLASSES);
    let cfg = uap_config();
    let uap = craft_uap(&mut model, &x, &y, &cfg).expect("uap crafting");
    let applied = uap.apply(&x).expect("uap apply");
    Json::Obj(vec![
        ("model_seed".into(), Json::from_usize(MODEL_SEED as usize)),
        ("epsilon".into(), Json::from_f32(cfg.epsilon)),
        ("step".into(), Json::from_f32(cfg.step)),
        ("epochs".into(), Json::from_usize(cfg.epochs)),
        ("shuffle_seed".into(), Json::from_usize(cfg.seed as usize)),
        ("labels".into(), Json::usize_array(&y)),
        ("delta".into(), tensor_json(uap.delta())),
        ("applied".into(), tensor_json(&applied)),
    ])
}

#[test]
fn uap_crafting_conforms() {
    advcomp_testkit::pin_kernel("scalar");
    golden::check_or_regen("lenet_uap", &uap_doc()).unwrap();
}

/// Crafting the same UAP twice in one process must be bit-identical — the
/// property that makes the golden above meaningful.
#[test]
fn uap_crafting_replays_bit_exact() {
    advcomp_testkit::pin_kernel("scalar");
    let a = uap_doc().to_pretty_string();
    let b = uap_doc().to_pretty_string();
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------------
// Pillar 9b: ROC builder vs rank-based reference.
// ---------------------------------------------------------------------------

/// Deterministic score sets with deliberate ties (scores snapped to a
/// coarse lattice) so the tie-group handling in both the curve builder and
/// the trapezoid AUC is exercised, not just the generic position.
fn tied_scores(seed: u64, n: usize, shift: f32) -> Vec<f64> {
    DetRng::new(seed)
        .vec_f32(n, 0.0, 1.0)
        .into_iter()
        .map(|v| (((v + shift).clamp(0.0, 1.0) * 8.0).round() / 8.0) as f64)
        .collect()
}

#[test]
fn roc_curve_is_monotone_and_auc_matches_reference() {
    for seed in 0..6u64 {
        let clean = tied_scores(seed * 2 + 1, 37, 0.0);
        let adv = tied_scores(seed * 2 + 2, 23, 0.3);
        let curve = RocCurve::from_scores(&clean, &adv).unwrap();
        let pts = curve.points();
        let first = pts.first().expect("curve is non-empty");
        let last = pts.last().expect("curve is non-empty");
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0), "seed {seed}: origin");
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0), "seed {seed}: terminus");
        for w in pts.windows(2) {
            assert!(
                w[1].fpr >= w[0].fpr && w[1].tpr >= w[0].tpr,
                "seed {seed}: ROC must be monotone, got {:?} -> {:?}",
                w[0],
                w[1]
            );
            assert!(
                w[1].threshold < w[0].threshold,
                "seed {seed}: thresholds must strictly descend"
            );
        }
        let auc = curve.auc();
        let reference = reference_auc(&clean, &adv).unwrap();
        assert!(
            (auc - reference).abs() < 1e-12,
            "seed {seed}: trapezoid AUC {auc} vs Mann-Whitney {reference}"
        );
    }
}

#[test]
fn operating_point_is_tightest_under_budget() {
    let clean = tied_scores(91, 64, 0.0);
    let adv = tied_scores(92, 64, 0.25);
    let curve = RocCurve::from_scores(&clean, &adv).unwrap();
    for target in [0.0, 0.05, 0.1, 0.5, 1.0] {
        let op = curve.operating_point(target).unwrap();
        assert!(
            op.fpr <= target,
            "target {target}: fpr {} over budget",
            op.fpr
        );
        // "Tightest": every curve point with a higher TPR busts the budget.
        for p in curve.points() {
            if p.tpr > op.tpr {
                assert!(
                    p.fpr > target,
                    "target {target}: point {p:?} dominates chosen {op:?}"
                );
            }
        }
    }
    assert!(curve.operating_point(-0.1).is_err());
    assert!(curve.operating_point(1.5).is_err());
}

// ---------------------------------------------------------------------------
// Pillar 9c: calibration artifact integrity.
// ---------------------------------------------------------------------------

fn sample_calibration() -> DetectorCalibration {
    let clean = tied_scores(71, 40, 0.0);
    let adv = tied_scores(72, 40, 0.35);
    DetectorCalibration::calibrate("divergence", &clean, &adv, 0.05).unwrap()
}

#[test]
fn calibration_artifact_round_trips() {
    let cal = sample_calibration();
    let bytes = cal.to_bytes();
    let back = DetectorCalibration::from_bytes(&bytes).unwrap();
    assert_eq!(back, cal);

    let dir = std::env::temp_dir().join(format!("advcomp_detect_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("guard.advd");
    cal.save(&path).unwrap();
    assert_eq!(DetectorCalibration::load(&path).unwrap(), cal);
    std::fs::remove_dir_all(&dir).ok();
}

/// Flipping any single byte — header, payload or CRC footer — must be an
/// explicit artifact error; a corrupt threshold silently deployed would be
/// a security hole, not a bug.
#[test]
fn every_single_byte_corruption_is_detected() {
    let bytes = sample_calibration().to_bytes();
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        assert!(
            matches!(
                DetectorCalibration::from_bytes(&bad),
                Err(DetectError::Artifact(_))
            ),
            "flip at byte {i} went undetected"
        );
    }
    // Truncation and trailing garbage are corruption too.
    assert!(matches!(
        DetectorCalibration::from_bytes(&bytes[..bytes.len() - 1]),
        Err(DetectError::Artifact(_))
    ));
    let mut long = bytes.clone();
    long.push(0);
    assert!(matches!(
        DetectorCalibration::from_bytes(&long),
        Err(DetectError::Artifact(_))
    ));
}
