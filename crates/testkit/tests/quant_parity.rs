//! Integer-execution parity: the packed block-quantised weight format and
//! the fused int8 GEMM/conv kernels vs the `qformat`-simulated float path.
//!
//! Three pillars, mirroring `DESIGN.md`'s "integer execution" contract:
//!
//! 1. **Pack round-trip**: `QTensor::quantize` → `dequantize` must be
//!    bit-exact with `QFormat::quantize` over the *entire* code range of
//!    the paper's Q1.3 (4-bit) and Q2.6 (8-bit) formats, plus off-grid and
//!    saturating inputs.
//! 2. **Differential kernel fuzzing**: the fused int8 GEMM (both backends)
//!    and the frozen `Conv2d` forward vs f64-accumulated references over
//!    randomized shape sweeps, gated on relative L2 error.
//! 3. **Bit-exact simulated parity + golden**: on the scalar backend a
//!    frozen (packed) model forward is *bit-identical* to the simulated
//!    FakeQuant/rounded-weight forward, and the packed LeNet forward is
//!    pinned by a checked-in golden under `tests/goldens/`.

use advcomp_compress::Quantizer;
use advcomp_nn::{Conv2d, Dense, FakeQuant, Flatten, Layer, MaxPool2d, Mode, Relu, Sequential};
use advcomp_qformat::QFormat;
use advcomp_tensor::{quantize_activations, KernelBackend, QTensor, Tensor, QK};
use advcomp_testkit::diffref::{self, conv2d_direct};
use advcomp_testkit::fixtures::{self, materialize_params};
use advcomp_testkit::golden::{self, tensor_json};
use advcomp_testkit::json::Json;
use advcomp_testkit::DetRng;
use rand::SeedableRng;

/// Relative L2 distance `|a - b|₂ / max(|b|₂, ε)`.
fn rel_l2(actual: &[f32], expected: &[f32]) -> f64 {
    assert_eq!(actual.len(), expected.len(), "length mismatch");
    let mut diff = 0.0f64;
    let mut norm = 0.0f64;
    for (&a, &e) in actual.iter().zip(expected) {
        diff += (f64::from(a) - f64::from(e)).powi(2);
        norm += f64::from(e).powi(2);
    }
    (diff / norm.max(1e-30)).sqrt()
}

/// Relative-L2 gate for the differential sweeps. The kernels accumulate
/// per-block sums in i32 exactly; only the cross-block f32 accumulation
/// can differ from the f64 reference, so the bound is tight.
const REL_L2_GATE: f64 = 1e-5;

// ---------------------------------------------------------------------------
// Pillar 1: pack → unpack round-trip vs QFormat, full code range.
// ---------------------------------------------------------------------------

/// Every representable value of Q1.3 and Q2.6 must survive the packed
/// format bit-exactly, and the stored codes must be exactly
/// `QFormat::encode` of the value.
#[test]
fn pack_roundtrip_is_bit_exact_over_full_code_range() {
    advcomp_testkit::pin_kernel("scalar");
    for bits in [4u32, 8] {
        let fmt = QFormat::for_bitwidth(bits).unwrap();
        let raws: Vec<i64> = (fmt.min_raw()..=fmt.max_raw()).collect();
        let values: Vec<f32> = raws.iter().map(|&r| fmt.decode(r)).collect();
        let qt = QTensor::quantize(&values, &[1, values.len()], fmt).unwrap();
        let back = qt.dequantize();
        for (i, (&raw, &v)) in raws.iter().zip(&values).enumerate() {
            assert_eq!(
                i64::from(qt.code(0, i)),
                raw,
                "{bits}-bit code for {v} must be the QFormat raw code"
            );
            assert_eq!(
                back[i].to_bits(),
                v.to_bits(),
                "{bits}-bit round-trip of grid value {v}"
            );
        }
    }
}

/// Off-grid and saturating inputs: the packed round-trip must land on the
/// same grid point as `QFormat::quantize` (same rounding, same clamping),
/// bit for bit.
#[test]
fn pack_roundtrip_matches_qformat_quantize_off_grid() {
    advcomp_testkit::pin_kernel("scalar");
    let mut rng = DetRng::new(0x9A11);
    for bits in [4u32, 8] {
        let fmt = QFormat::for_bitwidth(bits).unwrap();
        // Sweep 3× beyond the representable range so saturation is hit.
        let span = 3.0 * fmt.max_value().abs().max(fmt.min_value().abs());
        let values = rng.vec_f32(4 * QK + 7, -span, span);
        let qt = QTensor::quantize(&values, &[1, values.len()], fmt).unwrap();
        let back = qt.dequantize();
        for (i, &v) in values.iter().enumerate() {
            let expected = fmt.quantize(v);
            assert_eq!(
                back[i].to_bits(),
                expected.to_bits(),
                "{bits}-bit pack of off-grid {v}: {} vs {expected}",
                back[i]
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Pillar 2: differential fuzzing vs f64 references.
// ---------------------------------------------------------------------------

/// f64-accumulated reference for the fused int8 GEMM: decodes every code
/// and sums in f64 (strictly more accurate than any production path).
fn qgemm_f64(act_data: &[f32], m: usize, fmt: QFormat, w: &QTensor) -> Vec<f32> {
    let act = quantize_activations(KernelBackend::Scalar, act_data, m, w.cols(), fmt).unwrap();
    let bpr = w.blocks_per_row();
    let (n, cols) = (w.rows(), w.cols());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &act.codes()[i * bpr * QK..(i + 1) * bpr * QK];
        for j in 0..n {
            let mut acc = 0.0f64;
            for b in 0..bpr {
                let mut block = 0i64;
                for l in 0..QK {
                    let col = b * QK + l;
                    if col >= cols {
                        break;
                    }
                    block += i64::from(a_row[col]) * i64::from(w.code(j, col));
                }
                acc += block as f64 * f64::from(w.scales()[j * bpr + b]) * f64::from(act.scale());
            }
            out[i * n + j] = acc as f32;
        }
    }
    out
}

/// Randomized GEMM sweep: the fused int8 kernel on both backends vs the
/// f64 reference, Q1.3 and Q2.6, shapes crossing block and SIMD-tile
/// boundaries. On hardware without AVX2 the Simd backend falls back to
/// scalar at the call site, so this test is meaningful everywhere.
#[test]
fn int8_gemm_matches_f64_reference() {
    advcomp_testkit::pin_kernel("scalar");
    let mut rng = DetRng::new(0x1813);
    for case in 0..60 {
        let m = rng.range_usize(1, 17);
        let k = rng.range_usize(1, 200);
        let n = rng.range_usize(1, 23);
        for bits in [4u32, 8] {
            let fmt = QFormat::for_bitwidth(bits).unwrap();
            let span = fmt.max_value();
            let wdata = rng.vec_f32(n * k, -span, span);
            let adata = rng.vec_f32(m * k, -span, span);
            let w = QTensor::quantize(&wdata, &[n, k], fmt).unwrap();
            let reference = qgemm_f64(&adata, m, fmt, &w);
            for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
                let mut out = vec![0.0f32; m * n];
                advcomp_tensor::qmatmul_f32(backend, &adata, m, fmt, &w, &mut out).unwrap();
                let err = rel_l2(&out, &reference);
                assert!(
                    err <= REL_L2_GATE,
                    "case {case} {bits}-bit {backend:?} {m}x{k}x{n}: rel-L2 {err:e}"
                );
            }
        }
    }
}

/// Frozen `Conv2d` forward vs the direct f64 convolution reference on
/// pre-quantised inputs and weights, over the shared randomized conv
/// sweep. The frozen layer quantises its input on entry; feeding it
/// already-on-grid values makes that step the identity, so the reference
/// is exactly the integer convolution the packed path computes.
#[test]
fn frozen_conv2d_matches_f64_reference() {
    advcomp_testkit::pin_kernel("scalar");
    let fmt = QFormat::for_bitwidth(8).unwrap();
    let mut init_rng = rand::rngs::StdRng::seed_from_u64(0);
    for case in diffref::conv_cases(0x0CC5, 40) {
        let (oc, c, k) = (
            case.weight.shape()[0],
            case.weight.shape()[1],
            case.weight.shape()[2],
        );
        let qinput = case.input.map(|v| fmt.quantize(v));
        let qweight = case.weight.map(|v| fmt.quantize(v));
        let reference = conv2d_direct(&qinput, &qweight, &case.bias, case.stride, case.padding);

        let mut conv =
            Conv2d::with_name("fuzz", c, oc, k, case.stride, case.padding, &mut init_rng);
        for p in conv.params_mut() {
            if p.name.ends_with(".weight") {
                p.value = qweight.clone();
            } else {
                p.value = Tensor::new(&[oc], case.bias.clone()).unwrap();
            }
        }
        conv.freeze_quantized(fmt, fmt).unwrap();
        let produced = conv.forward(&qinput, Mode::Eval).expect("frozen forward");
        assert_eq!(produced.shape(), reference.shape(), "case {}", case.index);
        let err = rel_l2(produced.data(), reference.data());
        assert!(
            err <= REL_L2_GATE,
            "conv case {} (x {:?}, w {:?}, stride {}, pad {}): rel-L2 {err:e}",
            case.index,
            case.input.shape(),
            case.weight.shape(),
            case.stride,
            case.padding
        );
    }
}

// ---------------------------------------------------------------------------
// Pillar 3: bit-exact parity with the simulated path, plus a golden.
// ---------------------------------------------------------------------------

/// The goldens' LeNet fixture with a `FakeQuant` point in front of every
/// weighted layer — the simulated-quantisation topology. The packed model
/// quantises layer inputs on entry with the same format, so once the
/// simulated path also quantises them the two compute the same integer
/// arithmetic.
fn fq_lenet(seed: u64) -> Sequential {
    let mut init_rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut model = Sequential::new(vec![
        Box::new(FakeQuant::new()),
        Box::new(Conv2d::with_name("conv1", 1, 4, 3, 1, 1, &mut init_rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(FakeQuant::new()),
        Box::new(Conv2d::with_name("conv2", 4, 8, 3, 1, 0, &mut init_rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(FakeQuant::new()),
        Box::new(Dense::with_name(
            "fc",
            8,
            fixtures::LENET_CLASSES,
            &mut init_rng,
        )),
    ]);
    materialize_params(&mut model, &mut DetRng::new(seed));
    model
}

/// The acceptance pin: on the scalar backend, the packed integer forward
/// is **bit-identical** to the simulated FakeQuant/rounded-weight float
/// forward. Per-block i32 sums scaled by power-of-two block scales stay
/// exactly representable in f32 at these layer sizes, so the two paths
/// compute the same bits despite different accumulation orders.
#[test]
fn packed_forward_is_bit_exact_with_simulated_quantisation() {
    advcomp_testkit::pin_kernel("scalar");
    let x = fixtures::image_batch(7, 4);
    for bits in [4u32, 8] {
        let q = Quantizer::for_bitwidth(bits).unwrap();

        let mut simulated = fq_lenet(42);
        q.quantize(&mut simulated);
        let sim_logits = simulated.forward(&x, Mode::Eval).unwrap();

        let mut packed = fq_lenet(42);
        let frozen = q.quantize_frozen(&mut packed).unwrap();
        assert_eq!(frozen, 3, "conv1, conv2 and fc must freeze");
        let packed_logits = packed.forward(&x, Mode::Eval).unwrap();

        assert_eq!(sim_logits.shape(), packed_logits.shape());
        for (i, (s, p)) in sim_logits
            .data()
            .iter()
            .zip(packed_logits.data())
            .enumerate()
        {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "{bits}-bit logit {i}: simulated {s} vs packed {p}"
            );
        }
    }
}

/// Checked-in golden for the packed 8-bit LeNet forward (scalar backend):
/// any drift in the block format, the activation encode, or the fused
/// GEMM/conv kernels shows up as a bit-level diff here.
#[test]
fn packed_lenet_forward_conforms() {
    advcomp_testkit::pin_kernel("scalar");
    let mut model = fq_lenet(42);
    Quantizer::for_bitwidth(8)
        .unwrap()
        .quantize_frozen(&mut model)
        .unwrap();
    let x = fixtures::image_batch(7, 4);
    let logits = model.forward(&x, Mode::Eval).unwrap();
    let packed: Vec<(String, Json)> = model
        .export_quantized()
        .iter()
        .map(|(name, qw)| {
            (
                name.clone(),
                Json::Obj(vec![
                    ("kind".into(), Json::Str(qw.tensor().kind().name().into())),
                    ("packed_bytes".into(), Json::from_usize(qw.packed_bytes())),
                ]),
            )
        })
        .collect();
    let doc = Json::Obj(vec![
        ("model_seed".into(), Json::from_usize(42)),
        ("bitwidth".into(), Json::from_usize(8)),
        ("packed".into(), Json::Obj(packed)),
        ("input".into(), tensor_json(&x)),
        ("logits".into(), tensor_json(&logits)),
    ]);
    golden::check_or_regen("lenet_packed_q8_forward", &doc).unwrap();
}
