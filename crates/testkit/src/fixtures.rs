//! Deterministic model and data fixtures for golden vectors.
//!
//! Every fixture is materialised from [`DetRng`] streams: layers are
//! constructed through the normal `advcomp_nn` constructors (which draw
//! initial weights from whatever `rand` the workspace links) and then
//! **every parameter value is overwritten** from the testkit's own
//! generator. The resulting network is therefore identical in every build
//! environment — the property the checked-in goldens rely on.

use crate::det::DetRng;
use advcomp_nn::{Conv2d, Dense, Flatten, MaxPool2d, Relu, Sequential};
use advcomp_tensor::Tensor;
use rand::SeedableRng;

/// Classes predicted by the LeNet-style fixture.
pub const LENET_CLASSES: usize = 10;

/// Input image side length for the LeNet-style fixture.
pub const LENET_IMAGE: usize = 8;

/// Overwrites every parameter of `model` with uniform values from `rng`.
///
/// Weights and biases are drawn in `[-0.5, 0.5)` in parameter order (layer
/// order, weight before bias), consuming one stream value per scalar — so
/// the fill is a pure function of the seed and the architecture.
pub fn materialize_params(model: &mut Sequential, rng: &mut DetRng) {
    for p in model.params_mut() {
        for v in p.value.data_mut() {
            *v = rng.range_f32(-0.5, 0.5);
        }
    }
}

/// A tiny LeNet-style convolutional classifier on 8×8 single-channel
/// images:
///
/// ```text
/// conv1: Conv2d(1→4, k3, s1, p1) → ReLU → MaxPool(2,2)
/// conv2: Conv2d(4→8, k3, s1, p0) → ReLU → MaxPool(2,2)
/// Flatten → fc: Dense(8→10)
/// ```
///
/// All parameters come from a [`DetRng`] seeded with `seed`; the `rand`
/// stream used during layer construction is discarded.
pub fn lenet(seed: u64) -> Sequential {
    // Constructor rng only shapes the throwaway init; any stream works.
    let mut init_rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut model = Sequential::new(vec![
        Box::new(Conv2d::with_name("conv1", 1, 4, 3, 1, 1, &mut init_rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Conv2d::with_name("conv2", 4, 8, 3, 1, 0, &mut init_rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(Flatten::new()),
        Box::new(Dense::with_name("fc", 8, LENET_CLASSES, &mut init_rng)),
    ]);
    let mut rng = DetRng::new(seed);
    materialize_params(&mut model, &mut rng);
    model
}

/// A batch of deterministic `[batch, 1, 8, 8]` images with pixels in
/// `[0, 1)` — the domain the attacks clamp to.
pub fn image_batch(seed: u64, batch: usize) -> Tensor {
    let mut rng = DetRng::new(seed);
    let data = rng.vec_f32(batch * LENET_IMAGE * LENET_IMAGE, 0.0, 1.0);
    Tensor::new(&[batch, 1, LENET_IMAGE, LENET_IMAGE], data)
        .expect("fixture shape is consistent by construction")
}

/// Deterministic labels in `[0, classes)`.
pub fn labels(seed: u64, batch: usize, classes: usize) -> Vec<usize> {
    let mut rng = DetRng::new(seed);
    (0..batch).map(|_| rng.range_usize(0, classes)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::Mode;

    #[test]
    fn lenet_is_seed_deterministic() {
        let mut a = lenet(11);
        let mut b = lenet(11);
        let x = image_batch(3, 2);
        let ya = a.forward(&x, Mode::Eval).unwrap();
        let yb = b.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ya.data(), yb.data());
        assert_eq!(ya.shape(), &[2, LENET_CLASSES]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = lenet(1);
        let b = lenet(2);
        let wa = &a.param("conv1.weight").unwrap().value;
        let wb = &b.param("conv1.weight").unwrap().value;
        assert_ne!(wa.data(), wb.data());
    }

    #[test]
    fn image_batch_is_in_unit_range() {
        let x = image_batch(5, 3);
        assert!(x.data().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn labels_are_in_range() {
        let l = labels(7, 50, LENET_CLASSES);
        assert!(l.iter().all(|&c| c < LENET_CLASSES));
    }
}
