//! Minimal self-contained JSON reader/writer for golden files.
//!
//! The workspace's `serde_json` is stubbed in offline containers, and the
//! golden format needs one property serde does not promise anyway: **f32
//! bit-exactness through a text round-trip**. Values are therefore written
//! with Rust's shortest-round-trip `{:?}` formatting and kept as *raw
//! number tokens* when parsed, so the consumer re-parses the exact token
//! with `str::parse::<f32>` — no intermediate f64 double-rounding, no
//! dependency on any external crate's float grammar.
//!
//! Objects preserve insertion order (backed by a `Vec`), which makes the
//! writer deterministic: regenerating an unchanged golden produces a
//! byte-identical file, so `git diff` is a drift detector.

use std::fmt::Write as _;

/// A JSON value. Numbers are raw tokens (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal token.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved key order.
    Obj(Vec<(String, Json)>),
}

/// Parse or serialization failure with a byte offset for context.
#[derive(Debug, Clone)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Number from an `f32`, shortest round-trip representation.
    pub fn from_f32(v: f32) -> Json {
        assert!(v.is_finite(), "golden values must be finite, got {v}");
        Json::Num(format!("{v:?}"))
    }

    /// Number from a `usize`.
    pub fn from_usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// Array of `f32` numbers.
    pub fn f32_array(values: &[f32]) -> Json {
        Json::Arr(values.iter().copied().map(Json::from_f32).collect())
    }

    /// Array of `usize` numbers.
    pub fn usize_array(values: &[usize]) -> Json {
        Json::Arr(values.iter().copied().map(Json::from_usize).collect())
    }

    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as an `f32`, re-parsed from the raw token.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// This value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Elementwise `f32` decoding of an array value.
    pub fn as_f32_vec(&self) -> Option<Vec<f32>> {
        self.as_arr()?.iter().map(Json::as_f32).collect()
    }

    /// Elementwise `usize` decoding of an array value.
    pub fn as_usize_vec(&self) -> Option<Vec<usize>> {
        self.as_arr()?.iter().map(Json::as_usize).collect()
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(tok) => out.push_str(tok),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays (the big data payloads) stay on one
                // line to keep golden files compact and diffable per tensor.
                let flat = items
                    .iter()
                    .all(|i| matches!(i, Json::Num(_) | Json::Str(_) | Json::Bool(_)));
                if flat {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write_pretty(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        pad(out, indent + 1);
                        item.write_pretty(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] with a byte offset on malformed input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing data", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", c as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(&format!("expected '{word}'"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(err("expected a number", start));
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad utf8", start))?;
    // Validate the token eagerly so later as_f32() cannot fail silently.
    token
        .parse::<f64>()
        .map_err(|_| err("malformed number", start))?;
    Ok(Json::Num(token.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex).map_err(|_| err("bad utf8", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).ok_or_else(|| err("bad codepoint", *pos))?);
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("bad utf8", *pos))?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_round_trip_is_bit_exact() {
        let values = [
            0.0f32,
            -0.0,
            1.0,
            -1.5,
            std::f32::consts::PI,
            1.0e-38,
            3.4e38,
            f32::from_bits(0x0000_0001), // smallest subnormal
            f32::from_bits(0x3f80_0001), // 1.0 + 1 ulp
        ];
        for &v in &values {
            let text = Json::from_f32(v).to_pretty_string();
            let back = parse(&text).unwrap().as_f32().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v:?} via {text:?}");
        }
    }

    #[test]
    fn object_round_trip_preserves_order_and_content() {
        let doc = Json::Obj(vec![
            ("zeta".into(), Json::from_usize(3)),
            ("alpha".into(), Json::f32_array(&[1.5, -2.25])),
            ("name".into(), Json::Str("a \"quoted\"\nvalue".into())),
            ("flag".into(), Json::Bool(true)),
        ]);
        let text = doc.to_pretty_string();
        let back = parse(&text).unwrap();
        assert_eq!(doc, back);
        // Deterministic writer: same document, same bytes.
        assert_eq!(text, back.to_pretty_string());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1.2.3", "[1] x"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": [true, "x"]}}"#;
        let v = parse(text).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_f32_vec().unwrap(),
            vec![1.0, 2.5, -300.0]
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }
}
