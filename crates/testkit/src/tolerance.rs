//! Comparison policy for numerical test evidence.
//!
//! Three regimes, picked by what the comparison is supposed to prove:
//!
//! * [`Tolerance::BitExact`] — determinism and golden-vector conformance.
//!   The pipeline is deterministic by construction, so any drift — down to
//!   a single ulp — is a real behaviour change and must fail loudly.
//! * [`Tolerance::AbsRel`] — cross-kernel agreement. Different summation
//!   orders (packed-dense vs zero-skip vs triple-loop) legitimately differ
//!   in the last few ulps; the differential fuzzer allows
//!   `|a − b| ≤ abs + rel · max(|a|, |b|)` per element.
//! * [`rel_l2_error`] — gradient checks. Finite differences of a piecewise
//!   smooth loss (ReLU kinks, max-pool argmax flips) can be badly wrong in
//!   isolated elements while the field as a whole is right; aggregate
//!   relative L2 error is the robust statistic.

use std::fmt;

/// Elementwise comparison policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Bitwise equality (`f32::to_bits`), no exceptions.
    BitExact,
    /// `|a − b| ≤ abs + rel · max(|a|, |b|)` per element.
    AbsRel {
        /// Absolute slack.
        abs: f32,
        /// Relative slack.
        rel: f32,
    },
}

impl Tolerance {
    /// The differential fuzzer's default: the ISSUE-mandated `1e-4`
    /// absolute agreement, with a matching relative term for large values.
    pub fn kernel_default() -> Self {
        Tolerance::AbsRel {
            abs: 1e-4,
            rel: 1e-4,
        }
    }

    /// `true` when `a` and `b` agree under this policy.
    pub fn matches(&self, a: f32, b: f32) -> bool {
        match *self {
            Tolerance::BitExact => a.to_bits() == b.to_bits(),
            Tolerance::AbsRel { abs, rel } => {
                let diff = (a - b).abs();
                diff <= abs + rel * a.abs().max(b.abs())
            }
        }
    }
}

/// A single failed element, reported with enough context to debug.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Flat element index.
    pub index: usize,
    /// Expected (golden / reference) value.
    pub expected: f32,
    /// Actual (production) value.
    pub actual: f32,
}

/// Comparison failure: shape disagreement or per-element mismatches.
#[derive(Debug, Clone)]
pub enum CompareError {
    /// Lengths differ — nothing elementwise to report.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// Elementwise failures under the policy.
    Mismatches {
        /// Total number of failing elements.
        count: usize,
        /// Largest absolute difference observed.
        max_abs_diff: f32,
        /// First few failing elements.
        first: Vec<Mismatch>,
    },
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            CompareError::Mismatches {
                count,
                max_abs_diff,
                first,
            } => {
                write!(
                    f,
                    "{count} mismatched elements (max |diff| {max_abs_diff:e});"
                )?;
                for m in first {
                    write!(
                        f,
                        " [{}] expected {:?} got {:?};",
                        m.index, m.expected, m.actual
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompareError {}

/// Number of example mismatches carried in a [`CompareError`].
const REPORTED_MISMATCHES: usize = 4;

/// Compares two slices under `tol`.
///
/// # Errors
///
/// Returns [`CompareError`] describing the divergence when lengths differ
/// or any element fails the policy.
pub fn compare_slices(
    expected: &[f32],
    actual: &[f32],
    tol: Tolerance,
) -> Result<(), CompareError> {
    if expected.len() != actual.len() {
        return Err(CompareError::LengthMismatch {
            expected: expected.len(),
            actual: actual.len(),
        });
    }
    let mut count = 0usize;
    let mut max_abs_diff = 0.0f32;
    let mut first = Vec::new();
    for (i, (&e, &a)) in expected.iter().zip(actual.iter()).enumerate() {
        if !tol.matches(e, a) {
            count += 1;
            max_abs_diff = max_abs_diff.max((e - a).abs());
            if first.len() < REPORTED_MISMATCHES {
                first.push(Mismatch {
                    index: i,
                    expected: e,
                    actual: a,
                });
            }
        }
    }
    if count > 0 {
        return Err(CompareError::Mismatches {
            count,
            max_abs_diff,
            first,
        });
    }
    Ok(())
}

/// Aggregate relative L2 error `‖a − b‖₂ / max(‖b‖₂, floor)` — the
/// gradcheck statistic. `b` is the reference (numeric) side.
pub fn rel_l2_error(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "rel_l2_error: length mismatch");
    let mut diff2 = 0.0f64;
    let mut ref2 = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        diff2 += f64::from(x - y) * f64::from(x - y);
        ref2 += f64::from(y) * f64::from(y);
    }
    (diff2.sqrt() / ref2.sqrt().max(1e-6)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_exact_rejects_one_ulp() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert!(Tolerance::BitExact.matches(a, a));
        assert!(!Tolerance::BitExact.matches(a, b));
    }

    #[test]
    fn absrel_scales_with_magnitude() {
        let tol = Tolerance::AbsRel {
            abs: 1e-4,
            rel: 1e-4,
        };
        assert!(tol.matches(0.0, 5e-5));
        assert!(!tol.matches(0.0, 5e-4));
        assert!(tol.matches(1000.0, 1000.05));
        assert!(!tol.matches(1000.0, 1001.0));
    }

    #[test]
    fn compare_reports_first_mismatches() {
        let e = vec![1.0f32, 2.0, 3.0, 4.0];
        let a = vec![1.0f32, 2.5, 3.0, 4.5];
        match compare_slices(&e, &a, Tolerance::kernel_default()) {
            Err(CompareError::Mismatches { count, first, .. }) => {
                assert_eq!(count, 2);
                assert_eq!(first[0].index, 1);
            }
            other => panic!("expected mismatches, got {other:?}"),
        }
    }

    #[test]
    fn rel_l2_is_zero_for_identical() {
        let v = vec![0.5f32, -2.0, 7.0];
        assert_eq!(rel_l2_error(&v, &v), 0.0);
        let w = vec![0.5f32, -2.0, 7.1];
        assert!(rel_l2_error(&v, &w) > 0.0);
    }
}
