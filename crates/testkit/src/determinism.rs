//! Determinism harness: bit-exact equality across thread caps and reruns.
//!
//! `ADVCOMP_THREADS` is documented as a pure performance knob — kernel
//! banding partitions output rows so each element is computed by exactly
//! one thread with a fixed summation order, which makes parallel output
//! bitwise identical to serial output *by construction*. This module turns
//! that claim into an executable check: run an operation under several
//! per-call parallelism caps ([`advcomp_tensor::pool::with_thread_cap`])
//! and repeated invocations, and require every `f32` of every output to
//! match the first run exactly.

use advcomp_tensor::pool::with_thread_cap;

/// Thread caps every determinism check sweeps, per the acceptance
/// criteria: serial, small-parallel, oversubscribed.
pub const STANDARD_CAPS: [usize; 3] = [1, 2, 8];

/// Runs `op` under each cap in `caps`, `repeats` times per cap, and checks
/// all produced outputs are bit-identical.
///
/// `op` must be a pure function of its captured state: it is invoked
/// `caps.len() × repeats` times and may mutate only state it re-derives
/// each call (e.g. rebuild the model from a fixture seed inside `op`).
/// The returned vector is the flattened concatenation of whatever outputs
/// the operation produces — weights after a train step, adversarial
/// pixels, mask bits, quantised values.
///
/// # Errors
///
/// Returns a human-readable description of the first divergence: which
/// cap/repeat produced it, the flat element index, and both values with
/// their bit patterns.
pub fn check_bit_exact<F>(
    label: &str,
    caps: &[usize],
    repeats: usize,
    mut op: F,
) -> Result<(), String>
where
    F: FnMut() -> Vec<f32>,
{
    assert!(!caps.is_empty() && repeats > 0, "empty determinism sweep");
    let mut reference: Option<(usize, Vec<f32>)> = None;
    for &cap in caps {
        for rep in 0..repeats {
            let out = with_thread_cap(cap, &mut op);
            match &reference {
                None => reference = Some((cap, out)),
                Some((ref_cap, expected)) => {
                    if expected.len() != out.len() {
                        return Err(format!(
                            "{label}: output length changed: cap {ref_cap} produced {}, \
                             cap {cap} (repeat {rep}) produced {}",
                            expected.len(),
                            out.len()
                        ));
                    }
                    for (i, (&e, &a)) in expected.iter().zip(out.iter()).enumerate() {
                        if e.to_bits() != a.to_bits() {
                            return Err(format!(
                                "{label}: element {i} diverged under cap {cap} (repeat {rep}): \
                                 cap {ref_cap} gave {e:?} ({:#010x}), got {a:?} ({:#010x})",
                                e.to_bits(),
                                a.to_bits()
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_pure_op() {
        let r = check_bit_exact("pure", &STANDARD_CAPS, 2, || vec![1.0, 2.5, -3.25]);
        assert!(r.is_ok());
    }

    #[test]
    fn rejects_drifting_op() {
        let mut calls = 0u32;
        let r = check_bit_exact("drift", &[1, 2], 1, || {
            calls += 1;
            // Second invocation differs by one ulp.
            let v = if calls == 1 {
                1.0f32
            } else {
                f32::from_bits(1.0f32.to_bits() + 1)
            };
            vec![v]
        });
        let msg = r.unwrap_err();
        assert!(msg.contains("diverged"), "got: {msg}");
    }

    #[test]
    fn rejects_length_change() {
        let mut calls = 0u32;
        let r = check_bit_exact("len", &[1, 2], 1, || {
            calls += 1;
            vec![0.0; calls as usize]
        });
        assert!(r.unwrap_err().contains("length"));
    }
}
