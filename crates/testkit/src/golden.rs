//! Golden-vector storage: load, compare, regenerate.
//!
//! Golden files live at the repository root under `tests/goldens/`, next to
//! the workspace-level integration tests that consume them. Files are JSON
//! ([`crate::json`]) with f32 payloads in shortest-round-trip notation, so
//! comparison against a freshly computed value is **bit-exact** — a 1-ulp
//! drift anywhere in the pipeline fails conformance.
//!
//! Workflow:
//!
//! * Normal run: the test computes its result, calls [`check_or_regen`],
//!   and fails with a pathed diff if the stored vector disagrees.
//! * After an intentional numerical change: `REGEN_GOLDENS=1 cargo test
//!   -p advcomp-testkit --test goldens` rewrites the files; the `git diff`
//!   is then reviewed like any other source change.

use crate::json::{self, Json};
use advcomp_tensor::Tensor;
use std::path::PathBuf;

/// Environment variable that switches conformance tests into regeneration
/// mode.
pub const REGEN_ENV: &str = "REGEN_GOLDENS";

/// Failure modes of golden handling.
#[derive(Debug)]
pub enum GoldenError {
    /// The golden file does not exist yet (run with `REGEN_GOLDENS=1`).
    Missing(PathBuf),
    /// Filesystem error reading or writing the file.
    Io(PathBuf, std::io::Error),
    /// The stored file is not valid golden JSON.
    Parse(PathBuf, json::JsonError),
    /// Stored and computed values disagree; the string pinpoints where.
    Mismatch {
        /// Offending golden file.
        path: PathBuf,
        /// JSON-path description of the first divergence.
        detail: String,
    },
}

impl std::fmt::Display for GoldenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GoldenError::Missing(p) => write!(
                f,
                "golden file {} is missing — generate it with {REGEN_ENV}=1",
                p.display()
            ),
            GoldenError::Io(p, e) => write!(f, "io error on {}: {e}", p.display()),
            GoldenError::Parse(p, e) => write!(f, "malformed golden {}: {e}", p.display()),
            GoldenError::Mismatch { path, detail } => write!(
                f,
                "golden drift in {}: {detail} (if the change is intentional, \
                 regenerate with {REGEN_ENV}=1 and review the diff)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for GoldenError {}

/// Absolute path of the golden directory (`<repo root>/tests/goldens`).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("tests")
        .join("goldens")
}

/// Path of the golden file for `name` (extension added here).
pub fn golden_path(name: &str) -> PathBuf {
    golden_dir().join(format!("{name}.json"))
}

/// `true` when the current process was asked to regenerate goldens.
pub fn regen_requested() -> bool {
    std::env::var(REGEN_ENV).map(|v| v == "1").unwrap_or(false)
}

/// Loads and parses the golden file for `name`.
///
/// # Errors
///
/// [`GoldenError::Missing`], [`GoldenError::Io`] or [`GoldenError::Parse`].
pub fn load(name: &str) -> Result<Json, GoldenError> {
    let path = golden_path(name);
    if !path.exists() {
        return Err(GoldenError::Missing(path));
    }
    let text = std::fs::read_to_string(&path).map_err(|e| GoldenError::Io(path.clone(), e))?;
    json::parse(&text).map_err(|e| GoldenError::Parse(path, e))
}

/// Writes `value` as the golden file for `name`, creating the directory if
/// needed.
///
/// # Errors
///
/// [`GoldenError::Io`] on filesystem failure.
pub fn save(name: &str, value: &Json) -> Result<(), GoldenError> {
    let path = golden_path(name);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| GoldenError::Io(path.clone(), e))?;
    }
    std::fs::write(&path, value.to_pretty_string()).map_err(|e| GoldenError::Io(path, e))
}

/// The conformance entry point: in regeneration mode, saves `computed`;
/// otherwise loads the stored golden and compares bit-exactly.
///
/// # Errors
///
/// Any [`GoldenError`]; in particular [`GoldenError::Mismatch`] with a
/// JSON-path pointer to the first divergent value.
pub fn check_or_regen(name: &str, computed: &Json) -> Result<(), GoldenError> {
    if regen_requested() {
        return save(name, computed);
    }
    let stored = load(name)?;
    compare_json(&stored, computed, "$").map_err(|detail| GoldenError::Mismatch {
        path: golden_path(name),
        detail,
    })
}

/// Structural bit-exact comparison, reporting the JSON path of the first
/// difference. Numbers compare by parsed `f32` bit pattern (so `1` vs
/// `1.0` in a hand-edited file still matches), everything else compares
/// structurally.
pub fn compare_json(expected: &Json, actual: &Json, path: &str) -> Result<(), String> {
    match (expected, actual) {
        (Json::Num(e), Json::Num(a)) => {
            let (pe, pa) = (e.parse::<f32>(), a.parse::<f32>());
            match (pe, pa) {
                (Ok(ve), Ok(va)) if ve.to_bits() == va.to_bits() => Ok(()),
                _ => Err(format!("{path}: expected {e}, got {a}")),
            }
        }
        (Json::Str(e), Json::Str(a)) if e == a => Ok(()),
        (Json::Bool(e), Json::Bool(a)) if e == a => Ok(()),
        (Json::Null, Json::Null) => Ok(()),
        (Json::Arr(e), Json::Arr(a)) => {
            if e.len() != a.len() {
                return Err(format!(
                    "{path}: array length expected {}, got {}",
                    e.len(),
                    a.len()
                ));
            }
            for (i, (ev, av)) in e.iter().zip(a.iter()).enumerate() {
                compare_json(ev, av, &format!("{path}[{i}]"))?;
            }
            Ok(())
        }
        (Json::Obj(e), Json::Obj(a)) => {
            if e.len() != a.len() {
                return Err(format!(
                    "{path}: object size expected {}, got {}",
                    e.len(),
                    a.len()
                ));
            }
            for ((ek, ev), (ak, av)) in e.iter().zip(a.iter()) {
                if ek != ak {
                    return Err(format!("{path}: key order expected {ek:?}, got {ak:?}"));
                }
                compare_json(ev, av, &format!("{path}.{ek}"))?;
            }
            Ok(())
        }
        _ => Err(format!(
            "{path}: kind mismatch ({expected:?} vs {actual:?})"
        )),
    }
}

/// Encodes a tensor as a golden object: `{"shape": [...], "data": [...]}`.
pub fn tensor_json(t: &Tensor) -> Json {
    Json::Obj(vec![
        ("shape".into(), Json::usize_array(t.shape())),
        ("data".into(), Json::f32_array(t.data())),
    ])
}

/// Decodes a tensor golden object back into `(shape, data)`.
pub fn tensor_from_json(v: &Json) -> Option<(Vec<usize>, Vec<f32>)> {
    let shape = v.get("shape")?.as_usize_vec()?;
    let data = v.get("data")?.as_f32_vec()?;
    Some((shape, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_json_round_trip() {
        let t = Tensor::new(&[2, 2], vec![1.0, -2.5, 0.125, 3.0e7]).unwrap();
        let j = tensor_json(&t);
        let (shape, data) = tensor_from_json(&j).unwrap();
        assert_eq!(shape, vec![2, 2]);
        assert_eq!(data, t.data());
    }

    #[test]
    fn compare_pinpoints_divergence() {
        let a = Json::Obj(vec![("x".into(), Json::f32_array(&[1.0, 2.0]))]);
        let b = Json::Obj(vec![(
            "x".into(),
            Json::f32_array(&[1.0, f32::from_bits(2.0f32.to_bits() + 1)]),
        )]);
        let err = compare_json(&a, &b, "$").unwrap_err();
        assert!(err.contains("$.x[1]"), "got: {err}");
    }

    #[test]
    fn compare_accepts_equivalent_number_forms() {
        // A hand-edited integer token still matches its float form.
        let a = Json::Num("1".into());
        let b = Json::Num("1.0".into());
        assert!(compare_json(&a, &b, "$").is_ok());
    }

    #[test]
    fn golden_dir_points_into_repo() {
        let d = golden_dir();
        assert!(d.ends_with("tests/goldens"), "{}", d.display());
    }
}
