//! Verification subsystem for the `advcomp` workspace.
//!
//! The paper's claims are empirical transfer numbers, so the reproduction is
//! only as trustworthy as its ability to prove the pipeline computes the
//! same thing run-to-run, kernel-to-kernel, and PR-to-PR. This crate is that
//! safety net, built on four pillars:
//!
//! 1. **Golden-vector conformance** ([`golden`]): fixed tiny models built
//!    from the crate's own deterministic generator ([`det`]) — so the
//!    vectors do not depend on which `rand` backs the workspace — whose
//!    forward logits, attack perturbations, pruning masks and quantised
//!    weights are serialized to checked-in JSON files under the top-level
//!    `tests/goldens/`. Comparison is bit-exact by default (a 1-ulp drift
//!    anywhere in the pipeline fails the suite); `REGEN_GOLDENS=1`
//!    regenerates the files after an intentional numerical change.
//! 2. **Differential kernel fuzzing** ([`diffref`]): obviously-correct
//!    reference implementations (triple-loop GEMM lives in
//!    `advcomp_tensor`, direct convolution lives here) that randomized
//!    shape/density sweeps compare against the production packed-dense,
//!    zero-skip-sparse and `im2col` kernels.
//! 3. **Determinism harness** ([`determinism`]): runs an operation under
//!    kernel-parallelism caps `{1, 2, 8}` and repeated invocations,
//!    asserting bit-exact equality of every output — the property that
//!    makes `ADVCOMP_THREADS` a pure performance knob.
//! 4. **Gradcheck expansion**: tolerance machinery ([`tolerance`]) for the
//!    finite-difference drivers in `advcomp_nn::gradcheck`, applied over
//!    every layer (including FakeQuant's STE and BatchNorm in both modes)
//!    by this crate's integration tests.
//!
//! The integration tests under `crates/testkit/tests/` are the contract
//! every future perf or refactor PR must pass; `TESTING.md` at the repo
//! root documents the workflow and tolerance policy.

pub mod det;
pub mod determinism;
pub mod diffref;
pub mod fixtures;
pub mod golden;
pub mod json;
pub mod tolerance;

pub use det::DetRng;
pub use tolerance::Tolerance;

/// Pins the tensor kernel backend for the current test **process** and
/// forces the one-shot `ADVCOMP_KERNEL` cache, so every later tensor op in
/// the process uses `backend` regardless of environment or CPU features.
///
/// The golden vectors are defined by the scalar kernels: SIMD sum/GEMM
/// reassociate accumulation and differ by a few ULPs, which bit-exact
/// conformance would flag as drift. Every test in a goldens/determinism
/// test binary must call `pin_kernel("scalar")` before its first tensor op
/// (libtest runs tests concurrently; the `Once` makes the first pin win and
/// the eager `backend()` call below freezes it before any race matters).
pub fn pin_kernel(backend: &'static str) {
    static PIN: std::sync::Once = std::sync::Once::new();
    PIN.call_once(|| std::env::set_var("ADVCOMP_KERNEL", backend));
    // Resolve (and thereby freeze) the process-wide backend cache now.
    let _ = advcomp_tensor::simd::backend();
}
