//! Self-contained deterministic random generator for test vectors.
//!
//! Golden vectors checked into the repository must reproduce bit-for-bit in
//! every build environment. The workspace's `rand` dependency is not a
//! stable foundation for that: offline containers substitute a functional
//! stub whose streams differ from the real `StdRng`. This module therefore
//! pins the *exact* algorithm — SplitMix64 (Steele, Lea & Flood 2014) with
//! the standard increment and finalizer — so a fixture built from a seed is
//! identical everywhere, forever, regardless of which `rand` is linked.

/// SplitMix64 generator. The sequence for a given seed is part of the
/// golden-vector format: changing this algorithm invalidates every file
/// under `tests/goldens/` and requires a regeneration (`REGEN_GOLDENS=1`).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of mantissa entropy.
    pub fn unit_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) / ((1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.unit_f32() * (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`. Modulo bias is irrelevant at test
    /// scales (spans far below 2^32).
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Vector of uniform values in `[lo, hi)`.
    pub fn vec_f32(&mut self, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| self.range_f32(lo, hi)).collect()
    }

    /// Vector of uniform values with a fraction `zero_prob` forced to zero —
    /// the shape of magnitude-pruned weight tensors.
    pub fn sparse_vec_f32(&mut self, n: usize, lo: f32, hi: f32, zero_prob: f32) -> Vec<f32> {
        (0..n)
            .map(|_| {
                let keep = self.unit_f32() >= zero_prob;
                if keep {
                    self.range_f32(lo, hi)
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn pinned_first_outputs() {
        // The SplitMix64 stream is part of the golden format; pin it.
        let mut r = DetRng::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        let mut r = DetRng::new(42);
        assert_eq!(r.next_u64(), 0xbdd732262feb6e95);
    }

    #[test]
    fn unit_f32_stays_in_range() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.unit_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn sparse_vec_hits_requested_density() {
        let mut r = DetRng::new(9);
        let v = r.sparse_vec_f32(10_000, -1.0, 1.0, 0.9);
        let nnz = v.iter().filter(|&&x| x != 0.0).count();
        assert!((800..1200).contains(&nnz), "nnz {nnz}");
    }
}
