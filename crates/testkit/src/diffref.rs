//! Obviously-correct reference implementations for differential fuzzing.
//!
//! The production kernels (`Tensor::matmul` packed-dense / zero-skip-sparse
//! and the `im2col`-backed `Conv2d`) are optimised for speed; these
//! references are optimised for being trivially auditable. Sums accumulate
//! in `f64`, so the reference is strictly more accurate than any f32
//! production path and the fuzz comparison tolerance
//! ([`crate::Tolerance::kernel_default`]) bounds the production kernels'
//! true rounding error, not reference noise.

use crate::det::DetRng;
use advcomp_tensor::Tensor;

/// Direct (quadruple-loop) 2-D convolution over NCHW input.
///
/// `input` is `[n, c, h, w]`, `weight` is `[oc, c, k, k]`, `bias` has
/// length `oc`; `stride`/`padding` match `advcomp_nn::Conv2d` semantics
/// (zero padding, floor output size). Accumulates in `f64`.
///
/// # Panics
///
/// Panics on inconsistent shapes — fuzz inputs are generated consistent.
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: &[f32],
    stride: usize,
    padding: usize,
) -> Tensor {
    let (n, c, h, w) = match *input.shape() {
        [n, c, h, w] => (n, c, h, w),
        ref s => panic!("conv2d_direct: input must be NCHW, got {s:?}"),
    };
    let (oc, wc, k) = match *weight.shape() {
        [oc, wc, kh, kw] if kh == kw => (oc, wc, kh),
        ref s => panic!("conv2d_direct: weight must be [oc, c, k, k], got {s:?}"),
    };
    assert_eq!(c, wc, "channel mismatch");
    assert_eq!(bias.len(), oc, "bias length mismatch");
    assert!(stride > 0, "stride must be >= 1");
    let oh = (h + 2 * padding - k) / stride + 1;
    let ow = (w + 2 * padding - k) / stride + 1;

    let x = input.data();
    let wt = weight.data();
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for img in 0..n {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = f64::from(bias[o]);
                    for ch in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * stride + ky) as isize - padding as isize;
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                    continue; // zero padding
                                }
                                let xi = ((img * c + ch) * h + iy as usize) * w + ix as usize;
                                let wi = ((o * c + ch) * k + ky) * k + kx;
                                acc += f64::from(x[xi]) * f64::from(wt[wi]);
                            }
                        }
                    }
                    out[((img * oc + o) * oh + oy) * ow + ox] = acc as f32;
                }
            }
        }
    }
    Tensor::new(&[n, oc, oh, ow], out).expect("output shape consistent by construction")
}

/// Triple-loop GEMM with `f64` accumulation — the cross-check for both the
/// production kernels *and* `Tensor::matmul_naive` (which accumulates in
/// f32).
///
/// # Panics
///
/// Panics when the operands are not matmul-compatible 2-D tensors.
pub fn matmul_f64(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = match *a.shape() {
        [m, k] => (m, k),
        ref s => panic!("matmul_f64: lhs must be 2-D, got {s:?}"),
    };
    let (k2, n) = match *b.shape() {
        [k2, n] => (k2, n),
        ref s => panic!("matmul_f64: rhs must be 2-D, got {s:?}"),
    };
    assert_eq!(k, k2, "inner dimension mismatch");
    let (ad, bd) = (a.data(), b.data());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += f64::from(ad[i * k + kk]) * f64::from(bd[kk * n + j]);
            }
            out[i * n + j] = acc as f32;
        }
    }
    Tensor::new(&[m, n], out).expect("output shape consistent by construction")
}

/// One randomized GEMM case: shapes, density, operands.
#[derive(Debug, Clone)]
pub struct GemmCase {
    /// Case ordinal within a sweep (for failure messages).
    pub index: usize,
    /// Left operand, `[m, k]`.
    pub a: Tensor,
    /// Right operand, `[k, n]`.
    pub b: Tensor,
    /// Fraction of `a`'s entries forced to zero.
    pub zero_prob: f32,
}

/// Generates `count` randomized GEMM cases from `seed`.
///
/// Shapes sweep `[1, max_dim]` per axis and the left operand's density
/// sweeps the full range, so both the dense-branch and the zero-skip
/// sparse-branch of the production kernel (density cutoff 0.25) get
/// exercised, as do sizes on either side of the parallel threshold when
/// `max_dim` is large enough.
pub fn gemm_cases(seed: u64, count: usize, max_dim: usize) -> Vec<GemmCase> {
    let mut rng = DetRng::new(seed);
    (0..count)
        .map(|index| {
            let m = rng.range_usize(1, max_dim + 1);
            let k = rng.range_usize(1, max_dim + 1);
            let n = rng.range_usize(1, max_dim + 1);
            let zero_prob = rng.unit_f32();
            let a = Tensor::new(&[m, k], rng.sparse_vec_f32(m * k, -1.0, 1.0, zero_prob))
                .expect("generated shape is consistent");
            let b = Tensor::new(&[k, n], rng.vec_f32(k * n, -1.0, 1.0))
                .expect("generated shape is consistent");
            GemmCase {
                index,
                a,
                b,
                zero_prob,
            }
        })
        .collect()
}

/// One randomized convolution case.
#[derive(Debug, Clone)]
pub struct ConvCase {
    /// Case ordinal within a sweep.
    pub index: usize,
    /// Input, `[n, c, h, w]`.
    pub input: Tensor,
    /// Weights, `[oc, c, k, k]`.
    pub weight: Tensor,
    /// Bias, length `oc`.
    pub bias: Vec<f32>,
    /// Convolution stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
}

/// Generates `count` randomized convolution cases from `seed`, with
/// kernel/stride/padding combinations constrained so the output is always
/// at least 1×1.
pub fn conv_cases(seed: u64, count: usize) -> Vec<ConvCase> {
    let mut rng = DetRng::new(seed);
    (0..count)
        .map(|index| {
            let n = rng.range_usize(1, 4);
            let c = rng.range_usize(1, 5);
            let oc = rng.range_usize(1, 7);
            let k = rng.range_usize(1, 5);
            let stride = rng.range_usize(1, 3);
            let padding = rng.range_usize(0, k); // padding < k keeps geometry sane
                                                 // Spatial size large enough for one output position.
            let min_hw = k.saturating_sub(2 * padding).max(1);
            let h = rng.range_usize(min_hw, min_hw + 9);
            let w = rng.range_usize(min_hw, min_hw + 9);
            let input = Tensor::new(&[n, c, h, w], rng.vec_f32(n * c * h * w, -1.0, 1.0))
                .expect("generated shape is consistent");
            let weight = Tensor::new(&[oc, c, k, k], rng.vec_f32(oc * c * k * k, -1.0, 1.0))
                .expect("generated shape is consistent");
            let bias = rng.vec_f32(oc, -0.5, 0.5);
            ConvCase {
                index,
                input,
                weight,
                bias,
                stride,
                padding,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_f64_identity() {
        let a = Tensor::new(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let eye = Tensor::new(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(matmul_f64(&a, &eye).data(), a.data());
    }

    #[test]
    fn conv_direct_known_answer() {
        // 1×1×2×2 input, single 2×2 all-ones filter, no padding: the
        // output is the sum of the input plus bias.
        let input = Tensor::new(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let weight = Tensor::ones(&[1, 1, 2, 2]);
        let out = conv2d_direct(&input, &weight, &[0.5], 1, 0);
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.data(), &[10.5]);
    }

    #[test]
    fn conv_direct_padding_shifts_window() {
        // Identity 1×1 kernel with stride 2 subsamples the input.
        let input = Tensor::new(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv2d_direct(&input, &weight, &[0.0], 2, 0);
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.data(), &[1.0]);
    }

    #[test]
    fn case_generators_are_deterministic() {
        let a = gemm_cases(3, 5, 32);
        let b = gemm_cases(3, 5, 32);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.a.data(), y.a.data());
            assert_eq!(x.b.data(), y.b.data());
        }
        let c = conv_cases(4, 5);
        let d = conv_cases(4, 5);
        for (x, y) in c.iter().zip(d.iter()) {
            assert_eq!(x.input.data(), y.input.data());
            assert_eq!(x.stride, y.stride);
        }
    }
}
