//! Contract tests for `data::batch` — the edge cases the serving batcher
//! and training loops both rely on: partial final batches, batch sizes
//! larger than the dataset, and seeded-shuffle determinism.

use advcomp_data::{Batches, Dataset};
use advcomp_tensor::Tensor;

fn dataset(n: usize) -> Dataset {
    let images = Tensor::new(&[n, 1, 2, 2], (0..n * 4).map(|v| v as f32).collect()).unwrap();
    Dataset::new(images, (0..n).map(|v| v % 5).collect(), 5).unwrap()
}

#[test]
fn partial_final_batch_has_correct_shape() {
    let d = dataset(10);
    let plan = Batches::sequential(10, 4);
    let batches: Vec<_> = plan.iter(&d).collect();
    assert_eq!(plan.num_batches(), 3);
    assert_eq!(batches.len(), 3);
    assert_eq!(batches[0].0.shape(), &[4, 1, 2, 2]);
    assert_eq!(batches[1].0.shape(), &[4, 1, 2, 2]);
    // The final batch carries the 2 leftover samples, not a padded 4.
    assert_eq!(batches[2].0.shape(), &[2, 1, 2, 2]);
    assert_eq!(batches[2].1.len(), 2);
}

#[test]
fn batch_size_larger_than_dataset_yields_one_full_pass() {
    let d = dataset(3);
    for plan in [Batches::sequential(3, 8), Batches::shuffled(3, 8, 1)] {
        assert_eq!(plan.num_batches(), 1);
        let batches: Vec<_> = plan.iter(&d).collect();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].0.shape(), &[3, 1, 2, 2]);
        assert_eq!(batches[0].1.len(), 3);
    }
}

#[test]
fn empty_dataset_plan_yields_nothing() {
    let plan = Batches::sequential(0, 4);
    assert_eq!(plan.num_batches(), 0);
    assert_eq!(plan.index_batches().count(), 0);
}

#[test]
fn shuffle_is_deterministic_across_constructions() {
    let d = dataset(32);
    // Two independently constructed plans with the same seed must produce
    // identical batch sequences (images AND labels)...
    let collect = |seed: u64| -> (Vec<f32>, Vec<usize>) {
        let plan = Batches::shuffled(32, 5, seed);
        let mut imgs = Vec::new();
        let mut labels = Vec::new();
        for (x, y) in plan.iter(&d) {
            imgs.extend_from_slice(x.data());
            labels.extend(y);
        }
        (imgs, labels)
    };
    let (ia, la) = collect(99);
    let (ib, lb) = collect(99);
    assert_eq!(ia, ib);
    assert_eq!(la, lb);
    // ... and a different seed must produce a different order.
    let (ic, _) = collect(100);
    assert_ne!(ia, ic);
}

#[test]
fn shuffled_indices_are_a_permutation_for_any_batch_size() {
    for bs in [1, 3, 7, 31, 100] {
        let plan = Batches::shuffled(31, bs, 7);
        let mut seen: Vec<usize> = plan.index_batches().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..31).collect::<Vec<_>>(), "batch_size {bs}");
    }
}
