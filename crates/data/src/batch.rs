//! Mini-batch iteration.

use crate::dataset::Dataset;
use advcomp_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Batching plan over a [`Dataset`]: optionally shuffled, fixed batch size,
/// final partial batch included.
#[derive(Debug)]
pub struct Batches {
    order: Vec<usize>,
    batch_size: usize,
}

impl Batches {
    /// Sequential (unshuffled) batches.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is zero.
    pub fn sequential(len: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be >= 1");
        Batches {
            order: (0..len).collect(),
            batch_size,
        }
    }

    /// Seeded shuffled batches (fresh seed per epoch gives SGD its
    /// stochasticity while keeping runs reproducible).
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is zero.
    pub fn shuffled(len: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be >= 1");
        let mut order: Vec<usize> = (0..len).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        Batches { order, batch_size }
    }

    /// Number of batches this plan will yield.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Iterates `(images, labels)` mini-batches over `dataset`.
    pub fn iter<'a>(&'a self, dataset: &'a Dataset) -> BatchIter<'a> {
        BatchIter {
            plan: self,
            dataset,
            cursor: 0,
        }
    }

    /// Iterates the raw index batches of the plan — for callers batching
    /// over data that is not a [`Dataset`] (e.g. an unlabeled probe tensor).
    pub fn index_batches(&self) -> impl Iterator<Item = &[usize]> {
        self.order.chunks(self.batch_size)
    }
}

/// Iterator over `(images, labels)` mini-batches produced by [`Batches`].
#[derive(Debug)]
pub struct BatchIter<'a> {
    plan: &'a Batches,
    dataset: &'a Dataset,
    cursor: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.plan.order.len() {
            return None;
        }
        let end = (self.cursor + self.plan.batch_size).min(self.plan.order.len());
        let idx = &self.plan.order[self.cursor..end];
        self.cursor = end;
        // Indices come from 0..len, so gather cannot fail.
        let (images, labels) = self
            .dataset
            .gather(idx)
            .expect("batch indices are in range by construction");
        Some((images, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        let images = Tensor::new(&[n, 1, 1, 1], (0..n).map(|v| v as f32).collect()).unwrap();
        Dataset::new(images, (0..n).map(|v| v % 3).collect(), 3).unwrap()
    }

    #[test]
    fn sequential_covers_everything_in_order() {
        let d = dataset(5);
        let plan = Batches::sequential(5, 2);
        assert_eq!(plan.num_batches(), 3);
        let batches: Vec<_> = plan.iter(&d).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.data(), &[0.0, 1.0]);
        assert_eq!(batches[2].0.data(), &[4.0]); // partial final batch
        assert_eq!(batches[2].1, vec![1]);
    }

    #[test]
    fn shuffled_is_permutation() {
        let d = dataset(10);
        let plan = Batches::shuffled(10, 3, 42);
        let mut seen: Vec<f32> = plan
            .iter(&d)
            .flat_map(|(imgs, _)| imgs.into_data())
            .collect();
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, (0..10).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_deterministic_per_seed() {
        let d = dataset(8);
        let a: Vec<f32> = Batches::shuffled(8, 8, 7)
            .iter(&d)
            .next()
            .unwrap()
            .0
            .into_data();
        let b: Vec<f32> = Batches::shuffled(8, 8, 7)
            .iter(&d)
            .next()
            .unwrap()
            .0
            .into_data();
        let c: Vec<f32> = Batches::shuffled(8, 8, 8)
            .iter(&d)
            .next()
            .unwrap()
            .0
            .into_data();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_size_panics() {
        Batches::sequential(4, 0);
    }

    #[test]
    fn index_batches_cover_all() {
        let plan = Batches::shuffled(10, 3, 42);
        let mut seen: Vec<usize> = plan.index_batches().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(plan.index_batches().count(), 4);
        assert!(plan.index_batches().all(|b| b.len() <= 3));
    }

    #[test]
    fn labels_track_images() {
        let d = dataset(6);
        for (imgs, labels) in Batches::shuffled(6, 2, 3).iter(&d) {
            for (k, &label) in labels.iter().enumerate() {
                let v = imgs.data()[k] as usize;
                assert_eq!(label, v % 3);
            }
        }
    }
}
