//! Small software rasteriser shared by the synthetic generators.
//!
//! Everything here is deterministic given its inputs; randomness lives in
//! the generators, which sample transform parameters and pass them down.

/// A 2-D point in normalised `[0, 1]²` image coordinates.
pub(crate) type Point = (f32, f32);

/// Squared distance from point `p` to segment `a`–`b`.
pub(crate) fn dist2_to_segment(p: Point, a: Point, b: Point) -> f32 {
    let (px, py) = p;
    let (ax, ay) = a;
    let (bx, by) = b;
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 <= f32::EPSILON {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    (px - cx) * (px - cx) + (py - cy) * (py - cy)
}

/// Smooth 0→1 ramp between `edge0` and `edge1` (clamped Hermite).
pub(crate) fn smoothstep(edge0: f32, edge1: f32, x: f32) -> f32 {
    if edge0 >= edge1 {
        return if x < edge0 { 0.0 } else { 1.0 };
    }
    let t = ((x - edge0) / (edge1 - edge0)).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// An affine transform of normalised image coordinates about the centre:
/// rotate by `angle`, scale by `scale`, then translate by `(tx, ty)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Affine {
    pub cos: f32,
    pub sin: f32,
    pub scale: f32,
    pub tx: f32,
    pub ty: f32,
}

impl Affine {
    pub fn new(angle: f32, scale: f32, tx: f32, ty: f32) -> Self {
        Affine {
            cos: angle.cos(),
            sin: angle.sin(),
            scale,
            tx,
            ty,
        }
    }

    /// Identity transform.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn identity() -> Self {
        Affine::new(0.0, 1.0, 0.0, 0.0)
    }

    /// Applies the transform to a normalised point.
    pub fn apply(&self, p: Point) -> Point {
        let (x, y) = (p.0 - 0.5, p.1 - 0.5);
        let (x, y) = (x * self.scale, y * self.scale);
        let (x, y) = (x * self.cos - y * self.sin, x * self.sin + y * self.cos);
        (x + 0.5 + self.tx, y + 0.5 + self.ty)
    }
}

/// Renders a set of polyline strokes into a `side × side` intensity plane.
///
/// Each stroke is a list of normalised points; intensity at a pixel is the
/// maximum over all stroke segments of a smooth falloff of distance, giving
/// anti-aliased pen-like lines of half-width `thickness`.
pub(crate) fn render_strokes(
    plane: &mut [f32],
    side: usize,
    strokes: &[Vec<Point>],
    transform: &Affine,
    thickness: f32,
) {
    debug_assert_eq!(plane.len(), side * side);
    // Pre-transform stroke points once.
    let strokes: Vec<Vec<Point>> = strokes
        .iter()
        .map(|s| s.iter().map(|&p| transform.apply(p)).collect())
        .collect();
    let t2_in = thickness * thickness;
    let t_out = thickness * 1.8;
    for y in 0..side {
        let py = (y as f32 + 0.5) / side as f32;
        for x in 0..side {
            let px = (x as f32 + 0.5) / side as f32;
            let mut best = f32::INFINITY;
            for stroke in &strokes {
                for w in stroke.windows(2) {
                    let d2 = dist2_to_segment((px, py), w[0], w[1]);
                    if d2 < best {
                        best = d2;
                    }
                }
            }
            let v = 1.0 - smoothstep(t2_in, t_out * t_out, best);
            let idx = y * side + x;
            if v > plane[idx] {
                plane[idx] = v;
            }
        }
    }
}

/// Signed-distance style fill for simple shapes used by `SynthObjects`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShapeKind {
    Circle,
    Square,
    Triangle,
    Ring,
    Cross,
}

/// Coverage in `[0, 1]` of `shape` (centred at `c`, radius `r`) at point `p`.
pub(crate) fn shape_coverage(kind: ShapeKind, p: Point, c: Point, r: f32) -> f32 {
    let (dx, dy) = (p.0 - c.0, p.1 - c.1);
    let soft = 0.06 * r.max(0.05);
    match kind {
        ShapeKind::Circle => {
            let d = (dx * dx + dy * dy).sqrt();
            1.0 - smoothstep(r - soft, r + soft, d)
        }
        ShapeKind::Square => {
            let d = dx.abs().max(dy.abs());
            1.0 - smoothstep(r - soft, r + soft, d)
        }
        ShapeKind::Triangle => {
            // Upwards-pointing triangle inscribed in radius r.
            let d = dy.max(-2.0 * dy + dx.abs() * 3.0 - r);
            1.0 - smoothstep(r * 0.5 - soft, r * 0.5 + soft, d.max(dx.abs() - r))
        }
        ShapeKind::Ring => {
            let d = (dx * dx + dy * dy).sqrt();
            let outer = 1.0 - smoothstep(r - soft, r + soft, d);
            let inner = 1.0 - smoothstep(r * 0.55 - soft, r * 0.55 + soft, d);
            (outer - inner).max(0.0)
        }
        ShapeKind::Cross => {
            let arm = r * 0.35;
            let in_v = dx.abs() < arm && dy.abs() < r;
            let in_h = dy.abs() < arm && dx.abs() < r;
            if in_v || in_h {
                1.0
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_distance_endpoints_and_interior() {
        let a = (0.0, 0.0);
        let b = (1.0, 0.0);
        assert!(dist2_to_segment((0.5, 0.5), a, b) - 0.25 < 1e-6);
        assert!((dist2_to_segment((2.0, 0.0), a, b) - 1.0).abs() < 1e-6);
        assert!((dist2_to_segment((-1.0, 0.0), a, b) - 1.0).abs() < 1e-6);
        // Degenerate segment behaves as point distance.
        assert!((dist2_to_segment((1.0, 0.0), a, a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn smoothstep_edges() {
        assert_eq!(smoothstep(0.0, 1.0, -1.0), 0.0);
        assert_eq!(smoothstep(0.0, 1.0, 2.0), 1.0);
        assert!((smoothstep(0.0, 1.0, 0.5) - 0.5).abs() < 1e-6);
        // Degenerate edge interval.
        assert_eq!(smoothstep(1.0, 1.0, 0.5), 0.0);
        assert_eq!(smoothstep(1.0, 1.0, 1.5), 1.0);
    }

    #[test]
    fn affine_identity_fixes_points() {
        let id = Affine::identity();
        let p = (0.3, 0.8);
        let q = id.apply(p);
        assert!((q.0 - p.0).abs() < 1e-6 && (q.1 - p.1).abs() < 1e-6);
    }

    #[test]
    fn affine_translation() {
        let t = Affine::new(0.0, 1.0, 0.1, -0.2);
        let q = t.apply((0.5, 0.5));
        assert!((q.0 - 0.6).abs() < 1e-6);
        assert!((q.1 - 0.3).abs() < 1e-6);
    }

    #[test]
    fn render_stroke_marks_line() {
        let mut plane = vec![0.0; 16 * 16];
        let strokes = vec![vec![(0.2, 0.5), (0.8, 0.5)]];
        render_strokes(&mut plane, 16, &strokes, &Affine::identity(), 0.06);
        // Middle row bright, corners dark.
        assert!(plane[8 * 16 + 8] > 0.8);
        assert!(plane[0] < 0.1);
    }

    #[test]
    fn shape_coverage_inside_outside() {
        for kind in [
            ShapeKind::Circle,
            ShapeKind::Square,
            ShapeKind::Ring,
            ShapeKind::Cross,
            ShapeKind::Triangle,
        ] {
            let far = shape_coverage(kind, (0.95, 0.95), (0.5, 0.5), 0.2);
            assert!(far < 0.05, "{kind:?} leaked to corner: {far}");
        }
        assert!(shape_coverage(ShapeKind::Circle, (0.5, 0.5), (0.5, 0.5), 0.2) > 0.9);
        assert!(shape_coverage(ShapeKind::Square, (0.5, 0.5), (0.5, 0.5), 0.2) > 0.9);
        assert!(shape_coverage(ShapeKind::Cross, (0.5, 0.5), (0.5, 0.5), 0.2) > 0.9);
        // Ring is hollow at the centre.
        assert!(shape_coverage(ShapeKind::Ring, (0.5, 0.5), (0.5, 0.5), 0.3) < 0.1);
    }
}
