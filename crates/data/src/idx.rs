//! Loaders for the genuine dataset file formats.
//!
//! When real corpora are present these are used instead of the synthetic
//! generators: MNIST's IDX format (`train-images-idx3-ubyte` etc.) and the
//! CIFAR-10 binary batches (`data_batch_1.bin` ... `test_batch.bin`). Set
//! `ADVCOMP_DATA_DIR` (or pass an explicit directory) to point at them.

use crate::dataset::{Dataset, DatasetError};
use advcomp_tensor::Tensor;
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};

/// Directory the loaders look in when none is given: `ADVCOMP_DATA_DIR`.
pub fn default_data_dir() -> Option<PathBuf> {
    std::env::var_os("ADVCOMP_DATA_DIR").map(PathBuf::from)
}

fn read_file(path: &Path) -> Result<Vec<u8>, DatasetError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

fn be_u32(bytes: &[u8], offset: usize) -> Result<u32, DatasetError> {
    let slice: [u8; 4] = bytes
        .get(offset..offset + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| DatasetError::Malformed("truncated IDX header".into()))?;
    Ok(u32::from_be_bytes(slice))
}

/// Parses an IDX3 (images) file into `(count, rows, cols, pixels)`.
pub fn parse_idx_images(bytes: &[u8]) -> Result<(usize, usize, usize, Vec<f32>), DatasetError> {
    if be_u32(bytes, 0)? != 0x0000_0803 {
        return Err(DatasetError::Malformed("bad IDX3 magic".into()));
    }
    let n = be_u32(bytes, 4)? as usize;
    let rows = be_u32(bytes, 8)? as usize;
    let cols = be_u32(bytes, 12)? as usize;
    let body = bytes
        .get(16..16 + n * rows * cols)
        .ok_or_else(|| DatasetError::Malformed("truncated IDX3 body".into()))?;
    Ok((
        n,
        rows,
        cols,
        body.iter().map(|&b| b as f32 / 255.0).collect(),
    ))
}

/// Parses an IDX1 (labels) file into a label list.
pub fn parse_idx_labels(bytes: &[u8]) -> Result<Vec<usize>, DatasetError> {
    if be_u32(bytes, 0)? != 0x0000_0801 {
        return Err(DatasetError::Malformed("bad IDX1 magic".into()));
    }
    let n = be_u32(bytes, 4)? as usize;
    let body = bytes
        .get(8..8 + n)
        .ok_or_else(|| DatasetError::Malformed("truncated IDX1 body".into()))?;
    Ok(body.iter().map(|&b| b as usize).collect())
}

/// Loads the four standard MNIST files from `dir`.
///
/// # Errors
///
/// I/O errors when files are missing; [`DatasetError::Malformed`] on format
/// violations.
pub fn load_mnist(dir: &Path) -> Result<(Dataset, Dataset), DatasetError> {
    let load_split = |images: &str, labels: &str| -> Result<Dataset, DatasetError> {
        let (n, rows, cols, pixels) = parse_idx_images(&read_file(&dir.join(images))?)?;
        let labels = parse_idx_labels(&read_file(&dir.join(labels))?)?;
        if labels.len() != n {
            return Err(DatasetError::Malformed(format!(
                "{n} images but {} labels",
                labels.len()
            )));
        }
        let images = Tensor::new(&[n, 1, rows, cols], pixels)?;
        Dataset::new(images, labels, 10)
    };
    Ok((
        load_split("train-images-idx3-ubyte", "train-labels-idx1-ubyte")?,
        load_split("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte")?,
    ))
}

/// Parses one CIFAR-10 binary batch (label byte + 3072 pixel bytes per
/// record) into `(pixels, labels)`.
pub fn parse_cifar_batch(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), DatasetError> {
    const RECORD: usize = 1 + 3 * 32 * 32;
    if bytes.is_empty() || !bytes.len().is_multiple_of(RECORD) {
        return Err(DatasetError::Malformed(format!(
            "CIFAR batch length {} is not a multiple of {RECORD}",
            bytes.len()
        )));
    }
    let n = bytes.len() / RECORD;
    let mut pixels = Vec::with_capacity(n * (RECORD - 1));
    let mut labels = Vec::with_capacity(n);
    for rec in bytes.chunks_exact(RECORD) {
        let label = rec[0] as usize;
        if label >= 10 {
            return Err(DatasetError::Malformed(format!("CIFAR label {label} > 9")));
        }
        labels.push(label);
        pixels.extend(rec[1..].iter().map(|&b| b as f32 / 255.0));
    }
    Ok((pixels, labels))
}

/// Loads the five CIFAR-10 training batches and the test batch from `dir`.
///
/// # Errors
///
/// I/O errors when files are missing; [`DatasetError::Malformed`] on format
/// violations.
pub fn load_cifar10(dir: &Path) -> Result<(Dataset, Dataset), DatasetError> {
    let mut train_pixels = Vec::new();
    let mut train_labels = Vec::new();
    for i in 1..=5 {
        let (p, l) = parse_cifar_batch(&read_file(&dir.join(format!("data_batch_{i}.bin")))?)?;
        train_pixels.extend(p);
        train_labels.extend(l);
    }
    let n_train = train_labels.len();
    let train = Dataset::new(
        Tensor::new(&[n_train, 3, 32, 32], train_pixels)?,
        train_labels,
        10,
    )?;
    let (tp, tl) = parse_cifar_batch(&read_file(&dir.join("test_batch.bin"))?)?;
    let n_test = tl.len();
    let test = Dataset::new(Tensor::new(&[n_test, 3, 32, 32], tp)?, tl, 10)?;
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx3(n: usize, rows: usize, cols: usize) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend(0x0803u32.to_be_bytes());
        b.extend((n as u32).to_be_bytes());
        b.extend((rows as u32).to_be_bytes());
        b.extend((cols as u32).to_be_bytes());
        b.extend(std::iter::repeat_n(128u8, n * rows * cols));
        b
    }

    #[test]
    fn parses_idx3() {
        let (n, r, c, px) = parse_idx_images(&idx3(2, 3, 3)).unwrap();
        assert_eq!((n, r, c), (2, 3, 3));
        assert_eq!(px.len(), 18);
        assert!((px[0] - 128.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut bad = idx3(1, 2, 2);
        bad[3] = 0x01;
        assert!(parse_idx_images(&bad).is_err());
        let mut trunc = idx3(2, 3, 3);
        trunc.truncate(20);
        assert!(parse_idx_images(&trunc).is_err());
        assert!(parse_idx_images(&[1, 2]).is_err());
    }

    #[test]
    fn parses_idx1() {
        let mut b = Vec::new();
        b.extend(0x0801u32.to_be_bytes());
        b.extend(3u32.to_be_bytes());
        b.extend([7u8, 0, 9]);
        assert_eq!(parse_idx_labels(&b).unwrap(), vec![7, 0, 9]);
        b[3] = 0x03;
        assert!(parse_idx_labels(&b).is_err());
    }

    #[test]
    fn parses_cifar_batch() {
        let mut rec = vec![3u8];
        rec.extend(std::iter::repeat_n(255u8, 3072));
        let (px, labels) = parse_cifar_batch(&rec).unwrap();
        assert_eq!(labels, vec![3]);
        assert_eq!(px.len(), 3072);
        assert_eq!(px[0], 1.0);
    }

    #[test]
    fn cifar_rejects_bad_records() {
        assert!(parse_cifar_batch(&[1, 2, 3]).is_err());
        assert!(parse_cifar_batch(&[]).is_err());
        let mut rec = vec![11u8]; // label out of range
        rec.extend(std::iter::repeat_n(0u8, 3072));
        assert!(parse_cifar_batch(&rec).is_err());
    }

    #[test]
    fn loaders_error_on_missing_dir() {
        let dir = Path::new("/nonexistent/advcomp");
        assert!(load_mnist(dir).is_err());
        assert!(load_cifar10(dir).is_err());
    }
}
