//! `SynthObjects`: the CIFAR-10 stand-in.
//!
//! 32×32 RGB, 10 classes defined jointly by shape and palette — five shapes
//! × two palettes — so neither colour nor silhouette alone separates the
//! classes and a convolutional feature hierarchy is genuinely required.
//! Heavy per-instance nuisance variation (background colour, shape pose,
//! colour jitter, occluding noise patches, Gaussian pixel noise) sets the
//! difficulty so a CifarNet-class model lands in the mid-80s, mirroring
//! CifarNet's 85.93% on CIFAR-10.

use crate::dataset::{Dataset, DatasetConfig};
use crate::render::{shape_coverage, ShapeKind};
use advcomp_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Generator for the synthetic object dataset (32×32 RGB, 10 classes).
#[derive(Debug, Clone, Copy)]
pub struct SynthObjects;

/// Image side length, matching CIFAR-10.
pub const SIDE: usize = 32;

const SHAPES: [ShapeKind; 5] = [
    ShapeKind::Circle,
    ShapeKind::Square,
    ShapeKind::Triangle,
    ShapeKind::Ring,
    ShapeKind::Cross,
];

/// Palette base colours (RGB in [0,1]). Palette 0 is "warm", 1 is "cool";
/// classes are `shape_index + 5 * palette_index`.
const PALETTES: [[f32; 3]; 2] = [[0.85, 0.45, 0.25], [0.25, 0.5, 0.85]];

impl SynthObjects {
    /// Generates `(train, test)` datasets from the config.
    pub fn generate(cfg: &DatasetConfig) -> (Dataset, Dataset) {
        let train = Self::split(
            cfg.train,
            cfg.seed.wrapping_mul(2).wrapping_add(11),
            cfg.noise,
        );
        let test = Self::split(
            cfg.test,
            cfg.seed.wrapping_mul(2).wrapping_add(12),
            cfg.noise,
        );
        (train, test)
    }

    fn split(n: usize, seed: u64, noise: f32) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gauss = Normal::new(0.0f32, noise.max(0.0)).expect("noise >= 0");
        let plane = SIDE * SIDE;
        let mut data = vec![0.0f32; n * 3 * plane];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 10;
            labels.push(label);
            let img = &mut data[i * 3 * plane..(i + 1) * 3 * plane];
            render_object(img, label, &mut rng);
            if noise > 0.0 {
                for v in img.iter_mut() {
                    *v = (*v + gauss.sample(&mut rng)).clamp(0.0, 1.0);
                }
            }
        }
        let images = Tensor::new(&[n, 3, SIDE, SIDE], data).expect("size computed from n");
        Dataset::new(images, labels, 10).expect("labels constructed in range")
    }
}

fn render_object<R: Rng + ?Sized>(img: &mut [f32], label: usize, rng: &mut R) {
    let plane = SIDE * SIDE;
    let shape = SHAPES[label % 5];
    let palette = PALETTES[label / 5];

    // Random background colour, dim so the figure stays salient.
    let bg = [
        rng.gen_range(0.0f32..0.35),
        rng.gen_range(0.0f32..0.35),
        rng.gen_range(0.0f32..0.35),
    ];
    // Pose jitter.
    let cx = rng.gen_range(0.35f32..0.65);
    let cy = rng.gen_range(0.35f32..0.65);
    let r = rng.gen_range(0.18f32..0.30);
    // Colour jitter: palettes overlap substantially so colour alone is a
    // weak feature (this, with the occluders below, sets the mid-80s
    // difficulty matching CifarNet on CIFAR-10).
    let jitter = 0.27f32;
    let fg = [
        (palette[0] + rng.gen_range(-jitter..jitter)).clamp(0.1, 1.0),
        (palette[1] + rng.gen_range(-jitter..jitter)).clamp(0.1, 1.0),
        (palette[2] + rng.gen_range(-jitter..jitter)).clamp(0.1, 1.0),
    ];

    for y in 0..SIDE {
        let py = (y as f32 + 0.5) / SIDE as f32;
        for x in 0..SIDE {
            let px = (x as f32 + 0.5) / SIDE as f32;
            let cov = shape_coverage(shape, (px, py), (cx, cy), r);
            for ch in 0..3 {
                img[ch * plane + y * SIDE + x] = bg[ch] * (1.0 - cov) + fg[ch] * cov;
            }
        }
    }

    // Occluding noise patches: small random rectangles of random colour.
    let patches = rng.gen_range(2usize..5);
    for _ in 0..patches {
        let pw = rng.gen_range(2usize..7);
        let ph = rng.gen_range(2usize..7);
        let x0 = rng.gen_range(0..SIDE - pw);
        let y0 = rng.gen_range(0..SIDE - ph);
        let col = [rng.gen::<f32>(), rng.gen::<f32>(), rng.gen::<f32>()];
        for y in y0..y0 + ph {
            for x in x0..x0 + pw {
                for ch in 0..3 {
                    img[ch * plane + y * SIDE + x] = col[ch];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DatasetConfig {
        DatasetConfig {
            train: 40,
            test: 20,
            seed: 5,
            noise: 0.08,
        }
    }

    #[test]
    fn shapes_and_ranges() {
        let (train, test) = SynthObjects::generate(&cfg());
        assert_eq!(train.images().shape(), &[40, 3, SIDE, SIDE]);
        assert_eq!(test.images().shape(), &[20, 3, SIDE, SIDE]);
        assert!(train
            .images()
            .data()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn classes_balanced_and_deterministic() {
        let (train, _) = SynthObjects::generate(&cfg());
        for c in 0..10 {
            assert_eq!(train.labels().iter().filter(|&&l| l == c).count(), 4);
        }
        let (again, _) = SynthObjects::generate(&cfg());
        assert_eq!(train.images().data(), again.images().data());
    }

    #[test]
    fn palettes_separate_on_average() {
        // Class 0 (warm circle) should be redder than class 5 (cool circle)
        // on average over many samples, though individual samples overlap.
        let cfg = DatasetConfig {
            train: 200,
            test: 10,
            seed: 1,
            noise: 0.0,
        };
        let (train, _) = SynthObjects::generate(&cfg);
        let plane = SIDE * SIDE;
        let mut red = [0.0f32; 2];
        let mut blue = [0.0f32; 2];
        let mut counts = [0usize; 2];
        for i in 0..train.len() {
            let label = train.labels()[i];
            let group = if label == 0 {
                0
            } else if label == 5 {
                1
            } else {
                continue;
            };
            let img = train.images().index_axis0(i).unwrap();
            red[group] += img.data()[..plane].iter().sum::<f32>();
            blue[group] += img.data()[2 * plane..].iter().sum::<f32>();
            counts[group] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0);
        assert!(red[0] / counts[0] as f32 > red[1] / counts[1] as f32);
        assert!(blue[1] / counts[1] as f32 > blue[0] / counts[0] as f32);
    }

    #[test]
    fn images_are_not_constant() {
        let (train, _) = SynthObjects::generate(&cfg());
        for i in 0..10 {
            let img = train.images().index_axis0(i).unwrap();
            assert!(img.std() > 0.01, "image {i} nearly constant");
        }
    }
}
