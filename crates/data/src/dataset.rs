//! Labelled image dataset container.

use advcomp_tensor::{Tensor, TensorError};
use std::fmt;

/// Errors from dataset construction or access.
#[derive(Debug)]
pub enum DatasetError {
    /// Image tensor / label list mismatch or malformed image tensor.
    Malformed(String),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A real-data file could not be read or parsed.
    Io(std::io::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Malformed(msg) => write!(f, "malformed dataset: {msg}"),
            DatasetError::Tensor(e) => write!(f, "tensor error: {e}"),
            DatasetError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Tensor(e) => Some(e),
            DatasetError::Io(e) => Some(e),
            DatasetError::Malformed(_) => None,
        }
    }
}

impl From<TensorError> for DatasetError {
    fn from(e: TensorError) -> Self {
        DatasetError::Tensor(e)
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

/// Size and randomness knobs shared by the synthetic generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Number of training samples.
    pub train: usize,
    /// Number of test samples.
    pub test: usize,
    /// RNG seed — the paper's paired comparisons require each model variant
    /// to see identical data.
    pub seed: u64,
    /// Additive pixel-noise standard deviation.
    pub noise: f32,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            train: 2048,
            test: 512,
            seed: 0,
            noise: 0.05,
        }
    }
}

/// A labelled image dataset: an NCHW image tensor with pixel values in
/// `[0, 1]` plus one class label per image.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating that images are 4-D NCHW, counts match
    /// and labels are in range.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Malformed`] on any inconsistency.
    pub fn new(
        images: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DatasetError> {
        if images.ndim() != 4 {
            return Err(DatasetError::Malformed(format!(
                "images must be NCHW, got rank {}",
                images.ndim()
            )));
        }
        if images.shape()[0] != labels.len() {
            return Err(DatasetError::Malformed(format!(
                "{} images but {} labels",
                images.shape()[0],
                labels.len()
            )));
        }
        if num_classes == 0 {
            return Err(DatasetError::Malformed("num_classes must be >= 1".into()));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DatasetError::Malformed(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Dataset {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The full NCHW image tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels, aligned with the image batch axis.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Shape of a single sample (`[c, h, w]`).
    pub fn sample_shape(&self) -> &[usize] {
        &self.images.shape()[1..]
    }

    /// Copies out sample `i` as `([1, c, h, w] tensor, label)`.
    ///
    /// # Errors
    ///
    /// Returns a tensor index error when `i` is out of bounds.
    pub fn sample(&self, i: usize) -> Result<(Tensor, usize), DatasetError> {
        let img = self.images.narrow(i, 1)?;
        Ok((img, self.labels[i]))
    }

    /// Copies a contiguous range of samples as a mini-batch.
    ///
    /// # Errors
    ///
    /// Returns a tensor index error when the range is out of bounds.
    pub fn slice(&self, start: usize, len: usize) -> Result<(Tensor, Vec<usize>), DatasetError> {
        let imgs = self.images.narrow(start, len)?;
        Ok((imgs, self.labels[start..start + len].to_vec()))
    }

    /// Copies the samples at `indices` (used by shuffled batching).
    ///
    /// # Errors
    ///
    /// Returns a tensor index error for any out-of-range index.
    pub fn gather(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>), DatasetError> {
        let mut imgs = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            imgs.push(self.images.index_axis0(i)?);
            labels.push(self.labels[i]);
        }
        Ok((Tensor::stack(&imgs)?, labels))
    }

    /// Takes the first `n` samples as a new dataset (subsampling for quick
    /// experiment scales).
    ///
    /// # Errors
    ///
    /// Returns a tensor index error when `n` exceeds the dataset.
    pub fn take(&self, n: usize) -> Result<Dataset, DatasetError> {
        let (images, labels) = self.slice(0, n)?;
        Dataset::new(images, labels, self.num_classes)
    }

    /// Splits into `(first n, rest)` — e.g. carving a validation set out of
    /// a training split.
    ///
    /// # Errors
    ///
    /// Returns a tensor index error when `n` exceeds the dataset.
    pub fn split_at(&self, n: usize) -> Result<(Dataset, Dataset), DatasetError> {
        let (a_img, a_lab) = self.slice(0, n)?;
        let (b_img, b_lab) = self.slice(n, self.len() - n)?;
        Ok((
            Dataset::new(a_img, a_lab, self.num_classes)?,
            Dataset::new(b_img, b_lab, self.num_classes)?,
        ))
    }

    /// Concatenates two datasets over the same label space.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Malformed`] when class counts or sample
    /// shapes differ.
    pub fn merge(&self, other: &Dataset) -> Result<Dataset, DatasetError> {
        if self.num_classes != other.num_classes {
            return Err(DatasetError::Malformed(format!(
                "class count mismatch: {} vs {}",
                self.num_classes, other.num_classes
            )));
        }
        let images = Tensor::concat0(&[self.images.clone(), other.images.clone()])
            .map_err(|e| DatasetError::Malformed(format!("incompatible sample shapes: {e}")))?;
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Dataset::new(images, labels, self.num_classes)
    }

    /// Keeps only samples whose label satisfies `keep` (e.g. a binary
    /// sub-task or a class-conditional probe set).
    ///
    /// # Errors
    ///
    /// Returns a tensor error only on internal index bugs (infallible for a
    /// well-formed dataset).
    pub fn filter_by_class<F: Fn(usize) -> bool>(&self, keep: F) -> Result<Dataset, DatasetError> {
        let indices: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| keep(l))
            .map(|(i, _)| i)
            .collect();
        if indices.is_empty() {
            // An empty NCHW tensor keeps the sample shape.
            let mut shape = vec![0usize];
            shape.extend_from_slice(self.sample_shape());
            return Dataset::new(Tensor::zeros(&shape), Vec::new(), self.num_classes);
        }
        let (images, labels) = self.gather(&indices)?;
        Dataset::new(images, labels, self.num_classes)
    }

    /// Per-class sample counts (index = class).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images =
            Tensor::new(&[4, 1, 2, 2], (0..16).map(|v| v as f32 / 16.0).collect()).unwrap();
        Dataset::new(images, vec![0, 1, 2, 1], 3).unwrap()
    }

    #[test]
    fn validation() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        assert!(Dataset::new(images.clone(), vec![0], 2).is_err());
        assert!(Dataset::new(images.clone(), vec![0, 5], 2).is_err());
        assert!(Dataset::new(images.clone(), vec![0, 1], 0).is_err());
        assert!(Dataset::new(Tensor::zeros(&[2, 4]), vec![0, 1], 2).is_err());
        assert!(Dataset::new(images, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.sample_shape(), &[1, 2, 2]);
    }

    #[test]
    fn sample_and_slice() {
        let d = tiny();
        let (img, label) = d.sample(1).unwrap();
        assert_eq!(img.shape(), &[1, 1, 2, 2]);
        assert_eq!(label, 1);
        let (batch, labels) = d.slice(1, 2).unwrap();
        assert_eq!(batch.shape(), &[2, 1, 2, 2]);
        assert_eq!(labels, vec![1, 2]);
        assert!(d.slice(3, 2).is_err());
    }

    #[test]
    fn gather_reorders() {
        let d = tiny();
        let (batch, labels) = d.gather(&[3, 0]).unwrap();
        assert_eq!(batch.shape(), &[2, 1, 2, 2]);
        assert_eq!(labels, vec![1, 0]);
        assert_eq!(batch.data()[0], d.images().data()[12]);
    }

    #[test]
    fn take_subsamples() {
        let d = tiny().take(2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels(), &[0, 1]);
    }

    #[test]
    fn split_and_merge_roundtrip() {
        let d = tiny();
        let (a, b) = d.split_at(1).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.len(), 4);
        assert_eq!(merged.labels(), d.labels());
        assert_eq!(merged.images().data(), d.images().data());
    }

    #[test]
    fn merge_rejects_mismatches() {
        let d = tiny();
        let other = Dataset::new(Tensor::zeros(&[1, 1, 2, 2]), vec![0], 5).unwrap();
        assert!(d.merge(&other).is_err());
        let bad_shape = Dataset::new(Tensor::zeros(&[1, 1, 3, 3]), vec![0], 3).unwrap();
        assert!(d.merge(&bad_shape).is_err());
    }

    #[test]
    fn filter_by_class_selects() {
        let d = tiny(); // labels [0, 1, 2, 1]
        let ones = d.filter_by_class(|l| l == 1).unwrap();
        assert_eq!(ones.len(), 2);
        assert!(ones.labels().iter().all(|&l| l == 1));
        let none = d.filter_by_class(|_| false).unwrap();
        assert_eq!(none.len(), 0);
        assert_eq!(none.sample_shape(), d.sample_shape());
    }

    #[test]
    fn class_histogram_counts() {
        assert_eq!(tiny().class_histogram(), vec![1, 2, 1]);
    }
}
