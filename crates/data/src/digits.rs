//! `SynthDigits`: the MNIST stand-in.
//!
//! Each class renders a seven-segment-style digit skeleton as anti-aliased
//! strokes, then applies a per-sample random affine (rotation, scale,
//! translation), stroke-thickness jitter and additive Gaussian pixel noise.
//! The task difficulty matches MNIST closely: LeNet5-class networks reach
//! ≥99% test accuracy, which is what the paper's §4.1 "LeNet5 is less
//! attackable because its loss is tiny" argument depends on.

use crate::dataset::{Dataset, DatasetConfig};
use crate::render::{render_strokes, Affine, Point};
use advcomp_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Generator for the synthetic digit dataset (28×28 greyscale, 10 classes).
#[derive(Debug, Clone, Copy)]
pub struct SynthDigits;

/// Image side length, matching MNIST.
pub const SIDE: usize = 28;

// Seven-segment endpoint geometry in normalised coordinates.
// Segments: A top, B top-right, C bottom-right, D bottom, E bottom-left,
// F top-left, G middle.
const X0: f32 = 0.32;
const X1: f32 = 0.68;
const Y0: f32 = 0.22;
const Y1: f32 = 0.50;
const Y2: f32 = 0.78;

fn segment(idx: usize) -> Vec<Point> {
    match idx {
        0 => vec![(X0, Y0), (X1, Y0)], // A
        1 => vec![(X1, Y0), (X1, Y1)], // B
        2 => vec![(X1, Y1), (X1, Y2)], // C
        3 => vec![(X0, Y2), (X1, Y2)], // D
        4 => vec![(X0, Y1), (X0, Y2)], // E
        5 => vec![(X0, Y0), (X0, Y1)], // F
        _ => vec![(X0, Y1), (X1, Y1)], // G
    }
}

/// Active segments per digit (standard seven-segment encoding).
const DIGIT_SEGMENTS: [&[usize]; 10] = [
    &[0, 1, 2, 3, 4, 5],    // 0
    &[1, 2],                // 1
    &[0, 1, 6, 4, 3],       // 2
    &[0, 1, 6, 2, 3],       // 3
    &[5, 6, 1, 2],          // 4
    &[0, 5, 6, 2, 3],       // 5
    &[0, 5, 4, 3, 2, 6],    // 6
    &[0, 1, 2],             // 7
    &[0, 1, 2, 3, 4, 5, 6], // 8
    &[0, 1, 2, 3, 5, 6],    // 9
];

impl SynthDigits {
    /// Generates `(train, test)` datasets from the config.
    ///
    /// Deterministic for a given `cfg`: train and test use independent
    /// streams derived from `cfg.seed`, so resizing one never perturbs the
    /// other.
    pub fn generate(cfg: &DatasetConfig) -> (Dataset, Dataset) {
        let train = Self::split(
            cfg.train,
            cfg.seed.wrapping_mul(2).wrapping_add(1),
            cfg.noise,
        );
        let test = Self::split(
            cfg.test,
            cfg.seed.wrapping_mul(2).wrapping_add(2),
            cfg.noise,
        );
        (train, test)
    }

    fn split(n: usize, seed: u64, noise: f32) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gauss = Normal::new(0.0f32, noise.max(0.0)).expect("noise >= 0");
        let mut data = vec![0.0f32; n * SIDE * SIDE];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Balanced classes in generation order; batching shuffles.
            let label = i % 10;
            labels.push(label);
            let plane = &mut data[i * SIDE * SIDE..(i + 1) * SIDE * SIDE];
            render_digit(plane, label, &mut rng);
            if noise > 0.0 {
                for v in plane.iter_mut() {
                    *v = (*v + gauss.sample(&mut rng)).clamp(0.0, 1.0);
                }
            }
        }
        let images = Tensor::new(&[n, 1, SIDE, SIDE], data).expect("size computed from n");
        Dataset::new(images, labels, 10).expect("labels constructed in range")
    }
}

fn render_digit<R: Rng + ?Sized>(plane: &mut [f32], digit: usize, rng: &mut R) {
    let strokes: Vec<Vec<Point>> = DIGIT_SEGMENTS[digit].iter().map(|&s| segment(s)).collect();
    let angle = rng.gen_range(-0.22f32..0.22);
    let scale = rng.gen_range(0.85f32..1.2);
    let tx = rng.gen_range(-0.06f32..0.06);
    let ty = rng.gen_range(-0.06f32..0.06);
    let thickness = rng.gen_range(0.035f32..0.06);
    let transform = Affine::new(angle, scale, tx, ty);
    render_strokes(plane, SIDE, &strokes, &transform, thickness);
    // Brightness jitter keeps the intensity distribution from collapsing to
    // a binary mask.
    let gain = rng.gen_range(0.75f32..1.0);
    for v in plane.iter_mut() {
        *v *= gain;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DatasetConfig {
        DatasetConfig {
            train: 40,
            test: 20,
            seed: 3,
            noise: 0.05,
        }
    }

    #[test]
    fn shapes_and_ranges() {
        let (train, test) = SynthDigits::generate(&cfg());
        assert_eq!(train.images().shape(), &[40, 1, SIDE, SIDE]);
        assert_eq!(test.images().shape(), &[20, 1, SIDE, SIDE]);
        assert!(train
            .images()
            .data()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn classes_balanced() {
        let (train, _) = SynthDigits::generate(&cfg());
        for c in 0..10 {
            assert_eq!(train.labels().iter().filter(|&&l| l == c).count(), 4);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = SynthDigits::generate(&cfg());
        let (b, _) = SynthDigits::generate(&cfg());
        assert_eq!(a.images().data(), b.images().data());
        let mut other = cfg();
        other.seed = 4;
        let (c, _) = SynthDigits::generate(&other);
        assert_ne!(a.images().data(), c.images().data());
    }

    #[test]
    fn train_test_disjoint_streams() {
        let (train, test) = SynthDigits::generate(&cfg());
        // Same label at index 0 (both are digit 0) but different pixels.
        assert_ne!(
            train.images().index_axis0(0).unwrap().data(),
            test.images().index_axis0(0).unwrap().data()
        );
    }

    #[test]
    fn digits_have_ink() {
        let (train, _) = SynthDigits::generate(&cfg());
        for i in 0..train.len() {
            let (img, label) = train.sample(i).unwrap();
            let ink = img.sum();
            assert!(ink > 5.0, "digit {label} at {i} nearly blank: {ink}");
        }
    }

    #[test]
    fn distinct_digits_differ() {
        // Without noise, a 1 (two segments) has far less ink than an 8.
        let cfg = DatasetConfig {
            train: 20,
            test: 10,
            seed: 9,
            noise: 0.0,
        };
        let (train, _) = SynthDigits::generate(&cfg);
        let one = train.images().index_axis0(1).unwrap().sum();
        let eight = train.images().index_axis0(8).unwrap().sum();
        assert!(eight > one * 1.5, "8 ink {eight} vs 1 ink {one}");
    }
}
