//! Training-time image augmentation.
//!
//! Standard CIFAR-style augmentation — random translation with zero padding
//! and horizontal flips — as used by the training pipelines the paper's
//! models come from. Augmentation operates on NCHW batches and is
//! deterministic given its RNG, preserving the reproducibility the paired
//! experiments need.

use advcomp_tensor::{Tensor, TensorError};
use rand::Rng;

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Augment {
    /// Maximum absolute translation, in pixels, along each axis.
    pub max_shift: usize,
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
}

impl Augment {
    /// The standard CIFAR recipe: ±4 px shifts, 50% horizontal flips.
    pub fn cifar() -> Self {
        Augment {
            max_shift: 4,
            flip_prob: 0.5,
        }
    }

    /// A digits-safe recipe: ±2 px shifts, no flips (digits are chiral).
    pub fn digits() -> Self {
        Augment {
            max_shift: 2,
            flip_prob: 0.0,
        }
    }

    /// Identity augmentation.
    pub fn none() -> Self {
        Augment {
            max_shift: 0,
            flip_prob: 0.0,
        }
    }

    /// Applies the augmentation to an NCHW batch, sampling one transform
    /// per image.
    ///
    /// # Errors
    ///
    /// Returns a rank error unless `batch` is 4-D.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        batch: &Tensor,
        rng: &mut R,
    ) -> Result<Tensor, TensorError> {
        if batch.ndim() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: batch.ndim(),
                op: "augment",
            });
        }
        let (n, c, h, w) = (
            batch.shape()[0],
            batch.shape()[1],
            batch.shape()[2],
            batch.shape()[3],
        );
        let mut out = Tensor::zeros(batch.shape());
        let src = batch.data();
        let dst = out.data_mut();
        let shift_range = self.max_shift as isize;
        for b in 0..n {
            let dy = if self.max_shift == 0 {
                0
            } else {
                rng.gen_range(-shift_range..=shift_range)
            };
            let dx = if self.max_shift == 0 {
                0
            } else {
                rng.gen_range(-shift_range..=shift_range)
            };
            let flip = self.flip_prob > 0.0 && rng.gen::<f32>() < self.flip_prob;
            for ch in 0..c {
                let plane = (b * c + ch) * h * w;
                for y in 0..h {
                    let sy = y as isize - dy;
                    if sy < 0 || sy >= h as isize {
                        continue; // zero padding
                    }
                    for x in 0..w {
                        let sx0 = if flip { w - 1 - x } else { x };
                        let sx = sx0 as isize - dx;
                        if sx < 0 || sx >= w as isize {
                            continue;
                        }
                        dst[plane + y * w + x] = src[plane + sy as usize * w + sx as usize];
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn batch() -> Tensor {
        Tensor::new(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap()
    }

    #[test]
    fn none_is_identity() {
        let x = batch();
        let y = Augment::none().apply(&x, &mut rng(0)).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn shift_pads_with_zeros() {
        let aug = Augment {
            max_shift: 1,
            flip_prob: 0.0,
        };
        // Sample until we observe a genuine shift; the padded border must
        // contain zeros and the total mass must not grow.
        let x = batch();
        let mut r = rng(1);
        let mut saw_shift = false;
        for _ in 0..20 {
            let y = aug.apply(&x, &mut r).unwrap();
            assert!(y.sum() <= x.sum() + 1e-6);
            if y.data() != x.data() {
                saw_shift = true;
                assert!(y.data().contains(&0.0));
            }
        }
        assert!(saw_shift);
    }

    #[test]
    fn flip_reverses_rows() {
        let aug = Augment {
            max_shift: 0,
            flip_prob: 1.0,
        };
        let x = batch();
        let y = aug.apply(&x, &mut rng(2)).unwrap();
        assert_eq!(y.data(), &[3., 2., 1., 6., 5., 4., 9., 8., 7.]);
        // Double flip restores.
        let z = aug.apply(&y, &mut rng(3)).unwrap();
        assert_eq!(z.data(), x.data());
    }

    #[test]
    fn per_image_independence() {
        // Two identical images in one batch should (eventually) receive
        // different transforms.
        let one = batch();
        let two =
            Tensor::stack(&[one.index_axis0(0).unwrap(), one.index_axis0(0).unwrap()]).unwrap();
        let aug = Augment::cifar();
        let mut r = rng(4);
        let mut diverged = false;
        for _ in 0..10 {
            let y = aug.apply(&two, &mut r).unwrap();
            let a = y.index_axis0(0).unwrap();
            let b = y.index_axis0(1).unwrap();
            if a.data() != b.data() {
                diverged = true;
                break;
            }
        }
        assert!(diverged);
    }

    #[test]
    fn rejects_non_batches() {
        assert!(Augment::cifar()
            .apply(&Tensor::zeros(&[3, 3]), &mut rng(0))
            .is_err());
    }

    #[test]
    fn presets() {
        assert_eq!(Augment::digits().flip_prob, 0.0);
        assert!(Augment::cifar().flip_prob > 0.0);
        assert_eq!(Augment::none().max_shift, 0);
    }
}
