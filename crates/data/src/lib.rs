//! Datasets for the `advcomp` experiments.
//!
//! The paper evaluates on MNIST (LeNet5) and CIFAR-10 (CifarNet). Those
//! corpora are network-gated in this environment, so this crate provides
//! **deterministic synthetic stand-ins** that exercise exactly the same code
//! paths at matching input geometry:
//!
//! * [`SynthDigits`] — 28×28 greyscale, 10 classes: seven-segment-style
//!   digit strokes rendered with random affine jitter, blur and pixel noise.
//!   A LeNet5-class network reaches ≥99%, matching MNIST difficulty.
//! * [`SynthObjects`] — 32×32 RGB, 10 classes: shape × palette compositions
//!   with heavy instance noise, tuned so a CifarNet-class model lands in the
//!   mid-80s — reproducing the paper's LeNet5-vs-CifarNet accuracy contrast
//!   that drives its §4.1 gradient-magnitude argument.
//!
//! When real files are available (`ADVCOMP_DATA_DIR`), [`idx::load_mnist`]
//! and [`idx::load_cifar10`] read the genuine formats instead.
//!
//! # Example
//!
//! ```
//! use advcomp_data::{SynthDigits, DatasetConfig};
//!
//! let cfg = DatasetConfig { train: 64, test: 16, seed: 1, noise: 0.05 };
//! let (train, test) = SynthDigits::generate(&cfg);
//! assert_eq!(train.len(), 64);
//! assert_eq!(train.images().shape(), &[64, 1, 28, 28]);
//! ```

mod augment;
mod batch;
mod dataset;
mod digits;
pub mod idx;
mod objects;
mod render;

pub use augment::Augment;
pub use batch::{BatchIter, Batches};
pub use dataset::{Dataset, DatasetConfig, DatasetError};
pub use digits::SynthDigits;
pub use objects::SynthObjects;
