//! A fixed-point value type with saturating integer arithmetic.

use crate::{QFormat, QFormatError, Result};
use std::fmt;

/// A fixed-point number: a raw two's-complement code paired with its
/// [`QFormat`].
///
/// Arithmetic is performed entirely on integers (the efficiency argument
/// that motivates quantisation in the paper) and saturates at the format's
/// range, mirroring accelerator behaviour.
///
/// # Example
///
/// ```
/// use advcomp_qformat::{Fixed, QFormat};
///
/// # fn main() -> Result<(), advcomp_qformat::QFormatError> {
/// let q = QFormat::new(2, 6)?;
/// let a = Fixed::from_f32(0.5, q);
/// let b = Fixed::from_f32(0.25, q);
/// assert_eq!(a.add(&b)?.to_f32(), 0.75);
/// assert_eq!(a.mul(&b)?.to_f32(), 0.125);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixed {
    raw: i64,
    format: QFormat,
}

impl Fixed {
    /// Quantises a float into this format.
    pub fn from_f32(value: f32, format: QFormat) -> Self {
        Fixed {
            raw: format.encode(value),
            format,
        }
    }

    /// Builds a value from a raw code, saturating it into range.
    pub fn from_raw(raw: i64, format: QFormat) -> Self {
        Fixed {
            raw: raw.clamp(format.min_raw(), format.max_raw()),
            format,
        }
    }

    /// The raw two's-complement code.
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The value's format.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Exact float value of this fixed-point number.
    pub fn to_f32(&self) -> f32 {
        self.format.decode(self.raw)
    }

    fn check_same_format(&self, other: &Fixed) -> Result<()> {
        if self.format != other.format {
            return Err(QFormatError::FormatMismatch {
                lhs: (self.format.int_bits(), self.format.frac_bits()),
                rhs: (other.format.int_bits(), other.format.frac_bits()),
            });
        }
        Ok(())
    }

    /// Saturating addition.
    ///
    /// # Errors
    ///
    /// Returns [`QFormatError::FormatMismatch`] when formats differ.
    pub fn add(&self, other: &Fixed) -> Result<Fixed> {
        self.check_same_format(other)?;
        Ok(Fixed::from_raw(self.raw + other.raw, self.format))
    }

    /// Saturating subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`QFormatError::FormatMismatch`] when formats differ.
    pub fn sub(&self, other: &Fixed) -> Result<Fixed> {
        self.check_same_format(other)?;
        Ok(Fixed::from_raw(self.raw - other.raw, self.format))
    }

    /// Saturating multiplication with round-to-nearest rescaling.
    ///
    /// The full-precision product carries `2f` fractional bits; it is
    /// rounded back to `f` bits before saturation, exactly as a fixed-point
    /// MAC unit would.
    ///
    /// # Errors
    ///
    /// Returns [`QFormatError::FormatMismatch`] when formats differ.
    pub fn mul(&self, other: &Fixed) -> Result<Fixed> {
        self.check_same_format(other)?;
        let wide = self.raw as i128 * other.raw as i128;
        let shift = self.format.frac_bits();
        // Round to nearest: add half the divisor before shifting,
        // symmetrically for negatives.
        let half = 1i128 << (shift.max(1) - 1);
        let rounded = if shift == 0 {
            wide
        } else if wide >= 0 {
            (wide + half) >> shift
        } else {
            -((-wide + half) >> shift)
        };
        let clamped = rounded.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        Ok(Fixed::from_raw(clamped, self.format))
    }

    /// Saturating negation.
    pub fn neg(&self) -> Fixed {
        Fixed::from_raw(-self.raw, self.format)
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f32(), self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> QFormat {
        QFormat::new(2, 6).unwrap() // Q2.6: range [-2, 1.984375]
    }

    #[test]
    fn roundtrip() {
        let x = Fixed::from_f32(0.5, q());
        assert_eq!(x.to_f32(), 0.5);
        assert_eq!(x.raw(), 32);
    }

    #[test]
    fn add_saturates() {
        let a = Fixed::from_f32(1.5, q());
        let b = Fixed::from_f32(1.5, q());
        assert_eq!(a.add(&b).unwrap().to_f32(), q().max_value());
        let c = Fixed::from_f32(-1.5, q());
        assert_eq!(c.add(&c).unwrap().to_f32(), q().min_value());
    }

    #[test]
    fn mul_rescales() {
        let a = Fixed::from_f32(0.5, q());
        let b = Fixed::from_f32(0.5, q());
        assert_eq!(a.mul(&b).unwrap().to_f32(), 0.25);
        let c = Fixed::from_f32(-0.5, q());
        assert_eq!(a.mul(&c).unwrap().to_f32(), -0.25);
    }

    #[test]
    fn mul_saturates() {
        let a = Fixed::from_f32(1.9, q());
        assert_eq!(a.mul(&a).unwrap().to_f32(), q().max_value());
    }

    #[test]
    fn format_mismatch_rejected() {
        let a = Fixed::from_f32(0.5, q());
        let b = Fixed::from_f32(0.5, QFormat::new(1, 3).unwrap());
        assert!(matches!(
            a.add(&b),
            Err(QFormatError::FormatMismatch { .. })
        ));
        assert!(a.mul(&b).is_err());
        assert!(a.sub(&b).is_err());
    }

    #[test]
    fn neg_saturates_min() {
        // -(-2.0) would be 2.0, which is out of range; saturates to max.
        let a = Fixed::from_f32(-2.0, q());
        assert_eq!(a.neg().to_f32(), q().max_value());
    }

    #[test]
    fn fixed_mul_matches_float_within_half_ulp() {
        let fmt = QFormat::new(4, 12).unwrap();
        for &(x, y) in &[(0.3f32, 0.7f32), (-1.2, 2.5), (3.9, -3.9), (0.001, 0.001)] {
            let fx = Fixed::from_f32(x, fmt);
            let fy = Fixed::from_f32(y, fmt);
            let prod = fx.mul(&fy).unwrap().to_f32();
            let reference = fmt.quantize(fx.to_f32() * fy.to_f32());
            assert!(
                (prod - reference).abs() <= fmt.resolution(),
                "{x} * {y}: fixed {prod} vs float {reference}"
            );
        }
    }
}
