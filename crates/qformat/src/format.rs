//! The [`QFormat`] descriptor and its quantiser.

use crate::{QFormatError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A signed fixed-point format `Qi.f`: `i` integer bits (the sign bit counts
/// as an integer bit, matching the paper's §3.2 convention) and `f`
/// fractional bits, for `i + f` total bits stored two's-complement.
///
/// Representable values are `k · 2^-f` for integer
/// `k ∈ [-2^(i+f-1), 2^(i+f-1) - 1]`, i.e. the closed range
/// `[-2^(i-1), 2^(i-1) - 2^-f]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    int_bits: u32,
    frac_bits: u32,
}

impl QFormat {
    /// Creates a `Qi.f` format.
    ///
    /// # Errors
    ///
    /// Returns [`QFormatError::NoIntegerBits`] when `int_bits == 0` and
    /// [`QFormatError::InvalidBitwidth`] when `int_bits + frac_bits` is
    /// outside `2..=32`.
    pub fn new(int_bits: u32, frac_bits: u32) -> Result<Self> {
        if int_bits == 0 {
            return Err(QFormatError::NoIntegerBits);
        }
        let bits = int_bits + frac_bits;
        if !(2..=32).contains(&bits) {
            return Err(QFormatError::InvalidBitwidth { bits });
        }
        Ok(QFormat {
            int_bits,
            frac_bits,
        })
    }

    /// The paper's integer-bit schedule (§3.2): bitwidth 4 → `Q1.3`,
    /// bitwidth 8 → `Q2.6`, every other bitwidth → 4 integer bits.
    ///
    /// # Errors
    ///
    /// Returns [`QFormatError::InvalidBitwidth`] when `bitwidth` cannot hold
    /// its scheduled integer bits plus at least zero fractional bits, or is
    /// outside `2..=32`.
    pub fn for_bitwidth(bitwidth: u32) -> Result<Self> {
        let int_bits = match bitwidth {
            4 => 1,
            8 => 2,
            _ => 4,
        };
        if bitwidth < int_bits {
            return Err(QFormatError::InvalidBitwidth { bits: bitwidth });
        }
        QFormat::new(int_bits, bitwidth - int_bits)
    }

    /// Integer bits (including sign).
    pub fn int_bits(&self) -> u32 {
        self.int_bits
    }

    /// Fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Total storage bits.
    pub fn total_bits(&self) -> u32 {
        self.int_bits + self.frac_bits
    }

    /// Quantisation step: `2^-f`.
    pub fn resolution(&self) -> f32 {
        (2.0f32).powi(-(self.frac_bits as i32))
    }

    /// Smallest representable value: `-2^(i-1)`.
    pub fn min_value(&self) -> f32 {
        -(2.0f32).powi(self.int_bits as i32 - 1)
    }

    /// Largest representable value: `2^(i-1) - 2^-f`.
    pub fn max_value(&self) -> f32 {
        (2.0f32).powi(self.int_bits as i32 - 1) - self.resolution()
    }

    /// Smallest raw two's-complement code.
    pub fn min_raw(&self) -> i64 {
        -(1i64 << (self.total_bits() - 1))
    }

    /// Largest raw two's-complement code.
    pub fn max_raw(&self) -> i64 {
        (1i64 << (self.total_bits() - 1)) - 1
    }

    /// Number of distinct representable levels: `2^(i+f)`.
    pub fn levels(&self) -> u64 {
        1u64 << self.total_bits()
    }

    /// Encodes a float to the nearest raw code, saturating at the range
    /// edges. Ties round away from zero (`f32::round` semantics). NaN
    /// encodes to zero — a quantised network must never propagate NaN.
    pub fn encode(&self, value: f32) -> i64 {
        if value.is_nan() {
            return 0;
        }
        let scaled = (value as f64 * (1u64 << self.frac_bits) as f64).round();
        if scaled <= self.min_raw() as f64 {
            self.min_raw()
        } else if scaled >= self.max_raw() as f64 {
            self.max_raw()
        } else {
            scaled as i64
        }
    }

    /// Decodes a raw code back to its exact float value.
    ///
    /// Raw codes outside the format's range are saturated first, so
    /// `decode(encode(x))` always lands in `[min_value, max_value]`.
    pub fn decode(&self, raw: i64) -> f32 {
        let raw = raw.clamp(self.min_raw(), self.max_raw());
        raw as f32 * self.resolution()
    }

    /// Quantises a float: round to the nearest representable level,
    /// saturating at the format's range. This is the core operation applied
    /// to every weight and activation in a quantised model.
    pub fn quantize(&self, value: f32) -> f32 {
        self.decode(self.encode(value))
    }

    /// Quantises a slice in place.
    pub fn quantize_slice(&self, values: &mut [f32]) {
        for v in values {
            *v = self.quantize(*v);
        }
    }

    /// `true` when `value` is exactly representable in this format.
    pub fn is_representable(&self, value: f32) -> bool {
        value.is_finite() && self.quantize(value) == value
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(QFormat::new(1, 3).is_ok());
        assert!(matches!(
            QFormat::new(0, 4),
            Err(QFormatError::NoIntegerBits)
        ));
        assert!(matches!(
            QFormat::new(1, 0),
            Err(QFormatError::InvalidBitwidth { bits: 1 })
        ));
        assert!(QFormat::new(4, 28).is_ok());
        assert!(QFormat::new(4, 29).is_err());
    }

    #[test]
    fn paper_bitwidth_schedule() {
        // §3.2: "a 1-bit integer when bitwidth is 4, a 2-bit integer when
        // bitwidth is 8, and 4-bit integers for the rest".
        assert_eq!(QFormat::for_bitwidth(4).unwrap().int_bits(), 1);
        assert_eq!(QFormat::for_bitwidth(8).unwrap().int_bits(), 2);
        assert_eq!(QFormat::for_bitwidth(6).unwrap().int_bits(), 4);
        assert_eq!(QFormat::for_bitwidth(12).unwrap().int_bits(), 4);
        assert_eq!(QFormat::for_bitwidth(16).unwrap().int_bits(), 4);
        assert_eq!(QFormat::for_bitwidth(16).unwrap().frac_bits(), 12);
    }

    #[test]
    fn q1_3_range_and_step() {
        let q = QFormat::new(1, 3).unwrap();
        assert_eq!(q.resolution(), 0.125);
        assert_eq!(q.min_value(), -1.0);
        assert_eq!(q.max_value(), 0.875);
        assert_eq!(q.levels(), 16);
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let q = QFormat::new(1, 3).unwrap();
        assert_eq!(q.quantize(0.3), 0.25);
        assert_eq!(q.quantize(0.32), 0.375);
        assert_eq!(q.quantize(-0.99), -1.0);
        assert_eq!(q.quantize(0.0), 0.0);
    }

    #[test]
    fn quantize_saturates() {
        let q = QFormat::new(1, 3).unwrap();
        assert_eq!(q.quantize(5.0), 0.875);
        assert_eq!(q.quantize(-5.0), -1.0);
        assert_eq!(q.quantize(f32::INFINITY), 0.875);
        assert_eq!(q.quantize(f32::NEG_INFINITY), -1.0);
    }

    #[test]
    fn quantize_nan_to_zero() {
        let q = QFormat::new(2, 6).unwrap();
        assert_eq!(q.quantize(f32::NAN), 0.0);
    }

    #[test]
    fn quantize_is_idempotent() {
        let q = QFormat::new(2, 6).unwrap();
        for &v in &[0.3f32, -1.7, 2.0, 123.0, -0.015625] {
            let once = q.quantize(v);
            assert_eq!(q.quantize(once), once);
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_codes() {
        let q = QFormat::new(1, 3).unwrap();
        for raw in q.min_raw()..=q.max_raw() {
            let v = q.decode(raw);
            assert_eq!(q.encode(v), raw);
            assert!(q.is_representable(v));
        }
    }

    #[test]
    fn decode_saturates_out_of_range_raw() {
        let q = QFormat::new(1, 3).unwrap();
        assert_eq!(q.decode(1000), q.max_value());
        assert_eq!(q.decode(-1000), q.min_value());
    }

    #[test]
    fn wide_format_precision() {
        let q = QFormat::for_bitwidth(16).unwrap(); // Q4.12
        let v = 1.000_244_1_f32; // 1 + 2^-12
        assert!(q.is_representable(v));
        let pi = std::f32::consts::PI;
        assert!((q.quantize(pi) - pi).abs() <= q.resolution() / 2.0 + 1e-7);
    }

    #[test]
    fn quantize_slice_in_place() {
        let q = QFormat::new(1, 3).unwrap();
        let mut xs = vec![0.3, -2.0, 0.875];
        q.quantize_slice(&mut xs);
        assert_eq!(xs, vec![0.25, -1.0, 0.875]);
    }

    #[test]
    fn display_format() {
        assert_eq!(QFormat::new(2, 6).unwrap().to_string(), "Q2.6");
    }

    #[test]
    fn clipping_effect_shrinks_with_int_bits() {
        // The clipping effect the paper attributes the defensive behaviour
        // to: fewer integer bits → smaller saturation ceiling.
        let q4 = QFormat::for_bitwidth(4).unwrap();
        let q8 = QFormat::for_bitwidth(8).unwrap();
        let q16 = QFormat::for_bitwidth(16).unwrap();
        assert!(q4.max_value() < q8.max_value());
        assert!(q8.max_value() < q16.max_value());
    }
}
