//! Signed fixed-point (Q-format) numerics.
//!
//! The paper quantises both weights and activations to fixed-point formats
//! written `Qi.f`: `i` integer bits (including sign) plus `f` fractional
//! bits, `i + f` bits total. §3.2 fixes the integer-bit schedule used for
//! every experiment: **1 integer bit at bitwidth 4, 2 at bitwidth 8, and 4
//! for every other bitwidth** — reproduced by [`QFormat::for_bitwidth`].
//!
//! Two layers of API:
//!
//! * [`QFormat`] — a format descriptor with a saturating round-to-nearest
//!   quantiser over `f32`, plus bit-exact integer encode/decode.
//! * [`Fixed`] — a value type carrying `(raw integer, format)` with
//!   saturating arithmetic, demonstrating that inference really can run on
//!   integer ops (the paper's efficiency motivation).
//!
//! # Example
//!
//! ```
//! use advcomp_qformat::QFormat;
//!
//! # fn main() -> Result<(), advcomp_qformat::QFormatError> {
//! // Paper's 4-bit format: Q1.3 — range [-1, 0.875], step 0.125.
//! let q = QFormat::for_bitwidth(4)?;
//! assert_eq!(q.int_bits(), 1);
//! assert_eq!(q.frac_bits(), 3);
//! assert_eq!(q.quantize(0.3), 0.25);
//! assert_eq!(q.quantize(7.0), q.max_value()); // saturates
//! # Ok(())
//! # }
//! ```

mod error;
mod fixed;
mod format;

pub use error::QFormatError;
pub use fixed::Fixed;
pub use format::QFormat;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, QFormatError>;
