use std::fmt;

/// Errors produced when constructing or using fixed-point formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QFormatError {
    /// A format's total bitwidth was outside the supported `2..=32` range.
    InvalidBitwidth {
        /// Requested total bits (`int + frac`).
        bits: u32,
    },
    /// A format had zero integer bits — the sign bit must exist.
    NoIntegerBits,
    /// Two [`crate::Fixed`] operands carried different formats.
    FormatMismatch {
        /// Left operand format, as `(int_bits, frac_bits)`.
        lhs: (u32, u32),
        /// Right operand format.
        rhs: (u32, u32),
    },
}

impl fmt::Display for QFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QFormatError::InvalidBitwidth { bits } => {
                write!(
                    f,
                    "total bitwidth {bits} is outside the supported range 2..=32"
                )
            }
            QFormatError::NoIntegerBits => {
                write!(f, "format requires at least one integer (sign) bit")
            }
            QFormatError::FormatMismatch { lhs, rhs } => write!(
                f,
                "fixed-point formats differ: Q{}.{} vs Q{}.{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
        }
    }
}

impl std::error::Error for QFormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(QFormatError::InvalidBitwidth { bits: 40 }
            .to_string()
            .contains("40"));
        assert!(QFormatError::NoIntegerBits.to_string().contains("sign"));
        let e = QFormatError::FormatMismatch {
            lhs: (1, 3),
            rhs: (2, 6),
        };
        assert!(e.to_string().contains("Q1.3"));
        assert!(e.to_string().contains("Q2.6"));
    }
}
