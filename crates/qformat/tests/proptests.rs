//! Property-based tests for fixed-point numerics.

use advcomp_qformat::{Fixed, QFormat};
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = QFormat> {
    (1u32..8, 0u32..16).prop_filter_map("valid format", |(i, f)| QFormat::new(i, f).ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode/decode roundtrips every representable value bit-exactly.
    #[test]
    fn encode_decode_roundtrip(fmt in formats(), raw_frac in 0.0f64..1.0) {
        let span = (fmt.max_raw() - fmt.min_raw()) as f64;
        let raw = fmt.min_raw() + (raw_frac * span) as i64;
        let value = fmt.decode(raw);
        prop_assert_eq!(fmt.encode(value), raw);
        prop_assert!(fmt.is_representable(value));
    }

    /// quantize is idempotent, bounded and within half a step of the clamp.
    #[test]
    fn quantize_contract(fmt in formats(), v in -1e4f32..1e4) {
        let q = fmt.quantize(v);
        prop_assert_eq!(fmt.quantize(q), q);
        prop_assert!(q >= fmt.min_value() && q <= fmt.max_value());
        let clamped = v.clamp(fmt.min_value(), fmt.max_value());
        prop_assert!((q - clamped).abs() <= fmt.resolution() / 2.0 + 1e-6);
    }

    /// quantize is monotone non-decreasing.
    #[test]
    fn quantize_monotone(fmt in formats(), a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(fmt.quantize(lo) <= fmt.quantize(hi));
    }

    /// Fixed addition saturates instead of wrapping, and matches clamped
    /// real addition to within representation error.
    #[test]
    fn fixed_add_saturates(fmt in formats(), a in -10.0f32..10.0, b in -10.0f32..10.0) {
        let fa = Fixed::from_f32(a, fmt);
        let fb = Fixed::from_f32(b, fmt);
        let sum = fa.add(&fb).unwrap();
        let expected = (fa.to_f32() + fb.to_f32()).clamp(fmt.min_value(), fmt.max_value());
        prop_assert!((sum.to_f32() - expected).abs() <= fmt.resolution() + 1e-6,
            "{a} + {b}: {} vs {expected}", sum.to_f32());
    }

    /// Fixed multiplication matches float multiply-then-quantise within one
    /// step (rounding of the product rescale).
    #[test]
    fn fixed_mul_accuracy(fmt in formats(), a in -3.0f32..3.0, b in -3.0f32..3.0) {
        let fa = Fixed::from_f32(a, fmt);
        let fb = Fixed::from_f32(b, fmt);
        let prod = fa.mul(&fb).unwrap().to_f32();
        let expected = fmt.quantize(fa.to_f32() * fb.to_f32());
        prop_assert!((prod - expected).abs() <= fmt.resolution() + 1e-6,
            "{a}*{b}: fixed {prod} vs {expected}");
    }

    /// The paper's bitwidth schedule always yields the scheduled integer
    /// bits and total width.
    #[test]
    fn schedule_total_bits(bw in 2u32..33) {
        if let Ok(fmt) = QFormat::for_bitwidth(bw) {
            prop_assert_eq!(fmt.total_bits(), bw);
            let expected_int = match bw { 4 => 1, 8 => 2, _ => 4 };
            prop_assert_eq!(fmt.int_bits(), expected_int);
        } else {
            // Only bitwidths 2 and 3 are too small to hold their scheduled
            // 4 integer bits.
            prop_assert!(bw < 4, "for_bitwidth({bw}) should have succeeded");
        }
    }
}
