//! Property tests for the Q-format quantiser invariants the compression
//! pipeline leans on: idempotence (quantising a quantised value is the
//! identity), saturation exactly at the representable range edges, and
//! monotonicity of the clamp/round map.
//!
//! Complements `proptests.rs` (codec round-trips, fixed-point arithmetic);
//! this file is about the *quantiser as a function* — the properties that
//! make `Quantizer::quantize_weights` safe to apply repeatedly and make
//! pruning/quantisation order-insensitive arguments in the paper valid.

use advcomp_qformat::QFormat;
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = QFormat> {
    // frac ≥ 1 keeps the total width ≥ 2 bits, the QFormat minimum.
    (1u32..8, 1u32..12).prop_map(|(i, f)| QFormat::new(i, f).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Quantisation is idempotent: once a value sits on the grid,
    /// re-quantising must return it bit-for-bit. (If this failed, every
    /// fine-tune→re-quantise cycle would walk the weights.)
    #[test]
    fn quantize_is_idempotent(fmt in formats(), v in -300.0f32..300.0) {
        let once = fmt.quantize(v);
        let twice = fmt.quantize(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits(),
            "quantize not idempotent for {} on {:?}", v, fmt);
    }

    /// Everything at or beyond the range edges saturates exactly to the
    /// edge values — no wraparound, no overflow into the wrong sign.
    #[test]
    fn saturates_at_range_edges(fmt in formats(), beyond in 0.0f32..1e6) {
        let hi = fmt.max_value();
        let lo = fmt.min_value();
        prop_assert_eq!(fmt.quantize(hi + beyond), hi);
        prop_assert_eq!(fmt.quantize(lo - beyond), lo);
        // The edges themselves are representable fixed points.
        prop_assert_eq!(fmt.quantize(hi), hi);
        prop_assert_eq!(fmt.quantize(lo), lo);
        prop_assert!(fmt.is_representable(hi));
        prop_assert!(fmt.is_representable(lo));
    }

    /// The clamp/round map is monotone: a ≤ b implies q(a) ≤ q(b). This is
    /// what makes magnitude ordering survive quantisation (and with it, the
    /// meaning of magnitude-based pruning thresholds on quantised nets).
    #[test]
    fn quantize_is_monotone(fmt in formats(), a in -300.0f32..300.0, b in -300.0f32..300.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(fmt.quantize(lo) <= fmt.quantize(hi),
            "monotonicity violated: q({}) > q({}) on {:?}", lo, hi, fmt);
    }

    /// Quantisation error is bounded by half a resolution step inside the
    /// representable range.
    #[test]
    fn in_range_error_is_half_step(fmt in formats(), v in -0.9f32..0.9) {
        let v = v * (fmt.max_value() - fmt.min_value()) / 2.0;
        if v >= fmt.min_value() && v <= fmt.max_value() {
            let err = (fmt.quantize(v) - v).abs();
            prop_assert!(err <= fmt.resolution() / 2.0 + f32::EPSILON,
                "error {} exceeds half-step {} for {} on {:?}", err, fmt.resolution() / 2.0, v, fmt);
        }
    }

    /// `quantize_slice` agrees elementwise with scalar `quantize`.
    #[test]
    fn slice_matches_scalar(fmt in formats(), values in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        let mut slice = values.clone();
        fmt.quantize_slice(&mut slice);
        for (&orig, &q) in values.iter().zip(slice.iter()) {
            prop_assert_eq!(q.to_bits(), fmt.quantize(orig).to_bits());
        }
    }
}

#[test]
fn non_finite_inputs_collapse_to_zero_or_saturate() {
    // NaN must not poison a weight tensor: the seed contract maps it to 0.
    let fmt = QFormat::new(2, 6).unwrap();
    assert_eq!(fmt.quantize(f32::NAN), 0.0);
    assert_eq!(fmt.quantize(f32::INFINITY), fmt.max_value());
    assert_eq!(fmt.quantize(f32::NEG_INFINITY), fmt.min_value());
}
