//! The compiled forward executor: [`ExecPlan`].
//!
//! `compile` lowers a [`Sequential`](advcomp_nn::Sequential) to the IR,
//! runs the pass pipeline, then walks the fused ops once to produce a flat
//! [`Step`] program plus a statically planned activation arena
//! ([`crate::plan`]). Everything a forward pass needs is materialised at
//! compile time:
//!
//! * dense f32 weights are transposed into GEMM layout **and** pre-packed
//!   into the panel format the dense microkernel consumes (the
//!   `Sequential` path re-packs per call);
//! * Q4 packed weights are widened to Q8-layout codes once
//!   ([`QTensor::widen_to_q8`]), hoisting the nibble unpack out of the
//!   inner GEMM loop — integer sums are computed from the same code
//!   values, so results stay bit-identical;
//! * per-layer activation-quantisation buffers ([`QActivations`]) are
//!   owned by the plan and rewritten in place;
//! * every f32 intermediate lives at a fixed per-sample offset in one
//!   arena, scaled by the batch size at run time.
//!
//! The steady-state forward therefore performs **zero plan-owned heap
//! allocation**: the only growth happens when a larger batch than any
//! seen before arrives, and every such growth increments
//! [`ExecPlan::alloc_events`] so tests can assert the steady state.
//!
//! Arithmetic parity: each step dispatches into the same
//! `advcomp-tensor` kernels the layers use, preserving operand order,
//! parallel-banding thresholds and per-element epilogue order, so the
//! compiled forward is bit-identical to `Sequential::forward` on the
//! scalar backend (and on SIMD, identical kernel-for-kernel).

use std::time::Instant;

use advcomp_nn::{QuantizedWeights, Sequential};
use advcomp_qformat::QFormat;
use advcomp_tensor::{
    gemm_prepacked, gemm_sparse, im2col_slice, probe_matmul_kernel, qmatmul,
    quantize_activations_into, rows_to_nchw_slice, simd, Conv2dGeometry, KernelBackend,
    MatmulKernel, PackedGemmB, QActivations, QuantKind, Tensor, QK,
};

use crate::fuse::{fuse, BnFold, FusedOp, FusionStats, GemmUnit};
use crate::ir::{lower, Act, GemmWeight};
use crate::plan::{plan_arena, validate_no_alias, BufferLife, MemoryPlan};
use crate::{GraphError, Result};

/// Where a step reads its primary operand from.
#[derive(Debug, Clone, Copy)]
enum Src {
    /// The caller's input tensor.
    Input,
    /// An arena buffer.
    Buf(usize),
}

/// A GEMM weight in executor-ready form.
#[derive(Debug)]
enum PlannedGemm {
    /// f32 weights: raw `[k, n]` row-major (for the sparse kernel) plus
    /// the pre-packed panels (for the dense kernel).
    F32 {
        raw: Vec<f32>,
        packed: PackedGemmB,
        k: usize,
        n: usize,
    },
    /// Packed int8 weights (Q4 already widened to Q8 layout).
    Packed { weights: QuantizedWeights },
}

/// Fused per-element epilogue of one GEMM: bias, optional batch-norm,
/// optional activation, optional i8 code emission for the next layer.
#[derive(Debug)]
struct EpilogueParams {
    bias: Vec<f32>,
    bn: Option<BnFold>,
    act: Option<Act>,
    /// `(qbuf index, format)` — emit codes of the final value.
    emit: Option<(usize, QFormat)>,
}

/// One executor instruction. Indices refer to the plan's side tables.
#[derive(Debug)]
enum Step {
    /// Copy the caller input into an arena buffer (only when the first
    /// real op is in-place).
    CopyInput { dst: usize },
    /// Unroll convolution patches into the column buffer.
    Im2col {
        src: Src,
        dst: usize,
        geom: Conv2dGeometry,
    },
    /// f32 GEMM; probes the activation density per call and dispatches to
    /// the packed dense or zero-skipping sparse kernel, exactly like
    /// `Tensor::matmul`.
    Gemm { src: Src, dst: usize, weight: usize },
    /// Quantise f32 activations into a plan-owned i8 buffer.
    QuantizeAct { src: Src, qbuf: usize, cols: usize },
    /// Int8 GEMM with fused dequantisation.
    QGemm {
        qbuf: usize,
        dst: usize,
        weight: usize,
    },
    /// In-place bias/batch-norm/activation epilogue over GEMM rows.
    Epilogue { buf: usize, cols: usize, epi: usize },
    /// Permute GEMM rows (`[m, oc]`) back to NCHW.
    RowsToNchw {
        src: usize,
        dst: usize,
        oc: usize,
        oh: usize,
        ow: usize,
    },
    /// 2-D max pooling.
    MaxPool {
        src: Src,
        dst: usize,
        c: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        kernel: usize,
        stride: usize,
    },
    /// 2-D average pooling.
    AvgPool {
        src: Src,
        dst: usize,
        c: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        kernel: usize,
        stride: usize,
    },
    /// In-place elementwise activation.
    EltAct { buf: usize, act: Act },
    /// In-place simulated quantisation.
    EltQuantize { buf: usize, format: QFormat },
    /// In-place standalone batch normalisation over `[n, c, hw]`.
    EltBatchNorm {
        buf: usize,
        bn: usize,
        c: usize,
        hw: usize,
    },
}

/// Compile-time builder state.
#[derive(Default)]
struct Builder {
    steps: Vec<Step>,
    lives: Vec<BufferLife>,
    weights: Vec<PlannedGemm>,
    epilogues: Vec<EpilogueParams>,
    bns: Vec<BnFold>,
    qbufs: Vec<QActivations>,
    /// Per-qbuf `(rows per sample, cols)` for pre-sizing.
    qbuf_dims: Vec<(usize, usize)>,
}

impl Builder {
    /// Registers a buffer of `size` per-sample elements defined by the
    /// *next* step to be pushed.
    fn buf(&mut self, size: usize) -> usize {
        let id = self.lives.len();
        let def = self.steps.len();
        self.lives.push(BufferLife {
            size,
            def,
            last_use: def,
        });
        id
    }

    /// Extends a buffer's lifetime to the next step to be pushed.
    fn touch(&mut self, src: Src) {
        if let Src::Buf(id) = src {
            self.lives[id].last_use = self.steps.len();
        }
    }

    /// Ensures `cur` is an arena buffer (copying the input when the first
    /// op wants to work in place).
    fn materialize(&mut self, cur: Src, size: usize) -> usize {
        match cur {
            Src::Buf(id) => id,
            Src::Input => {
                let dst = self.buf(size);
                self.steps.push(Step::CopyInput { dst });
                dst
            }
        }
    }

    /// Transposes and pre-packs an f32 `[out, k]` weight.
    fn push_f32_weight(&mut self, w: &Tensor) -> Result<usize> {
        let wt = w.t()?;
        let (k, n) = (wt.shape()[0], wt.shape()[1]);
        let raw = wt.into_data();
        let packed = PackedGemmB::pack(&raw, k, n)?;
        self.weights.push(PlannedGemm::F32 { raw, packed, k, n });
        Ok(self.weights.len() - 1)
    }

    /// Installs packed weights, widening Q4 codes to Q8 layout once so the
    /// GEMM inner loop never unpacks nibbles.
    fn push_packed_weight(&mut self, q: &QuantizedWeights) -> usize {
        let weights = if q.tensor().kind() == QuantKind::Q4 {
            QuantizedWeights::new(q.tensor().widen_to_q8(), q.act_format())
        } else {
            q.clone()
        };
        self.weights.push(PlannedGemm::Packed { weights });
        self.weights.len() - 1
    }

    /// Allocates a plan-owned activation-quantisation buffer.
    fn qbuf(&mut self, format: QFormat, rows_ps: usize, cols: usize) -> Result<usize> {
        self.qbufs.push(QActivations::with_format(format)?);
        self.qbuf_dims.push((rows_ps, cols));
        Ok(self.qbufs.len() - 1)
    }

    /// Registers a GEMM epilogue.
    fn epilogue(&mut self, unit: &GemmUnit, emit: Option<(usize, QFormat)>) -> usize {
        self.epilogues.push(EpilogueParams {
            bias: unit.bias.clone(),
            bn: unit.bn.clone(),
            act: unit.act,
            emit,
        });
        self.epilogues.len() - 1
    }
}

/// Disjoint `(src, dst)` slices of one arena. The planner guarantees the
/// ranges never alias; violating that is a compiler bug, not user error.
fn split_pair(
    arena: &mut [f32],
    src: std::ops::Range<usize>,
    dst: std::ops::Range<usize>,
) -> (&[f32], &mut [f32]) {
    if src.end <= dst.start {
        let (lo, hi) = arena.split_at_mut(dst.start);
        let dlen = dst.end - dst.start;
        (&lo[src], &mut hi[..dlen])
    } else if dst.end <= src.start {
        let (lo, hi) = arena.split_at_mut(src.start);
        let slen = src.end - src.start;
        (&hi[..slen], &mut lo[dst])
    } else {
        unreachable!("memory plan produced aliasing src/dst ranges")
    }
}

/// A compiled, statically memory-planned forward pass.
///
/// Built once per model (serve replicas compile per generation, attacks
/// per crafting run), then driven with [`ExecPlan::forward`] /
/// [`ExecPlan::forward_into`]. Training and backward stay on
/// [`Sequential`] — the plan has no parameter gradients, caches or
/// stochastic layers, which is exactly what lets it pre-plan memory.
#[derive(Debug)]
pub struct ExecPlan {
    backend: KernelBackend,
    input_shape: Vec<usize>,
    output_shape: Vec<usize>,
    steps: Vec<Step>,
    weights: Vec<PlannedGemm>,
    epilogues: Vec<EpilogueParams>,
    bns: Vec<BnFold>,
    qbufs: Vec<QActivations>,
    qbuf_dims: Vec<(usize, usize)>,
    /// High-water code length per qbuf, for allocation accounting.
    qbuf_hw: Vec<usize>,
    sizes: Vec<usize>,
    offsets: Vec<usize>,
    arena_elems: usize,
    unplanned_elems: usize,
    out_buf: usize,
    arena: Vec<f32>,
    alloc_events: u64,
    compile_us: u64,
    stats: FusionStats,
}

impl ExecPlan {
    /// Compiles `model` for per-sample `input_shape` (no batch dimension,
    /// e.g. `[1, 28, 28]`), using the process-wide kernel backend.
    ///
    /// # Errors
    ///
    /// [`GraphError::Unsupported`] when a layer has no lowering,
    /// [`GraphError::Shape`] when shapes are inconsistent.
    pub fn compile(model: &Sequential, input_shape: &[usize]) -> Result<ExecPlan> {
        ExecPlan::compile_with_backend(model, input_shape, simd::backend())
    }

    /// As [`ExecPlan::compile`] with an explicit kernel backend, for
    /// scalar-vs-SIMD comparisons inside one process.
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::compile`].
    pub fn compile_with_backend(
        model: &Sequential,
        input_shape: &[usize],
        backend: KernelBackend,
    ) -> Result<ExecPlan> {
        let started = Instant::now();
        let graph = fuse(lower(model, input_shape)?);
        let stats = graph.stats;
        let mut b = Builder::default();
        let mut cur = Src::Input;
        let mut cur_shape = graph.input_shape.clone();
        let mut cur_codes: Option<usize> = None;
        for (op, out_shape) in &graph.ops {
            match op {
                FusedOp::Conv2d {
                    unit,
                    kernel,
                    stride,
                    padding,
                } => {
                    let geom = Conv2dGeometry {
                        in_channels: cur_shape[0],
                        in_h: cur_shape[1],
                        in_w: cur_shape[2],
                        kernel_h: *kernel,
                        kernel_w: *kernel,
                        stride: *stride,
                        padding: *padding,
                    };
                    let (oh, ow) = geom.output_hw()?;
                    let patch = geom.patch_len();
                    let rows_ps = oh * ow;
                    let oc = unit.weight.out_features();
                    let scratch = b.buf(rows_ps * patch);
                    b.touch(cur);
                    b.steps.push(Step::Im2col {
                        src: cur,
                        dst: scratch,
                        geom,
                    });
                    let rows_buf;
                    match &unit.weight {
                        GemmWeight::Dense(w2d) => {
                            let weight = b.push_f32_weight(w2d)?;
                            b.touch(Src::Buf(scratch));
                            rows_buf = b.buf(rows_ps * oc);
                            b.steps.push(Step::Gemm {
                                src: Src::Buf(scratch),
                                dst: rows_buf,
                                weight,
                            });
                        }
                        GemmWeight::Packed(q) => {
                            let weight = b.push_packed_weight(q);
                            let qbuf = b.qbuf(q.act_format(), rows_ps, patch)?;
                            b.touch(Src::Buf(scratch));
                            b.steps.push(Step::QuantizeAct {
                                src: Src::Buf(scratch),
                                qbuf,
                                cols: patch,
                            });
                            rows_buf = b.buf(rows_ps * oc);
                            b.steps.push(Step::QGemm {
                                qbuf,
                                dst: rows_buf,
                                weight,
                            });
                        }
                    }
                    let epi = b.epilogue(unit, None);
                    b.touch(Src::Buf(rows_buf));
                    b.steps.push(Step::Epilogue {
                        buf: rows_buf,
                        cols: oc,
                        epi,
                    });
                    b.touch(Src::Buf(rows_buf));
                    let nchw = b.buf(oc * oh * ow);
                    b.steps.push(Step::RowsToNchw {
                        src: rows_buf,
                        dst: nchw,
                        oc,
                        oh,
                        ow,
                    });
                    cur = Src::Buf(nchw);
                    cur_shape = out_shape.clone();
                    cur_codes = None;
                }
                FusedOp::Dense { unit } => {
                    let k = unit.weight.in_features();
                    let nf = unit.weight.out_features();
                    let dst;
                    match &unit.weight {
                        GemmWeight::Dense(w) => {
                            let weight = b.push_f32_weight(w)?;
                            b.touch(cur);
                            dst = b.buf(nf);
                            b.steps.push(Step::Gemm {
                                src: cur,
                                dst,
                                weight,
                            });
                        }
                        GemmWeight::Packed(q) => {
                            let weight = b.push_packed_weight(q);
                            let qbuf = if unit.consume_codes {
                                cur_codes.ok_or_else(|| {
                                    GraphError::Unsupported(
                                        "int8 chain consumer without emitted codes".into(),
                                    )
                                })?
                            } else {
                                let qbuf = b.qbuf(q.act_format(), 1, k)?;
                                b.touch(cur);
                                b.steps.push(Step::QuantizeAct {
                                    src: cur,
                                    qbuf,
                                    cols: k,
                                });
                                qbuf
                            };
                            dst = b.buf(nf);
                            b.steps.push(Step::QGemm { qbuf, dst, weight });
                        }
                    }
                    let emit = match unit.emit_codes {
                        Some(format) => Some((b.qbuf(format, 1, nf)?, format)),
                        None => None,
                    };
                    let epi = b.epilogue(unit, emit);
                    b.touch(Src::Buf(dst));
                    b.steps.push(Step::Epilogue {
                        buf: dst,
                        cols: nf,
                        epi,
                    });
                    cur = Src::Buf(dst);
                    cur_shape = out_shape.clone();
                    cur_codes = emit.map(|(q, _)| q);
                }
                FusedOp::Activation(act) => {
                    let buf = b.materialize(cur, cur_shape.iter().product());
                    b.touch(Src::Buf(buf));
                    b.steps.push(Step::EltAct { buf, act: *act });
                    cur = Src::Buf(buf);
                    cur_codes = None;
                }
                FusedOp::Quantize(format) => {
                    let buf = b.materialize(cur, cur_shape.iter().product());
                    b.touch(Src::Buf(buf));
                    b.steps.push(Step::EltQuantize {
                        buf,
                        format: *format,
                    });
                    cur = Src::Buf(buf);
                    cur_codes = None;
                }
                FusedOp::BatchNorm(fold) => {
                    let buf = b.materialize(cur, cur_shape.iter().product());
                    let bn = b.bns.len();
                    b.bns.push(fold.clone());
                    b.touch(Src::Buf(buf));
                    b.steps.push(Step::EltBatchNorm {
                        buf,
                        bn,
                        c: cur_shape[0],
                        hw: cur_shape[1] * cur_shape[2],
                    });
                    cur = Src::Buf(buf);
                    cur_codes = None;
                }
                FusedOp::MaxPool2d { kernel, stride } | FusedOp::AvgPool2d { kernel, stride } => {
                    let (c, h, w) = (cur_shape[0], cur_shape[1], cur_shape[2]);
                    let (oh, ow) = (out_shape[1], out_shape[2]);
                    b.touch(cur);
                    let dst = b.buf(c * oh * ow);
                    let step = if matches!(op, FusedOp::MaxPool2d { .. }) {
                        Step::MaxPool {
                            src: cur,
                            dst,
                            c,
                            h,
                            w,
                            oh,
                            ow,
                            kernel: *kernel,
                            stride: *stride,
                        }
                    } else {
                        Step::AvgPool {
                            src: cur,
                            dst,
                            c,
                            h,
                            w,
                            oh,
                            ow,
                            kernel: *kernel,
                            stride: *stride,
                        }
                    };
                    b.steps.push(step);
                    cur = Src::Buf(dst);
                    cur_shape = out_shape.clone();
                    cur_codes = None;
                }
                FusedOp::Flatten => {
                    // Pure reshape: no step, no data movement.
                    cur_shape = out_shape.clone();
                    cur_codes = None;
                }
            }
        }
        let out_buf = b.materialize(cur, cur_shape.iter().product());
        // The output must survive every step so nothing recycles it
        // before the caller copies it out.
        b.lives[out_buf].last_use = b.steps.len();
        let plan: MemoryPlan = plan_arena(&b.lives);
        validate_no_alias(&b.lives, &plan).map_err(GraphError::Shape)?;
        let qbuf_hw = vec![0usize; b.qbufs.len()];
        Ok(ExecPlan {
            backend,
            input_shape: graph.input_shape,
            output_shape: cur_shape,
            steps: b.steps,
            weights: b.weights,
            epilogues: b.epilogues,
            bns: b.bns,
            qbufs: b.qbufs,
            qbuf_dims: b.qbuf_dims,
            qbuf_hw,
            sizes: b.lives.iter().map(|l| l.size).collect(),
            offsets: plan.offsets,
            arena_elems: plan.arena_len,
            unplanned_elems: plan.total_len,
            out_buf,
            arena: Vec::new(),
            alloc_events: 0,
            compile_us: started.elapsed().as_micros() as u64,
            stats,
        })
    }

    /// Runs the compiled forward, writing logits into `out` (reusing its
    /// allocation when large enough). `input` is `[n, input_shape...]`.
    ///
    /// # Errors
    ///
    /// [`GraphError::Shape`] on a batch-shape mismatch, or a tensor error
    /// from a kernel.
    pub fn forward_into(&mut self, input: &Tensor, out: &mut Tensor) -> Result<()> {
        let shape = input.shape();
        if shape.len() != self.input_shape.len() + 1
            || shape[1..] != self.input_shape[..]
            || shape[0] == 0
        {
            return Err(GraphError::Shape(format!(
                "plan compiled for [n{}] inputs, fed {shape:?}",
                self.input_shape
                    .iter()
                    .map(|d| format!(", {d}"))
                    .collect::<String>()
            )));
        }
        let n = shape[0];
        let need = self.arena_elems * n;
        if need > self.arena.len() {
            self.arena.resize(need, 0.0);
            self.alloc_events += 1;
        }
        let input_data = input.data();
        let ExecPlan {
            backend,
            steps,
            weights,
            epilogues,
            bns,
            qbufs,
            qbuf_hw,
            sizes,
            offsets,
            arena,
            alloc_events,
            ..
        } = self;
        let backend = *backend;
        let rng = |id: usize| offsets[id] * n..offsets[id] * n + sizes[id] * n;
        for step in steps.iter() {
            match step {
                Step::CopyInput { dst } => {
                    arena[rng(*dst)].copy_from_slice(input_data);
                }
                Step::Im2col { src, dst, geom } => match src {
                    Src::Input => im2col_slice(input_data, n, geom, &mut arena[rng(*dst)])?,
                    Src::Buf(s) => {
                        let (sl, dl) = split_pair(arena, rng(*s), rng(*dst));
                        im2col_slice(sl, n, geom, dl)?;
                    }
                },
                Step::Gemm { src, dst, weight } => {
                    let PlannedGemm::F32 {
                        raw,
                        packed,
                        k,
                        n: nf,
                    } = &weights[*weight]
                    else {
                        unreachable!("f32 GEMM bound to packed weights");
                    };
                    let (sl, dl): (&[f32], &mut [f32]) = match src {
                        Src::Input => (input_data, &mut arena[rng(*dst)]),
                        Src::Buf(s) => split_pair(arena, rng(*s), rng(*dst)),
                    };
                    let m = sl.len() / k;
                    // Same density probe as `Tensor::matmul`: the kernel
                    // choice (and therefore the arithmetic) matches the
                    // layer-at-a-time forward exactly.
                    match probe_matmul_kernel(sl) {
                        MatmulKernel::Dense => gemm_prepacked(backend, sl, m, packed, dl)?,
                        MatmulKernel::Sparse => gemm_sparse(backend, sl, m, raw, *k, *nf, dl)?,
                    }
                }
                Step::QuantizeAct { src, qbuf, cols } => {
                    let sl: &[f32] = match src {
                        Src::Input => input_data,
                        Src::Buf(s) => &arena[rng(*s)],
                    };
                    let rows = sl.len() / cols;
                    let q = &mut qbufs[*qbuf];
                    let format = q.format();
                    quantize_activations_into(backend, sl, rows, *cols, format, q)?;
                    let len = q.codes().len();
                    if len > qbuf_hw[*qbuf] {
                        qbuf_hw[*qbuf] = len;
                        *alloc_events += 1;
                    }
                }
                Step::QGemm { qbuf, dst, weight } => {
                    let PlannedGemm::Packed { weights: qw } = &weights[*weight] else {
                        unreachable!("int8 GEMM bound to f32 weights");
                    };
                    qmatmul(backend, &qbufs[*qbuf], qw.tensor(), &mut arena[rng(*dst)])?;
                }
                Step::Epilogue { buf, cols, epi } => {
                    let params = &epilogues[*epi];
                    let dst = &mut arena[rng(*buf)];
                    let rows = dst.len() / cols;
                    let mut emit: Option<(&mut [i8], QFormat, usize)> = None;
                    if let Some((qb, format)) = params.emit {
                        let q = &mut qbufs[qb];
                        q.reset(rows, *cols);
                        let len = q.codes().len();
                        if len > qbuf_hw[qb] {
                            qbuf_hw[qb] = len;
                            *alloc_events += 1;
                        }
                        emit = Some((q.codes_mut(), format, cols.div_ceil(QK) * QK));
                    }
                    for row in 0..rows {
                        let out_row = &mut dst[row * cols..(row + 1) * cols];
                        for (j, v) in out_row.iter_mut().enumerate() {
                            let mut y = *v + params.bias[j];
                            if let Some(bn) = &params.bn {
                                let norm = (y - bn.mean[j]) * bn.inv_std[j];
                                y = bn.gamma[j] * norm + bn.beta[j];
                            }
                            if let Some(act) = params.act {
                                y = act.apply(y);
                            }
                            *v = y;
                            if let Some((codes, format, row_stride)) = &mut emit {
                                codes[row * *row_stride + j] = format.encode(y) as i8;
                            }
                        }
                    }
                }
                Step::RowsToNchw {
                    src,
                    dst,
                    oc,
                    oh,
                    ow,
                } => {
                    let (sl, dl) = split_pair(arena, rng(*src), rng(*dst));
                    rows_to_nchw_slice(sl, n, *oc, *oh, *ow, dl)?;
                }
                Step::MaxPool {
                    src,
                    dst,
                    c,
                    h,
                    w,
                    oh,
                    ow,
                    kernel,
                    stride,
                } => {
                    let (sl, dl): (&[f32], &mut [f32]) = match src {
                        Src::Input => (input_data, &mut arena[rng(*dst)]),
                        Src::Buf(s) => split_pair(arena, rng(*s), rng(*dst)),
                    };
                    // Loop order and strict `>` comparison replicate
                    // `MaxPool2d::forward` exactly.
                    for b in 0..n {
                        for ch in 0..*c {
                            let plane = (b * c + ch) * h * w;
                            for oy in 0..*oh {
                                for ox in 0..*ow {
                                    let mut best = sl[plane + oy * stride * w + ox * stride];
                                    for ky in 0..*kernel {
                                        let row = plane + (oy * stride + ky) * w + ox * stride;
                                        for kx in 0..*kernel {
                                            if sl[row + kx] > best {
                                                best = sl[row + kx];
                                            }
                                        }
                                    }
                                    dl[((b * c + ch) * oh + oy) * ow + ox] = best;
                                }
                            }
                        }
                    }
                }
                Step::AvgPool {
                    src,
                    dst,
                    c,
                    h,
                    w,
                    oh,
                    ow,
                    kernel,
                    stride,
                } => {
                    let (sl, dl): (&[f32], &mut [f32]) = match src {
                        Src::Input => (input_data, &mut arena[rng(*dst)]),
                        Src::Buf(s) => split_pair(arena, rng(*s), rng(*dst)),
                    };
                    let norm = 1.0 / (kernel * kernel) as f32;
                    for b in 0..n {
                        for ch in 0..*c {
                            let plane = (b * c + ch) * h * w;
                            for oy in 0..*oh {
                                for ox in 0..*ow {
                                    let mut acc = 0.0f32;
                                    for ky in 0..*kernel {
                                        let row = plane + (oy * stride + ky) * w + ox * stride;
                                        for kx in 0..*kernel {
                                            acc += sl[row + kx];
                                        }
                                    }
                                    dl[((b * c + ch) * oh + oy) * ow + ox] = acc * norm;
                                }
                            }
                        }
                    }
                }
                Step::EltAct { buf, act } => {
                    for v in &mut arena[rng(*buf)] {
                        *v = act.apply(*v);
                    }
                }
                Step::EltQuantize { buf, format } => {
                    for v in &mut arena[rng(*buf)] {
                        *v = format.quantize(*v);
                    }
                }
                Step::EltBatchNorm { buf, bn, c, hw } => {
                    let p = &bns[*bn];
                    let dl = &mut arena[rng(*buf)];
                    for b in 0..n {
                        for ch in 0..*c {
                            let base = (b * c + ch) * hw;
                            let g = p.gamma[ch];
                            let be = p.beta[ch];
                            for v in &mut dl[base..base + hw] {
                                let norm = (*v - p.mean[ch]) * p.inv_std[ch];
                                *v = g * norm + be;
                            }
                        }
                    }
                }
            }
        }
        let mut full_shape = Vec::with_capacity(1 + self.output_shape.len());
        full_shape.push(n);
        full_shape.extend_from_slice(&self.output_shape);
        let out_range = self.offsets[self.out_buf] * n
            ..self.offsets[self.out_buf] * n + self.sizes[self.out_buf] * n;
        out.assign_from(&full_shape, &self.arena[out_range])?;
        Ok(())
    }

    /// Runs the compiled forward, allocating a fresh output tensor.
    ///
    /// # Errors
    ///
    /// As [`ExecPlan::forward_into`].
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.forward_into(input, &mut out)?;
        Ok(out)
    }

    /// Pre-sizes the arena and quantisation buffers for batches up to
    /// `n`, so the first real forward is already allocation-free. Growth
    /// here is deliberate and not counted in [`ExecPlan::alloc_events`].
    pub fn reserve_batch(&mut self, n: usize) {
        let need = self.arena_elems * n;
        if need > self.arena.len() {
            self.arena.resize(need, 0.0);
        }
        for (i, q) in self.qbufs.iter_mut().enumerate() {
            let (rows_ps, cols) = self.qbuf_dims[i];
            let rows = rows_ps * n;
            q.reset(rows, cols);
            self.qbuf_hw[i] = self.qbuf_hw[i].max(q.codes().len());
        }
    }

    /// Per-sample input shape the plan was compiled for.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Per-sample output shape.
    pub fn output_shape(&self) -> &[usize] {
        &self.output_shape
    }

    /// The kernel backend every step dispatches with.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Number of executor steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// What the pass pipeline fused and elided.
    pub fn stats(&self) -> &FusionStats {
        &self.stats
    }

    /// Arena size in per-sample f32 elements (the planner's peak).
    pub fn arena_elems_per_sample(&self) -> usize {
        self.arena_elems
    }

    /// Sum of all intermediate sizes in per-sample elements — what
    /// per-layer allocation would cost. The ratio against
    /// [`ExecPlan::arena_elems_per_sample`] is the planner's win.
    pub fn unplanned_elems_per_sample(&self) -> usize {
        self.unplanned_elems
    }

    /// Current bytes held by plan-owned buffers: the f32 arena plus the
    /// i8 activation-code buffers.
    pub fn arena_peak_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<f32>()
            + self.qbufs.iter().map(|q| q.codes().len()).sum::<usize>()
    }

    /// Wall-clock microseconds the compilation took.
    pub fn compile_us(&self) -> u64 {
        self.compile_us
    }

    /// How many times a plan-owned buffer grew during forwards. Stays
    /// flat across same-batch steady-state calls — the zero-allocation
    /// assertion hook used by the parity suite and benches.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advcomp_nn::{Conv2d, Dense, Flatten, MaxPool2d, Mode, Relu, Sequential};
    use advcomp_tensor::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Conv2d::new(1, 4, 3, 1, 1, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 4 * 4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 3, &mut rng)),
        ])
    }

    fn batch(seed: u64, n: usize) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Init::Uniform { lo: 0.0, hi: 1.0 }.tensor(&[n, 1, 8, 8], &mut rng)
    }

    #[test]
    fn compiled_forward_matches_sequential_bitwise() {
        let mut model = tiny_net(11);
        let mut plan = ExecPlan::compile(&model, &[1, 8, 8]).unwrap();
        for n in [1usize, 3, 8] {
            let x = batch(100 + n as u64, n);
            let want = model.forward(&x, Mode::Eval).unwrap();
            let got = plan.forward(&x).unwrap();
            assert_eq!(want.shape(), got.shape());
            assert_eq!(want.data(), got.data(), "batch {n} diverged");
        }
    }

    #[test]
    fn steady_state_forward_is_allocation_free() {
        let model = tiny_net(5);
        let mut plan = ExecPlan::compile(&model, &[1, 8, 8]).unwrap();
        let x = batch(7, 4);
        let mut out = Tensor::zeros(&[0]);
        plan.forward_into(&x, &mut out).unwrap();
        let warm = plan.alloc_events();
        for _ in 0..5 {
            plan.forward_into(&x, &mut out).unwrap();
        }
        assert_eq!(plan.alloc_events(), warm, "steady-state forward allocated");
        // A smaller batch must not allocate either.
        let small = batch(8, 2);
        plan.forward_into(&small, &mut out).unwrap();
        assert_eq!(plan.alloc_events(), warm);
    }

    #[test]
    fn reserve_batch_makes_first_forward_allocation_free() {
        let model = tiny_net(5);
        let mut plan = ExecPlan::compile(&model, &[1, 8, 8]).unwrap();
        plan.reserve_batch(4);
        let x = batch(9, 4);
        let mut out = Tensor::zeros(&[0]);
        plan.forward_into(&x, &mut out).unwrap();
        assert_eq!(plan.alloc_events(), 0);
    }

    #[test]
    fn arena_is_smaller_than_per_layer_allocation() {
        let model = tiny_net(5);
        let plan = ExecPlan::compile(&model, &[1, 8, 8]).unwrap();
        assert!(plan.arena_elems_per_sample() < plan.unplanned_elems_per_sample());
    }

    #[test]
    fn batch_shape_mismatch_is_rejected() {
        let model = tiny_net(5);
        let mut plan = ExecPlan::compile(&model, &[1, 8, 8]).unwrap();
        let bad = Tensor::zeros(&[2, 1, 9, 9]);
        assert!(plan.forward(&bad).is_err());
    }
}
