//! Graph IR and fusing forward compiler with static memory planning.
//!
//! `Sequential` executes layer-at-a-time: every layer allocates its output
//! tensor, activation quantisation runs as two extra full passes
//! (`FakeQuant`), bias addition clones the whole GEMM output, and dense
//! weights are re-transposed and re-packed on every call. None of that is
//! inherent to inference — it is the price of a representation that also
//! supports training. This crate compiles the *inference* forward into a
//! shape-specialised program:
//!
//! * [`ir`] — a typed straight-line IR lowered from
//!   [`Sequential`](advcomp_nn::Sequential) via
//!   [`LayerSpec`](advcomp_nn::LayerSpec), with per-sample shape
//!   inference;
//! * [`fuse`] — pattern fusion (`Conv2d+BatchNorm+Relu`,
//!   `Dense+bias+activation`), quant→dequant elision, and int8 chaining
//!   so adjacent packed layers exchange i8 codes without an f32 round
//!   trip;
//! * [`plan`] — liveness analysis and greedy first-fit arena planning
//!   over the step schedule;
//! * [`exec`] — the [`ExecPlan`] executor: pre-packed weights, plan-owned
//!   scratch, zero per-layer heap allocation in steady state, dispatching
//!   into the exact `advcomp-tensor` kernels the layers use so results
//!   are bit-identical to `Sequential::forward`.
//!
//! Backward is deliberately out of scope: training needs per-layer
//! caches, parameter gradients and stochastic layers, which defeat static
//! planning. The serving engine and attack evaluation loops run compiled
//! plans; training and gradient-based crafting keep the `Sequential`
//! path.
//!
//! # Example
//!
//! ```
//! use advcomp_graph::ExecPlan;
//! use advcomp_nn::{Dense, Mode, Relu, Sequential};
//! use advcomp_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(4, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 2, &mut rng)),
//! ]);
//! let mut plan = ExecPlan::compile(&net, &[4])?;
//! let x = Tensor::zeros(&[3, 4]);
//! let compiled = plan.forward(&x)?;
//! let reference = net.forward(&x, Mode::Eval)?;
//! assert_eq!(compiled.data(), reference.data());
//! # Ok(())
//! # }
//! ```

pub mod exec;
pub mod fuse;
pub mod ir;
pub mod plan;

pub use exec::ExecPlan;
pub use fuse::{fuse, BnFold, FusedGraph, FusedOp, FusionStats, GemmUnit};
pub use ir::{infer_shape, lower, Act, GemmWeight, Graph, Node, Op};
pub use plan::{plan_arena, validate_no_alias, BufferLife, MemoryPlan};

use advcomp_tensor::TensorError;

/// Errors from lowering, planning or executing a graph.
#[derive(Debug)]
pub enum GraphError {
    /// The model contains a construct the compiler has no lowering for.
    Unsupported(String),
    /// Shapes are inconsistent (at compile or forward time).
    Shape(String),
    /// A tensor kernel failed.
    Tensor(TensorError),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Unsupported(msg) => write!(f, "unsupported model construct: {msg}"),
            GraphError::Shape(msg) => write!(f, "shape error: {msg}"),
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
