//! Pass pipeline: quant→dequant elision, pattern fusion, int8 chaining.
//!
//! Three passes run in order over a lowered [`Graph`]:
//!
//! 1. **Quantise elision.** A `Quantize(F)` node whose value flows — only
//!    through quantisation-transparent ops — into a packed GEMM whose
//!    activation format is also `F` is dropped. The GEMM re-encodes its
//!    input on the same fixed-point grid, and `encode(decode(encode(x)))
//!    == encode(x)` (re-encoding a grid value is lossless), so the codes
//!    entering the integer kernel are bit-identical with or without the
//!    round trip. Transparent ops are `MaxPool2d` (max commutes with the
//!    monotone quantiser — the pooled *value* is the quantised max either
//!    way) and `Flatten` (a permutation). Zero padding introduced by
//!    im2col is covered because `encode(0) == 0`.
//! 2. **Pattern fusion.** `Conv2d [+ BatchNorm] [+ Act]` and
//!    `Dense [+ Act]` collapse into single GEMM units whose epilogue
//!    applies bias, normalisation and activation per element while the
//!    output rows are still hot. The epilogue runs in the GEMM's
//!    rows layout (`[m, oc]`, channel = column), which commutes with the
//!    later rows→NCHW permutation, so fused arithmetic is bit-identical
//!    to the layer-at-a-time chain.
//! 3. **Int8 chaining.** For adjacent `Dense → Dense(packed)` pairs the
//!    producer's epilogue additionally emits the consumer's i8 activation
//!    codes (`F.encode(y)` on the final f32 value — exactly what the
//!    consumer's own quantise step would compute), and the consumer skips
//!    its quantise step entirely: adjacent packed layers exchange int8
//!    activations without an f32 round trip through a second pass.

use advcomp_qformat::QFormat;
use advcomp_tensor::QuantKind;

use crate::ir::{Act, GemmWeight, Graph, Node, Op};

/// What the pass pipeline did to a graph, for tests and bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// `Quantize` nodes elided into a downstream packed GEMM.
    pub elided_quantize: usize,
    /// Conv2d nodes that absorbed a following BatchNorm.
    pub fused_conv_bn: usize,
    /// Conv2d nodes that absorbed a following activation.
    pub fused_conv_act: usize,
    /// Dense nodes that absorbed a following activation.
    pub fused_dense_act: usize,
    /// Dense→Dense links exchanging int8 activations directly.
    pub int8_chain_links: usize,
    /// Identity layers dropped at lowering (`Dropout`, disabled
    /// `FakeQuant`).
    pub dropped_identity: usize,
}

/// Per-channel batch-norm fold applied in a GEMM epilogue.
#[derive(Debug, Clone)]
pub struct BnFold {
    /// Per-channel scale.
    pub gamma: Vec<f32>,
    /// Per-channel shift.
    pub beta: Vec<f32>,
    /// Running mean.
    pub mean: Vec<f32>,
    /// `1 / sqrt(running_var + eps)`, precomputed at lowering.
    pub inv_std: Vec<f32>,
}

/// A GEMM with its fused epilogue.
#[derive(Debug, Clone)]
pub struct GemmUnit {
    /// The weights (`[out, k]` layout when dense).
    pub weight: GemmWeight,
    /// Bias added per output column.
    pub bias: Vec<f32>,
    /// Folded batch normalisation (convolutions only).
    pub bn: Option<BnFold>,
    /// Fused elementwise activation.
    pub act: Option<Act>,
    /// When set, the epilogue also emits i8 codes of the final value in
    /// this format for the next (packed) layer.
    pub emit_codes: Option<QFormat>,
    /// When set, this packed GEMM consumes the codes emitted by the
    /// previous unit instead of quantising its f32 input.
    pub consume_codes: bool,
}

impl GemmUnit {
    fn new(weight: GemmWeight, bias: Vec<f32>) -> Self {
        GemmUnit {
            weight,
            bias,
            bn: None,
            act: None,
            emit_codes: None,
            consume_codes: false,
        }
    }
}

/// One operation after fusion.
#[derive(Debug, Clone)]
pub enum FusedOp {
    /// im2col + GEMM + epilogue + rows→NCHW.
    Conv2d {
        /// The GEMM and its epilogue.
        unit: GemmUnit,
        /// Square kernel edge.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        padding: usize,
    },
    /// GEMM + epilogue.
    Dense {
        /// The GEMM and its epilogue.
        unit: GemmUnit,
    },
    /// Standalone elementwise activation (nothing to fuse into).
    Activation(Act),
    /// Standalone batch normalisation.
    BatchNorm(BnFold),
    /// 2-D max pooling.
    MaxPool2d {
        /// Window edge.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// 2-D average pooling.
    AvgPool2d {
        /// Window edge.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Per-sample reshape to rank 1 (free: no data movement).
    Flatten,
    /// Simulated activation quantisation kept in the graph (its value
    /// does not feed a matching packed GEMM).
    Quantize(QFormat),
}

impl FusedOp {
    /// Short lowercase mnemonic for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            FusedOp::Conv2d { .. } => "conv2d",
            FusedOp::Dense { .. } => "dense",
            FusedOp::Activation(_) => "activation",
            FusedOp::BatchNorm(_) => "batchnorm",
            FusedOp::MaxPool2d { .. } => "maxpool2d",
            FusedOp::AvgPool2d { .. } => "avgpool2d",
            FusedOp::Flatten => "flatten",
            FusedOp::Quantize(_) => "quantize",
        }
    }
}

/// The graph after the pass pipeline: fused ops with per-sample shapes.
#[derive(Debug, Clone)]
pub struct FusedGraph {
    /// Per-sample input shape.
    pub input_shape: Vec<usize>,
    /// Fused ops in execution order, each with its per-sample output
    /// shape.
    pub ops: Vec<(FusedOp, Vec<usize>)>,
    /// What the passes did.
    pub stats: FusionStats,
}

/// Is this op transparent to quantisation for the elision pass?
fn quant_transparent(op: &Op) -> bool {
    matches!(op, Op::MaxPool2d { .. } | Op::Flatten)
}

/// The activation format of a packed GEMM node, if any.
fn packed_act_format(op: &Op) -> Option<QFormat> {
    match op {
        Op::Conv2d { weight, .. } | Op::Dense { weight, .. } => weight.act_format(),
        _ => None,
    }
}

/// Pass 1: drop `Quantize` nodes that a downstream packed GEMM re-encodes
/// losslessly. Returns the number elided.
fn elide_quantize(nodes: &mut Vec<Node>) -> usize {
    let mut keep = vec![true; nodes.len()];
    let mut elided = 0usize;
    for i in 0..nodes.len() {
        let Op::Quantize(format) = &nodes[i].op else {
            continue;
        };
        let format = *format;
        let mut j = i + 1;
        while j < nodes.len() && quant_transparent(&nodes[j].op) {
            j += 1;
        }
        if j < nodes.len() && packed_act_format(&nodes[j].op) == Some(format) {
            keep[i] = false;
            elided += 1;
        }
    }
    let mut it = keep.iter();
    nodes.retain(|_| *it.next().unwrap());
    elided
}

/// Pass 2: collapse GEMM + epilogue patterns.
fn fuse_patterns(nodes: Vec<Node>, stats: &mut FusionStats) -> Vec<(FusedOp, Vec<usize>)> {
    let mut ops = Vec::with_capacity(nodes.len());
    let mut i = 0;
    while i < nodes.len() {
        let node = nodes[i].clone();
        let mut shape = node.out_shape;
        match node.op {
            Op::Conv2d {
                weight,
                bias,
                kernel,
                stride,
                padding,
            } => {
                let mut unit = GemmUnit::new(weight, bias);
                if let Some(Node {
                    op:
                        Op::BatchNorm {
                            gamma,
                            beta,
                            mean,
                            inv_std,
                        },
                    out_shape,
                }) = nodes.get(i + 1).cloned()
                {
                    unit.bn = Some(BnFold {
                        gamma,
                        beta,
                        mean,
                        inv_std,
                    });
                    shape = out_shape;
                    stats.fused_conv_bn += 1;
                    i += 1;
                }
                if let Some(Node {
                    op: Op::Activation(act),
                    out_shape,
                }) = nodes.get(i + 1).cloned()
                {
                    unit.act = Some(act);
                    shape = out_shape;
                    stats.fused_conv_act += 1;
                    i += 1;
                }
                ops.push((
                    FusedOp::Conv2d {
                        unit,
                        kernel,
                        stride,
                        padding,
                    },
                    shape,
                ));
            }
            Op::Dense { weight, bias } => {
                let mut unit = GemmUnit::new(weight, bias);
                if let Some(Node {
                    op: Op::Activation(act),
                    out_shape,
                }) = nodes.get(i + 1).cloned()
                {
                    unit.act = Some(act);
                    shape = out_shape;
                    stats.fused_dense_act += 1;
                    i += 1;
                }
                ops.push((FusedOp::Dense { unit }, shape));
            }
            Op::BatchNorm {
                gamma,
                beta,
                mean,
                inv_std,
            } => ops.push((
                FusedOp::BatchNorm(BnFold {
                    gamma,
                    beta,
                    mean,
                    inv_std,
                }),
                shape,
            )),
            Op::Activation(act) => ops.push((FusedOp::Activation(act), shape)),
            Op::MaxPool2d { kernel, stride } => {
                ops.push((FusedOp::MaxPool2d { kernel, stride }, shape))
            }
            Op::AvgPool2d { kernel, stride } => {
                ops.push((FusedOp::AvgPool2d { kernel, stride }, shape))
            }
            Op::Flatten => ops.push((FusedOp::Flatten, shape)),
            Op::Quantize(format) => ops.push((FusedOp::Quantize(format), shape)),
        }
        i += 1;
    }
    ops
}

/// Pass 3: link adjacent `Dense → Dense(packed)` pairs so they exchange
/// int8 codes directly. Returns the number of links.
fn chain_int8(ops: &mut [(FusedOp, Vec<usize>)]) -> usize {
    let mut links = 0usize;
    for i in 1..ops.len() {
        let Some(format) = (match &ops[i].0 {
            FusedOp::Dense { unit } => unit.weight.act_format(),
            _ => None,
        }) else {
            continue;
        };
        // The emitted codes must fit the i8 activation buffer.
        if QuantKind::for_format(format).is_none() {
            continue;
        }
        if let FusedOp::Dense { unit: producer } = &mut ops[i - 1].0 {
            producer.emit_codes = Some(format);
            links += 1;
        } else {
            continue;
        }
        if let FusedOp::Dense { unit: consumer } = &mut ops[i].0 {
            consumer.consume_codes = true;
        }
    }
    links
}

/// Runs the pass pipeline over a lowered graph.
pub fn fuse(graph: Graph) -> FusedGraph {
    let Graph {
        input_shape,
        mut nodes,
        dropped_identity,
    } = graph;
    let mut stats = FusionStats {
        dropped_identity,
        ..FusionStats::default()
    };
    stats.elided_quantize = elide_quantize(&mut nodes);
    let mut ops = fuse_patterns(nodes, &mut stats);
    stats.int8_chain_links = chain_int8(&mut ops);
    FusedGraph {
        input_shape,
        ops,
        stats,
    }
}
